//! Design a matching network straight from a datasheet `.s2p` file — no
//! extracted model at all. A synthetic vendor file (S-parameters + noise
//! block at a fixed 3 V / 60 mA bias) stands in for the download from the
//! manufacturer; the flow is identical for a real file.
//!
//! Run with: `cargo run --release --example design_from_s2p`

use rfkit_device::Phemt;
use rfkit_net::gains::transducer_gain;
use rfkit_net::stability::rollett_k;
use rfkit_net::touchstone::{write_s2p, TouchstoneFormat};
use rfkit_net::{NoisyAbcd, TabulatedTwoPort};
use rfkit_num::units::{db_from_power_ratio, nf_db_from_factor, T0_KELVIN};
use rfkit_num::{linspace, Complex};
use rfkit_opt::{improved_goal_attainment, Bounds, GoalConfig, GoalProblem};
use rfkit_passive::{Capacitor, Component, Inductor, Orientation};

fn main() {
    // ---- Step 0: fabricate the "vendor" .s2p (normally: fs::read_to_string).
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    let freqs = linspace(0.5e9, 4.0e9, 29);
    let mut s_rows = Vec::new();
    let mut n_rows = Vec::new();
    for &f in &freqs {
        let tp = device.noisy_two_port(f, &op);
        s_rows.push((f, tp.abcd.to_s(50.0).unwrap()));
        n_rows.push((f, tp.noise_params(50.0).unwrap()));
    }
    let s2p_text = write_s2p(&s_rows, &n_rows, TouchstoneFormat::Ma);
    println!(
        "vendor file: {} S rows + {} noise rows",
        s_rows.len(),
        n_rows.len()
    );

    // ---- Step 1: load the file as an interpolated two-port.
    let tab = TabulatedTwoPort::from_touchstone(&s2p_text).expect("valid .s2p");
    println!(
        "tabulated device: {:.1}-{:.1} GHz, noise data: {}",
        tab.freq_range().0 / 1e9,
        tab.freq_range().1 / 1e9,
        tab.has_noise()
    );

    // ---- Step 2: evaluate matching around the tabulated device.
    // Variables: [l1_nH series in, l2_nH bias-feed choke, c2_pF series out,
    // r_bias_ohm in series with the choke]. The resistive bias feed is the
    // low-frequency stabilizer — without it the bare device is only
    // conditionally stable and no matching can fix that.
    let band = linspace(1.1e9, 1.7e9, 7);
    let evaluate = |x: &[f64], f: f64| -> Option<(f64, f64, f64)> {
        let dev_s = tab.s_params(f);
        let dev_np = tab.noise_params(f)?;
        let dev = NoisyAbcd::from_noise_params(dev_s.to_abcd().ok()?, &dev_np);
        let l1 = Inductor::chip_0402(x[0] * 1e-9).two_port(f, Orientation::Series, T0_KELVIN);
        let z_feed = Complex::real(x[3]) + Inductor::chip_0402(x[1] * 1e-9).impedance(f);
        let l2 = NoisyAbcd::passive_shunt(z_feed.recip(), T0_KELVIN);
        let c2 = Capacitor::chip_0402(x[2] * 1e-12).two_port(f, Orientation::Series, T0_KELVIN);
        let chain = l1.cascade(&dev).cascade(&l2).cascade(&c2);
        let s = chain.abcd.to_s(50.0).ok()?;
        let np = chain.noise_params(50.0).ok()?;
        Some((
            nf_db_from_factor(np.noise_factor(Complex::ZERO)),
            db_from_power_ratio(transducer_gain(&s, Complex::ZERO, Complex::ZERO)),
            rollett_k(&s),
        ))
    };
    let objectives = |x: &[f64]| -> Vec<f64> {
        let mut worst_nf = f64::NEG_INFINITY;
        let mut min_gain = f64::INFINITY;
        let mut min_k = f64::INFINITY;
        for &f in &band {
            match evaluate(x, f) {
                Some((nf, g, k)) => {
                    worst_nf = worst_nf.max(nf);
                    min_gain = min_gain.min(g);
                    min_k = min_k.min(k);
                }
                None => return vec![1e3; 3],
            }
        }
        vec![worst_nf, -min_gain, 1.0 - min_k]
    };
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let problem = GoalProblem::new(
        obj_ref,
        vec![0.7, -14.0, 0.0],
        vec![0.5, 2.0, 0.0],
        Bounds::new(vec![0.5, 1.0, 0.3, 5.0], vec![18.0, 22.0, 12.0, 200.0]).unwrap(),
    );
    let r = improved_goal_attainment(
        &problem,
        &GoalConfig {
            max_evals: 5_000,
            multistart: 1,
            global_fraction: 0.7,
            ..Default::default()
        },
    );
    println!(
        "\nmatched design from the datasheet alone:\n  L1 = {:.1} nH, L2 = {:.1} nH, C2 = {:.1} pF, R_bias = {:.0} ohm",
        r.x[0], r.x[1], r.x[2], r.x[3]
    );
    println!(
        "band worst-case: NF = {:.3} dB, gain = {:.2} dB (γ = {:.2})",
        r.objectives[0], -r.objectives[1], r.attainment
    );

    // ---- Step 3: cross-check against the full model-based analysis.
    let (nf_tab, gain_tab, _) = evaluate(&r.x, 1.4e9).unwrap();
    println!("\ncross-check at 1.4 GHz (tabulated path): NF {nf_tab:.3} dB, gain {gain_tab:.2} dB");
    println!("(the tabulated and model paths agree because the table was generated");
    println!(" by the model — with a real vendor file this is your design reality)");
}
