//! Fault-injection quick-start: arm a deterministic fault plan, watch the
//! DC fallback ladder and the band-sweep degradation machinery absorb it,
//! then watch everything recover bit-for-bit when the plan disarms.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --features rfkit-faults --example robust_faults
//! ```
//!
//! With `RFKIT_TRACE=1` the retry/fallback/degradation counters land in
//! the trace for `rfkit-trace` to summarize (this is the CI smoke).
//! Without the `rfkit-faults` feature the hooks compile out and this
//! example just says so.

#[cfg(not(feature = "rfkit-faults"))]
fn main() {
    println!("rebuild with --features rfkit-faults to arm the fault-injection demo");
}

#[cfg(feature = "rfkit-faults")]
fn main() {
    use lna::{Amplifier, BandMetrics, BandSpec, DegradePolicy, DesignVariables};
    use rfkit_circuit::dc::{RetryPolicy, SolveStage};
    use rfkit_circuit::{solve_dc_robust, Circuit};
    use rfkit_robust::faults::{self, FaultKind, FaultPlan};

    // A self-biased FET stage: real Newton work, normally one rung.
    let model = rfkit_device::dc::Angelov;
    let params = rfkit_device::dc::DcModel::default_params(&model);
    let mut c = Circuit::new();
    c.vsource("vdd", "gnd", 5.0)
        .resistor("vdd", "drain", 50.0)
        .resistor("g", "gnd", 10_000.0)
        .resistor("src", "gnd", 10.0)
        .fet(
            "g",
            "drain",
            "src",
            Box::new(rfkit_device::dc::Angelov),
            params,
        );

    let policy = RetryPolicy::default();
    let healthy = solve_dc_robust(&c, &policy).expect("healthy solve");
    println!(
        "healthy DC solve: stage = {}, attempts = {}, iterations = {}",
        healthy.stage, healthy.attempts, healthy.iterations
    );
    assert_eq!(healthy.stage, SolveStage::PlainNewton);

    // 1. Kill the first two rungs: the ladder escalates to gmin-stepping.
    {
        let _g = faults::scoped(
            FaultPlan::new()
                .fail_all("dc.newton.plain", FaultKind::Stagnate)
                .fail_all("dc.newton.damped", FaultKind::Stagnate),
        );
        let sol = solve_dc_robust(&c, &policy).expect("gmin rung recovers");
        println!(
            "with plain+damped Newton dead: stage = {}, attempts = {}, plain hook fired {}x",
            sol.stage,
            sol.attempts,
            faults::fired("dc.newton.plain")
        );
        assert_eq!(sol.stage, SolveStage::GminStepping);
    }

    // 2. Kill two band-sweep points: the sweep degrades instead of dying.
    let device = rfkit_device::Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let amp = Amplifier::new(
        &device,
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        },
    );
    {
        let keys = [
            band.combined_grid()[1].to_bits(),
            band.combined_grid()[9].to_bits(),
        ];
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "band.point",
            FaultKind::PointFailure,
            &keys,
        ));
        match BandMetrics::evaluate_robust(&amp, &band, &DegradePolicy::lenient(0.5)) {
            lna::BandOutcome::Degraded {
                metrics,
                diagnostics,
            } => {
                println!(
                    "band sweep degraded: {} failed points, partial worst-case NF = {:.3} dB",
                    diagnostics.len(),
                    metrics.worst_nf_db
                );
                for d in &diagnostics {
                    println!("  {d}");
                }
            }
            other => panic!("expected a degraded sweep, got {other:?}"),
        }
    }

    // 3. Faults disarmed: the recovered world is the healthy world.
    let recovered = solve_dc_robust(&c, &policy).expect("recovered solve");
    assert_eq!(recovered, healthy, "recovery must be bit-identical");
    let full = BandMetrics::evaluate(&amp, &band).expect("complete sweep");
    println!(
        "recovered: DC bit-identical, full sweep NF = {:.3} dB over {} points",
        full.worst_nf_db,
        band.combined_grid().len()
    );

    rfkit_obs::flush();
}
