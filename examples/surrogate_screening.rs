//! Surrogate-screened Pareto-front study: trade worst-band noise figure
//! against worst-band gain with NSGA-II, letting a response-surface
//! model trained from the design cache veto unpromising band sweeps.
//!
//! The flow mirrors how the screen is meant to be used in practice:
//!
//! 1. a short *plain* study warms the [`lna::DesignCache`] with
//!    true-evaluated designs;
//! 2. the *screened* study continues from the warm-up's front
//!    (warm-started initial population), seeds its surrogate from the
//!    cache snapshot, and consults it before every offspring batch —
//!    predicted-hopeless candidates never reach the band evaluator.
//!
//! Every point on the printed front is true-evaluated: the screen can
//! only prune evaluations, never substitute for them.
//!
//! Run with: `cargo run --release --example surrogate_screening`
//! (CI runs it traced and asserts the `surrogate.*` counters fired and
//! the total `band.evaluations` stayed under a fixed budget.)

use lna::{
    pareto_front_study, study_screen_config, BandSpec, DesignCache, DesignVariables,
    ParetoStudyConfig,
};
use rfkit_device::Phemt;

fn main() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let cache = DesignCache::with_default_capacity();

    // Phase 1: plain warm-up — every evaluation is a real band sweep.
    let warmup_cfg = ParetoStudyConfig {
        population: 32,
        generations: 16,
        seed: 0xf4,
        initial: Vec::new(),
        surrogate: None,
    };
    let warmup = pareto_front_study(&device, &band, &warmup_cfg, &cache);
    println!(
        "warm-up study : {:>3} front points, {:>4} band sweeps, hypervolume {:.4}",
        warmup.front.len(),
        warmup.band_evaluations,
        warmup.hypervolume
    );

    // Phase 2: screened study on the warm cache, continuing from the
    // warm-up's front. The surrogate trains from the snapshot and keeps
    // learning from every true evaluation.
    let screened_cfg = ParetoStudyConfig {
        population: 32,
        generations: 20,
        seed: 0xf4,
        initial: warmup.front.iter().map(|i| i.x.clone()).collect(),
        surrogate: Some(study_screen_config(0x5ca1e)),
    };
    let screened = pareto_front_study(&device, &band, &screened_cfg, &cache);
    let stats = screened.screen_stats.expect("screen armed");
    println!(
        "screened study: {:>3} front points, {:>4} band sweeps, hypervolume {:.4}",
        screened.front.len(),
        screened.band_evaluations,
        screened.hypervolume
    );
    println!(
        "screen        : {} fits, {} accepted, {} rejected, {} explored, {} forced",
        stats.fits, stats.accepted, stats.rejected, stats.explored, stats.forced
    );

    println!("\nNF/gain trade-off (screened front, true-evaluated):");
    println!("{:>10} {:>10}   design (Vds, Ids, Ls)", "NF (dB)", "G (dB)");
    let mut rows: Vec<_> = screened.front.iter().collect();
    rows.sort_by(|a, b| rfkit_num::total_cmp_f64(&a.objectives[0], &b.objectives[0]));
    for ind in rows.iter().take(8) {
        let v = DesignVariables::from_vec(&ind.x);
        println!(
            "{:>10.3} {:>10.2}   {:.2} V, {:.0} mA, {:.2} nH",
            ind.objectives[0],
            -ind.objectives[1],
            v.vds,
            v.ids * 1e3,
            v.ls_deg * 1e9
        );
    }
    println!(
        "\ncache: {} entries, {} hits total; predictions pruned {} of {} offspring decisions",
        cache.len(),
        cache.hits(),
        stats.rejected,
        stats.accepted + stats.rejected + stats.explored + stats.forced
    );
    rfkit_obs::flush();
}
