//! Quickstart: design a multi-constellation GNSS antenna preamplifier in
//! five lines, then inspect it.
//!
//! Run with: `cargo run --release --example quickstart`

use lna::{design_lna, Amplifier, DesignConfig, DesignGoals};
use rfkit_device::Phemt;

fn main() {
    // 1. The transistor: an ATF-54143-class low-noise pHEMT.
    let device = Phemt::atf54143_like();

    // 2. Aspirations: ≤ 0.8 dB noise figure and ≥ 14 dB gain over the
    //    whole 1.1–1.7 GHz multi-constellation band, matched and
    //    unconditionally stable.
    let goals = DesignGoals::default();

    // 3. Run the improved goal-attainment design flow.
    let design = design_lna(&device, &goals, &DesignConfig::default());

    println!("snapped (buildable) design: {:#?}", design.snapped);
    println!(
        "worst-case over 1.1-1.7 GHz: NF = {:.2} dB, gain = {:.1} dB, min mu = {:.3}",
        design.snapped_metrics.worst_nf_db,
        design.snapped_metrics.min_gain_db,
        design.snapped_metrics.min_mu,
    );

    // 4. Ask anything about the finished amplifier.
    let amp = Amplifier::new(&device, design.snapped);
    for f_ghz in [1.17645, 1.2276, 1.57542, 1.602] {
        let m = amp.metrics(f_ghz * 1e9).expect("design is feasible");
        println!(
            "  {:>8.4} GHz: gain {:>5.2} dB, NF {:>5.3} dB, |S11| {:>6.1} dB",
            f_ghz, m.gain_db, m.nf_db, m.s11_db
        );
    }
}
