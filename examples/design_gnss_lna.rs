//! Full design-and-verify walkthrough: design the amplifier with the
//! improved goal-attainment method, "build" three units with ±5 % parts,
//! and compare their measured responses against the design — the complete
//! story of the paper in one program.
//!
//! Run with: `cargo run --release --example design_gnss_lna`

use lna::{design_lna, measure, Amplifier, BuildConfig, BuiltAmplifier, DesignConfig, DesignGoals};
use rfkit_device::Phemt;
use rfkit_num::linspace;

fn main() {
    let device = Phemt::atf54143_like();

    println!("=== design phase ===");
    let goals = DesignGoals {
        nf_db: 0.7,
        gain_db: 13.0,
        ..Default::default()
    };
    let design = design_lna(
        &device,
        &goals,
        &DesignConfig {
            max_evals: 10_000,
            ..Default::default()
        },
    );
    println!("snapped design: {:#?}", design.snapped);
    println!(
        "worst-case band metrics: NF {:.3} dB, gain {:.2} dB, |S11| {:.1} dB, min mu {:.3}",
        design.snapped_metrics.worst_nf_db,
        design.snapped_metrics.min_gain_db,
        design.snapped_metrics.worst_s11_db,
        design.snapped_metrics.min_mu,
    );

    println!("\n=== production phase: three as-built units ===");
    let freqs = linspace(1.1e9, 1.7e9, 7);
    let amp = Amplifier::new(&device, design.snapped);
    for unit in 0..3u64 {
        let cfg = BuildConfig {
            seed: 0x100 + unit,
            ..Default::default()
        };
        let built = BuiltAmplifier::build(&design.snapped, &cfg);
        let session = measure(&device, &built, &freqs, &cfg).expect("unit alive");
        // Worst deviation from design across the band.
        let mut worst_gain_dev: f64 = 0.0;
        let mut worst_nf_dev: f64 = 0.0;
        for (point, nf_meas) in session.response.iter().zip(&session.nf_db) {
            let m = amp.metrics(point.freq_hz).expect("design feasible");
            let gain_meas = 10.0 * point.s.s21().norm_sqr().log10();
            worst_gain_dev = worst_gain_dev.max((gain_meas - m.gain_db).abs());
            worst_nf_dev = worst_nf_dev.max((nf_meas - m.nf_db).abs());
        }
        println!(
            "unit {unit}: max |gain - design| = {worst_gain_dev:.2} dB, max |NF - design| = {worst_nf_dev:.3} dB"
        );
    }
    println!("\n(prototype papers report exactly this kind of sub-dB agreement)");
}
