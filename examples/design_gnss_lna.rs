//! Full design-and-verify walkthrough: design the amplifier with the
//! improved goal-attainment method, "build" three units with ±5 % parts,
//! and compare their measured responses against the design — the complete
//! story of the paper in one program.
//!
//! Run with: `cargo run --release --example design_gnss_lna`

use lna::{
    cached_sweep, design_lna, measure, output_match_network, Amplifier, BuildConfig,
    BuiltAmplifier, DesignConfig, DesignGoals,
};
use rfkit_circuit::{solve_dc, AcWorkspace, Circuit};
use rfkit_device::dc::{Angelov, DcModel};
use rfkit_device::Phemt;
use rfkit_num::linspace;

fn main() {
    let device = Phemt::atf54143_like();

    println!("=== design phase ===");
    let goals = DesignGoals {
        nf_db: 0.7,
        gain_db: 13.0,
        ..Default::default()
    };
    let design = design_lna(
        &device,
        &goals,
        &DesignConfig {
            max_evals: 10_000,
            ..Default::default()
        },
    );
    println!("snapped design: {:#?}", design.snapped);
    println!(
        "worst-case band metrics: NF {:.3} dB, gain {:.2} dB, |S11| {:.1} dB, min mu {:.3}",
        design.snapped_metrics.worst_nf_db,
        design.snapped_metrics.min_gain_db,
        design.snapped_metrics.worst_s11_db,
        design.snapped_metrics.min_mu,
    );

    println!("\n=== netlist-level verification ===");
    // The band design works on the analytic two-port model; as a
    // cross-check, realize two pieces of the schematic as netlists and
    // run them through the MNA solvers. First the drain bias network
    // (DC Newton solve), then the output match (AC solve over the band).
    let vars = design.snapped;
    let mut bias = Circuit::new();
    bias.vsource("vdd", "gnd", 5.0)
        .resistor("vdd", "drain", vars.r_bias)
        .resistor("g", "gnd", 10_000.0)
        .resistor("s", "gnd", 10.0)
        .fet(
            "g",
            "drain",
            "s",
            Box::new(Angelov),
            Angelov.default_params(),
        );
    let bias_sol = solve_dc(&bias).expect("bias network converges");
    println!(
        "bias network: {} Newton iteration(s), drain current {:.1} mA",
        bias_sol.iterations,
        bias_sol.fet_currents[0] * 1e3
    );
    // Batched fast path: the output-match netlist goes through the
    // process-wide plan cache (compiled and stamped once, shared by every
    // later sweep of the same topology) and the structure-aware batch
    // engine — one factorization plan for the whole grid.
    let out_match = output_match_network(&vars);
    let match_freqs = [1.2e9, 1.4e9, 1.6e9];
    let mut match_ws = AcWorkspace::new();
    let batch = cached_sweep(&out_match, &match_freqs, &mut match_ws).expect("match compiles");
    for (p, f) in match_freqs.iter().enumerate() {
        let s = batch.two_port(p).expect("passive match solves");
        println!(
            "output match @ {:.1} GHz: |S21| = {:.3} dB",
            f / 1e9,
            10.0 * s.s21().norm_sqr().log10()
        );
    }

    println!("\n=== production phase: three as-built units ===");
    let freqs = linspace(1.1e9, 1.7e9, 7);
    let amp = Amplifier::new(&device, design.snapped);
    for unit in 0..3u64 {
        let cfg = BuildConfig {
            seed: 0x100 + unit,
            ..Default::default()
        };
        let built = BuiltAmplifier::build(&design.snapped, &cfg);
        let session = measure(&device, &built, &freqs, &cfg).expect("unit alive");
        // Worst deviation from design across the band.
        let mut worst_gain_dev: f64 = 0.0;
        let mut worst_nf_dev: f64 = 0.0;
        for (point, nf_meas) in session.response.iter().zip(&session.nf_db) {
            let m = amp.metrics(point.freq_hz).expect("design feasible");
            let gain_meas = 10.0 * point.s.s21().norm_sqr().log10();
            worst_gain_dev = worst_gain_dev.max((gain_meas - m.gain_db).abs());
            worst_nf_dev = worst_nf_dev.max((nf_meas - m.nf_db).abs());
        }
        println!(
            "unit {unit}: max |gain - design| = {worst_gain_dev:.2} dB, max |NF - design| = {worst_nf_dev:.3} dB"
        );
    }
    println!("\n(prototype papers report exactly this kind of sub-dB agreement)");
    rfkit_obs::flush();
    if let Some(path) = rfkit_obs::trace_path() {
        println!("trace written to {}", path.display());
    }
}
