//! Two-tone intermodulation test of the pHEMT at several bias points:
//! sweep input power, print the 1:1 / 3:1 lines and the extrapolated
//! intercept points, and show the linearity-vs-current trade.
//!
//! Run with: `cargo run --release --example im3_two_tone`

use rfkit_circuit::{ip3_sweep, power_series, time_domain, TwoToneSpec};
use rfkit_device::Phemt;

fn main() {
    let device = Phemt::atf54143_like();
    let pins: Vec<f64> = (0..11).map(|k| -45.0 + 3.0 * k as f64).collect();

    for ids_ma in [20.0, 40.0, 60.0, 80.0] {
        let vgs = device
            .bias_for_current(3.0, ids_ma * 1e-3)
            .expect("bias reachable");
        let op = device.operating_point(vgs, 3.0);
        let td = ip3_sweep(&pins, |p| {
            time_domain(
                &device,
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        let ps = ip3_sweep(&pins, |p| {
            power_series(
                &op,
                &TwoToneSpec {
                    pin_dbm: p,
                    ..Default::default()
                },
            )
        });
        println!(
            "Ids = {ids_ma:>4.0} mA: OIP3 = {:>5.1} dBm (time domain), {:>5.1} dBm (power series); gm3 = {:+.2} A/V^3",
            td.oip3_dbm.unwrap_or(f64::NAN),
            ps.oip3_dbm.unwrap_or(f64::NAN),
            op.gm3,
        );
    }

    // Show one full sweep for the plot.
    let vgs = device.bias_for_current(3.0, 0.06).unwrap();
    let op = device.operating_point(vgs, 3.0);
    let sweep = ip3_sweep(&pins, |p| {
        time_domain(
            &device,
            &op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
    });
    println!("\ntwo-tone sweep at 60 mA:");
    println!("{:>10} {:>12} {:>12}", "Pin dBm", "P1 dBm", "PIM3 dBm");
    for r in &sweep.rows {
        println!(
            "{:>10.1} {:>12.2} {:>12.2}",
            r.pin_dbm, r.p_fund_dbm, r.p_im3_dbm
        );
    }
}
