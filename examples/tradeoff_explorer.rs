//! Explore the design trade-offs with the goal-attainment machinery:
//! sweep a hard DC-power cap and watch the achievable worst-band noise
//! figure degrade — the trade a battery-powered GNSS receiver lives with.
//!
//! Run with: `cargo run --release --example tradeoff_explorer`

use lna::{band_objectives, BandSpec, DesignVariables};
use rfkit_device::Phemt;
use rfkit_opt::{improved_goal_attainment, GoalConfig, GoalProblem};

fn main() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let band_obj = band_objectives(&device, &band);

    // Objectives: [worst-band NF (dB), DC power (mW), constraint violation].
    let objectives = move |x: &[f64]| -> Vec<f64> {
        let f = band_obj(x);
        let vars = DesignVariables::from_vec(x);
        let violation = (f[2] + 10.0).max(0.0) + (f[3] + 10.0).max(0.0) + (f[4] + 0.005).max(0.0);
        vec![f[0], vars.vds * vars.ids * 1e3, violation]
    };
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let bounds = DesignVariables::bounds();

    println!(
        "{:>16} {:>12} {:>12}",
        "power cap (mW)", "NF (dB)", "P (mW)"
    );
    for (k, cap_mw) in [40.0, 60.0, 90.0, 130.0, 200.0, 320.0].iter().enumerate() {
        let problem = GoalProblem::new(
            obj_ref,
            vec![0.3, *cap_mw, 0.0], // aspire to 0.3 dB NF; power is a hard cap
            vec![1.0, 0.0, 0.0],
            bounds.clone(),
        );
        let r = improved_goal_attainment(
            &problem,
            &GoalConfig {
                max_evals: 8_000,
                seed: k as u64,
                multistart: 1,
                global_fraction: 0.7,
                ..Default::default()
            },
        );
        println!(
            "{:>16.0} {:>12.3} {:>12.1}",
            cap_mw, r.objectives[0], r.objectives[1]
        );
    }
    println!("\nEach row is one goal-attainment solve: the power goal is hard");
    println!("(zero weight); the noise-figure goal absorbs the slack.");
}
