//! Extract pHEMT model parameters from (simulated) measurements with the
//! three-step robust identification procedure, and compare candidate
//! models — the paper's first contribution, end to end.
//!
//! Run with: `cargo run --release --example extract_phemt`

use rfkit_device::dc::{Angelov, DcModel as _};
use rfkit_device::{GoldenDevice, MeasurementNoise};
use rfkit_extract::{compare_models, three_step, ExtractionData, ThreeStepConfig};

fn main() {
    // "Measure" the golden device: a DC I-V grid plus an S-parameter sweep
    // at the characterization bias, both with instrument noise.
    let golden = GoldenDevice::default();
    let (vgs_grid, vds_grid) = GoldenDevice::standard_iv_grid();
    let bias_vgs = golden
        .device
        .bias_for_current(3.0, 0.06)
        .expect("60 mA bias");
    let noise = MeasurementNoise::default();
    let data = ExtractionData {
        dc: golden.measure_dc(&vgs_grid, &vds_grid, &noise),
        sparams: golden.measure_sparams(bias_vgs, 3.0, &GoldenDevice::standard_freq_grid(), &noise),
        bias_vgs,
        bias_vds: 3.0,
    };
    println!(
        "characterization data: {} DC points, {} S-parameter frequencies",
        data.dc.len(),
        data.sparams.len()
    );

    // Identify the Angelov model.
    let cfg = ThreeStepConfig::default();
    let result = three_step(&Angelov, &data, &cfg);
    println!("\nthree-step identification of the Angelov model:");
    for (name, (truth, fit)) in Angelov
        .param_names()
        .iter()
        .zip(golden.device.dc_params.iter().zip(&result.dc_params))
    {
        println!("  {name:>8}: truth {truth:>9.4}, extracted {fit:>9.4}");
    }
    println!(
        "  DC RMSE = {:.4} (relative), S RMSE = {:.4}",
        result.dc_rmse, result.sparam_rmse
    );

    // Quick model shoot-out (short budgets).
    println!("\nmodel comparison (short budgets):");
    let quick = ThreeStepConfig {
        step1_evals: 6_000,
        step2_evals: 8_000,
        step3_evals: 600,
        seed: 1,
    };
    for report in compare_models(&data, &quick) {
        println!(
            "  {:<18} DC RMSE {:.4}, S RMSE {:.4}",
            report.name, report.dc_rmse, report.sparam_rmse
        );
    }
}
