//! Dual-output GNSS front end: one antenna, one LNA, a T splitter feeding
//! two receiver chains — with the per-chain noise budget computed three
//! ways (ideal tee, resistive star, Wilkinson).
//!
//! Run with: `cargo run --release --example splitter_frontend`

use lna::{design_lna, Amplifier, DesignConfig, DesignGoals};
use rfkit_device::Phemt;
use rfkit_net::noise::{friis, CascadeStage};
use rfkit_net::NPort;
use rfkit_num::units::db_from_power_ratio;
use rfkit_num::Complex;
use rfkit_passive::{resistive_splitter, Substrate, TeeJunction, Wilkinson};

const F0: f64 = 1.57542e9;

fn chain_report(name: &str, splitter: &NPort, lna_gain: f64, lna_f: f64) {
    let through = splitter.s(1, 0).expect("3-port").norm_sqr();
    let isolation = splitter.s(2, 1).expect("3-port").norm_sqr();
    let f_total = friis(&[
        CascadeStage {
            gain: lna_gain,
            noise_factor: lna_f,
        },
        CascadeStage {
            gain: through,
            noise_factor: 1.0 / through.min(1.0),
        },
        // A typical receiver behind the splitter: NF 8 dB.
        CascadeStage {
            gain: 1.0,
            noise_factor: 6.31,
        },
    ]);
    println!(
        "  {:<16} split {:>6.2} dB, isolation {:>6.1} dB, system NF {:>5.3} dB",
        name,
        db_from_power_ratio(through),
        db_from_power_ratio(isolation),
        10.0 * f_total.log10(),
    );
}

fn main() {
    let device = Phemt::atf54143_like();
    println!("designing the antenna LNA…");
    let design = design_lna(
        &device,
        &DesignGoals::default(),
        &DesignConfig {
            max_evals: 6_000,
            ..Default::default()
        },
    );
    let amp = Amplifier::new(&device, design.snapped);
    let noisy = amp.noisy_two_port(F0).expect("feasible");
    let s = noisy.abcd.to_s(50.0).unwrap();
    let lna_gain = rfkit_net::gains::available_gain(&s, Complex::ZERO);
    let lna_f = noisy
        .noise_params(50.0)
        .unwrap()
        .noise_factor(Complex::ZERO);
    println!(
        "LNA: GA = {:.2} dB, NF = {:.3} dB at GPS L1\n",
        db_from_power_ratio(lna_gain),
        10.0 * lna_f.log10()
    );

    println!("per-receiver-chain budget (LNA -> splitter -> NF 8 dB receiver):");
    let substrate = Substrate::ro4350b();
    chain_report(
        "microstrip tee",
        &TeeJunction::microstrip(&substrate).s_matrix(F0, 50.0),
        lna_gain,
        lna_f,
    );
    chain_report("resistive star", &resistive_splitter(50.0), lna_gain, lna_f);
    chain_report(
        "Wilkinson",
        &Wilkinson::design(F0, 50.0, substrate).s_matrix(F0),
        lna_gain,
        lna_f,
    );
    println!("\nWith ~12 dB of LNA gain in front, even the 6 dB resistive split");
    println!("costs only tenths of a dB of system noise — but only the Wilkinson");
    println!("keeps the two receivers from talking to each other.");
}
