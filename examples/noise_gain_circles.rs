//! The classic chart construction: constant-noise-figure and
//! constant-available-gain circles of the pHEMT at GPS L1, and the
//! graphical NF-vs-gain trade they imply — the picture the paper's
//! goal-attainment optimizer automates.
//!
//! Run with: `cargo run --release --example noise_gain_circles`

use rfkit_device::Phemt;
use rfkit_net::circles::{available_gain_circle, best_nf_on_gain_circle, noise_circle};
use rfkit_net::gains::maximum_available_gain;
use rfkit_num::units::db_from_power_ratio;

fn main() {
    let device = Phemt::atf54143_like();
    let op = device.operating_point(device.bias_for_current(3.0, 0.06).unwrap(), 3.0);
    // The bare device is conditionally stable at L1; add the source
    // degeneration a real design uses so K > 1 and MAG (hence the gain
    // circles) exist.
    let mut ss = device.small_signal(&op);
    ss.extrinsic.ls += 1.3e-9;
    let tp = ss.noisy_two_port(1.57542e9, &device.noise.temperatures(op.ids));
    let s = tp.abcd.to_s(50.0).unwrap();
    let np = tp.noise_params(50.0).unwrap();

    println!(
        "device at GPS L1: NFmin = {:.3} dB at Γopt = {:.3} ∠ {:.1}°",
        np.nf_min_db(),
        np.gamma_opt.abs(),
        np.gamma_opt.arg().to_degrees()
    );
    let mag = maximum_available_gain(&s).expect("unconditionally stable");
    println!(
        "maximum available gain = {:.2} dB",
        db_from_power_ratio(mag)
    );

    println!("\nnoise circles (source plane):");
    for excess_db in [0.1, 0.25, 0.5, 1.0] {
        let f_target = np.fmin * 10f64.powf(excess_db / 10.0);
        let c = noise_circle(&np, f_target).expect("above NFmin");
        println!(
            "  NFmin + {excess_db:>4.2} dB: center {:.3} ∠ {:>6.1}°, radius {:.3}",
            c.center.abs(),
            c.center.arg().to_degrees(),
            c.radius
        );
    }

    println!("\navailable-gain circles:");
    for back_off_db in [0.5, 1.0, 2.0, 4.0] {
        let target = mag * 10f64.powf(-back_off_db / 10.0);
        let c = available_gain_circle(&s, target).expect("below MAG");
        println!(
            "  MAG − {back_off_db:>3.1} dB: center {:.3} ∠ {:>6.1}°, radius {:.3}",
            c.center.abs(),
            c.center.arg().to_degrees(),
            c.radius
        );
    }

    println!("\ngraphical NF-vs-gain trade (best NF on each gain circle):");
    println!("{:>14} {:>12} {:>16}", "GA (dB)", "NF (dB)", "Γs");
    for back_off_db in [0.0, 0.5, 1.0, 2.0, 3.0, 4.0] {
        let target = mag * 10f64.powf(-back_off_db / 10.0);
        if let Some((gs, f)) = best_nf_on_gain_circle(&s, &np, target, 720) {
            println!(
                "{:>14.2} {:>12.3} {:>9.3} ∠ {:>5.1}°",
                db_from_power_ratio(target),
                10.0 * f.log10(),
                gs.abs(),
                gs.arg().to_degrees()
            );
        }
    }
    println!("\nBacking off the gain buys noise figure until the gain circle");
    println!("swallows Γopt — after that the trade is free. The goal-attainment");
    println!("flow finds the same frontier without drawing a single circle.");
}
