#!/usr/bin/env bash
# Regenerates every table and figure of the reproduction into results/.
# See DESIGN.md for the experiment index and EXPERIMENTS.md for the
# recorded outcomes.
set -euo pipefail
# Preflight: fmt/clippy (best-effort), rfkit-analyze lint gate, release
# build, full tests, and the numsan-armed numeric test pass. Experiments
# never run on a tree that fails the correctness tooling.
./ci.sh
cargo build --release -p lna-bench
mkdir -p results
echo "== bench_parallel"
./target/release/bench_parallel | tee results/BENCH_parallel.txt
for bin in table1_model_comparison table2_param_recovery table3_final_design \
           table4_performance table5_tsplitter table6_yield table7_prefilter \
           table8_constellations \
           fig1_extraction_convergence fig2_iv_fit fig3_sparam_fit \
           fig4_pareto_front fig5_sparams_band fig6_nf_band fig7_im3 \
           fig8_ga_ablation fig9_dispersion fig10_cold_fet fig11_temperature \
           fig12_harmonic_balance fig13_metaheuristics fig14_snap_repair; do
  echo "== $bin"
  ./target/release/$bin > "results/$bin.txt"
done
echo "all experiment outputs written to results/"
