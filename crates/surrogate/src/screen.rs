//! Lower-confidence-bound screening of expensive candidate evaluations.
//!
//! [`SurrogateScreen`] sits between an optimizer's candidate generation
//! and its batch of true evaluations. For each candidate it predicts
//! every objective with the current [`ResponseSurface`] and computes a
//! lower confidence bound `LCB_j = μ_j − κ·σ_j`: the most optimistic
//! value the model considers plausible. A candidate whose *optimistic*
//! outlook is still worse than what the optimizer already holds cannot
//! be accepted by the true evaluation either, so skipping it changes
//! nothing but the bill.
//!
//! ## What a verdict means — the prune-never-propagate contract
//!
//! The screen returns only booleans: `true` = spend a true evaluation,
//! `false` = skip this candidate entirely. Predicted values never leave
//! this module; no Pareto front, report, or cache entry can ever hold a
//! surrogate number. The `surrogate-leak` lint in `rfkit-analyze`
//! enforces this structurally across the workspace.
//!
//! ## Determinism
//!
//! All decisions — including the ε-greedy exploration draws from the
//! screen's private seeded [`Rng64`] — are made serially by the caller's
//! generation loop before any parallel evaluation starts, so a fixed
//! seed produces bit-identical decision sequences at any
//! `RFKIT_THREADS`. The screen never reads clocks or ambient state.
//!
//! ## Safety valves
//!
//! * With no model yet (cold start, too few points, failed fit) every
//!   candidate passes (`surrogate.fallback`).
//! * A non-finite prediction passes the candidate.
//! * A batch keep floor ([`SurrogateConfig::min_keep_frac`], never
//!   below one candidate) flips the most promising rejected candidates
//!   back in, so generation loops can never starve and aggressive
//!   thresholds cannot freeze a search.
//! * An ε-greedy schedule (decaying by `explore_half_life`, floored at
//!   `explore_min`) keeps spending occasional true evaluations on
//!   model-rejected candidates, which both bounds the cost of a wrong
//!   model and keeps feeding it training points off the incumbent path.

use crate::model::{ModelKind, ResponseSurface};
use rfkit_num::rng::Rng64;

/// Tuning knobs for [`SurrogateScreen`].
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Model family to fit.
    pub model: ModelKind,
    /// Training points required before the first fit; `0` selects
    /// [`ResponseSurface::min_train_points`] for the model and dimension.
    pub min_train: usize,
    /// Most-recent training window used per fit (older points age out).
    pub max_train: usize,
    /// Refit after this many new observations.
    pub retrain_every: usize,
    /// Dimensionless ridge weight for the fit.
    pub ridge: f64,
    /// Confidence multiplier κ in `LCB = μ − κ·σ`. Larger is more
    /// conservative (fewer rejections).
    pub kappa: f64,
    /// Initial ε-greedy exploration probability.
    pub explore: f64,
    /// Exploration probability floor.
    pub explore_min: f64,
    /// Screening decisions per halving of the exploration probability;
    /// `0` keeps it constant.
    pub explore_half_life: u64,
    /// Confidence floor as a fraction of the per-objective *robust*
    /// (interquartile) training spread:
    /// `σ_eff = max(σ_fit, sigma_floor · robust_spread)`, further
    /// widened by the model's data-support slack. Guards against an
    /// interpolating fit reporting zero residual.
    pub sigma_floor: f64,
    /// Observations with any `|f_j|` above this cap are excluded from
    /// training (penalty values poison polynomial fits).
    pub outlier_cap: f64,
    /// Improvement threshold as a fraction of the per-objective robust
    /// training spread: a candidate is only worth a true evaluation if
    /// its LCB beats the incumbent/reference by this much. `0` (the
    /// default) accepts any candidate that is merely not predicted
    /// worse — on a converged population that keeps paying for
    /// trade-off churn along the front, so optimization-until-plateau
    /// workloads should set a small positive value. The threshold is
    /// stagnation-gated: it stays at zero while the incumbents keep
    /// advancing and ramps in over [`improvement_patience`]
    /// (`Self::improvement_patience`) stagnant screening batches, so it
    /// never throttles a search that is still making progress.
    pub min_improvement: f64,
    /// Screening batches without incumbent progress before
    /// `min_improvement` reaches full strength (the threshold ramps in
    /// linearly). `0` applies the full threshold unconditionally.
    pub improvement_patience: u64,
    /// Minimum fraction of each batch that must survive screening
    /// (rounded up, never below one candidate). When rejections would
    /// leave fewer survivors, the most promising rejected candidates
    /// are forced back in, best first. This bounds the worst case of a
    /// wrong or over-confident model: the optimizer always retains
    /// enough true evaluations per batch to keep learning and advancing,
    /// so aggressive thresholds cannot freeze the search.
    pub min_keep_frac: f64,
    /// Seed for the private exploration RNG.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            model: ModelKind::Quadratic,
            min_train: 0,
            max_train: 256,
            retrain_every: 32,
            ridge: 1e-6,
            kappa: 1.5,
            explore: 0.15,
            explore_min: 0.02,
            explore_half_life: 512,
            sigma_floor: 0.02,
            outlier_cap: f64::INFINITY,
            min_improvement: 0.0,
            improvement_patience: 8,
            min_keep_frac: 0.0,
            seed: 0x5eed5,
        }
    }
}

/// Counters describing what a [`SurrogateScreen`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Successful model fits.
    pub fits: u64,
    /// Candidates kept because their LCB was competitive.
    pub accepted: u64,
    /// Candidates pruned (no true evaluation spent).
    pub rejected: u64,
    /// Candidates kept by the ε-greedy exploration draw.
    pub explored: u64,
    /// Candidates kept because no usable model/prediction existed.
    pub fallbacks: u64,
    /// Batch-level interventions that forced the best rejected
    /// candidate back in so a generation can never starve.
    pub forced: u64,
}

impl ScreenStats {
    /// Total candidates the screen let through to true evaluation.
    pub fn true_evals(&self) -> u64 {
        self.accepted + self.explored + self.fallbacks
    }
}

static OBS_FIT_COUNT: rfkit_obs::Counter = rfkit_obs::Counter::new("surrogate.fit");
static OBS_ACCEPT: rfkit_obs::Counter = rfkit_obs::Counter::new("surrogate.accept");
static OBS_REJECT: rfkit_obs::Counter = rfkit_obs::Counter::new("surrogate.reject");
static OBS_TRUE_EVALS: rfkit_obs::Counter = rfkit_obs::Counter::new("surrogate.true_evals");
static OBS_FALLBACK: rfkit_obs::Counter = rfkit_obs::Counter::new("surrogate.fallback");

/// Online surrogate screen: observes true evaluations, refits on a
/// cadence, and vetoes candidates whose optimistic outlook is already
/// beaten. See the module docs for the contract.
#[derive(Debug)]
pub struct SurrogateScreen {
    dim: usize,
    n_obj: usize,
    cfg: SurrogateConfig,
    train_x: Vec<Vec<f64>>,
    train_f: Vec<Vec<f64>>,
    model: Option<ResponseSurface>,
    rng: Rng64,
    decisions: u64,
    since_fit: usize,
    /// Non-dominated subset of the previous batch's incumbents, for
    /// stagnation detection (scalar screens store single-element rows).
    prev_incumbents: Vec<Vec<f64>>,
    /// Consecutive screening batches whose incumbents did not advance.
    stagnant_batches: u64,
    stats: ScreenStats,
}

impl SurrogateScreen {
    /// Creates an empty screen for `dim` design variables and `n_obj`
    /// objectives (all minimized).
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `n_obj` is zero, or the config is out of
    /// range (`max_train < 2`, negative ridge, κ < 0, exploration
    /// probabilities outside `[0, 1]`).
    pub fn new(dim: usize, n_obj: usize, cfg: SurrogateConfig) -> Self {
        assert!(
            dim > 0 && n_obj > 0,
            "need at least one variable and objective"
        );
        assert!(cfg.max_train >= 2, "max_train must be at least 2");
        assert!(cfg.ridge >= 0.0, "ridge must be non-negative");
        assert!(cfg.kappa >= 0.0, "kappa must be non-negative");
        assert!(
            (0.0..=1.0).contains(&cfg.explore) && (0.0..=1.0).contains(&cfg.explore_min),
            "exploration probabilities must lie in [0, 1]"
        );
        assert!(
            cfg.min_improvement >= 0.0,
            "min_improvement must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.min_keep_frac),
            "min_keep_frac must lie in [0, 1]"
        );
        let rng = Rng64::new(cfg.seed);
        SurrogateScreen {
            dim,
            n_obj,
            cfg,
            train_x: Vec::new(),
            train_f: Vec::new(),
            model: None,
            rng,
            decisions: 0,
            since_fit: 0,
            prev_incumbents: Vec::new(),
            stagnant_batches: 0,
            stats: ScreenStats::default(),
        }
    }

    /// Records a completed true evaluation as training data.
    ///
    /// Non-finite objective vectors and rows beyond
    /// [`SurrogateConfig::outlier_cap`] are ignored — penalty encodings
    /// (e.g. infeasible-point constants) would poison the fit.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn observe(&mut self, x: &[f64], f: &[f64]) {
        assert_eq!(x.len(), self.dim, "design-point dimension mismatch");
        assert_eq!(f.len(), self.n_obj, "objective-count mismatch");
        let usable = x.iter().all(|v| v.is_finite())
            && f.iter()
                .all(|v| v.is_finite() && v.abs() <= self.cfg.outlier_cap);
        if !usable {
            return;
        }
        self.train_x.push(x.to_vec());
        self.train_f.push(f.to_vec());
        self.since_fit += 1;
        // Age out old points in deterministic blocks so memory stays
        // bounded on long runs while fits always see the newest window.
        if self.train_x.len() >= 2 * self.cfg.max_train {
            let cut = self.train_x.len() - self.cfg.max_train;
            self.train_x.drain(..cut);
            self.train_f.drain(..cut);
        }
    }

    /// Seeds the training set from already-evaluated `(x, f)` pairs —
    /// e.g. a `DesignCache` snapshot — without counting toward the
    /// retrain cadence.
    pub fn seed_training(&mut self, pts: &[(Vec<f64>, Vec<f64>)]) {
        for (x, f) in pts {
            self.observe(x, f);
        }
    }

    /// Screens candidates for a scalar (single-objective) optimizer.
    ///
    /// `incumbents[i]` is the value the candidate must beat to be
    /// accepted (its parent/personal best). Returns one keep/skip
    /// verdict per candidate; at least one verdict is `true`.
    ///
    /// # Panics
    ///
    /// Panics if `incumbents.len() != candidates.len()`, on dimension
    /// mismatches, or if the screen was built with `n_obj != 1`.
    pub fn screen_scalar(&mut self, candidates: &[Vec<f64>], incumbents: &[f64]) -> Vec<bool> {
        assert_eq!(self.n_obj, 1, "screen_scalar requires a 1-objective screen");
        assert_eq!(
            candidates.len(),
            incumbents.len(),
            "need one incumbent value per candidate"
        );
        self.ensure_fitted();
        let inc_rows: Vec<Vec<f64>> = incumbents.iter().map(|v| vec![*v]).collect();
        let eps = self.improvement_margin(&inc_rows);
        let mut keep = Vec::with_capacity(candidates.len());
        // Rejected candidates ranked most-promising-first (lowest LCB)
        // for the keep-floor flips.
        let mut rejected: Vec<(usize, f64)> = Vec::new();
        let mut lcb_buf = [0.0];
        for (i, x) in candidates.iter().enumerate() {
            let verdict = match self.lcb_into(x, &mut lcb_buf) {
                None => Verdict::Fallback,
                Some(()) => {
                    let lcb = lcb_buf[0] + eps[0];
                    if self.draw_explore() {
                        Verdict::Explored
                    } else if lcb <= incumbents[i] {
                        Verdict::Accepted
                    } else {
                        rejected.push((i, lcb));
                        Verdict::Rejected
                    }
                }
            };
            keep.push(verdict);
        }
        rejected.sort_by(|a, b| rfkit_num::total_cmp_f64(&a.1, &b.1));
        let ranked: Vec<usize> = rejected.into_iter().map(|(i, _)| i).collect();
        self.finalize(&mut keep, &ranked)
    }

    /// Screens candidates for a multi-objective optimizer.
    ///
    /// A candidate is pruned when its LCB vector — optimistic in every
    /// objective at once — is still Pareto-dominated by some point of
    /// `reference` (typically the parent population's objective
    /// vectors). Returns one verdict per candidate; at least one is
    /// `true`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or if `reference` rows disagree
    /// with the screen's objective count.
    pub fn screen_multi(&mut self, candidates: &[Vec<f64>], reference: &[Vec<f64>]) -> Vec<bool> {
        for r in reference {
            assert_eq!(r.len(), self.n_obj, "reference objective-count mismatch");
        }
        self.ensure_fitted();
        let eps = self.improvement_margin(reference);
        let mut keep = Vec::with_capacity(candidates.len());
        // Rejected candidates ranked for the keep-floor flips: fewest
        // dominating reference rows first, then lowest LCB sum, then
        // lowest index (all deterministic tie-breaks).
        let mut rejected: Vec<(usize, usize, f64)> = Vec::new();
        let mut lcb = vec![0.0; self.n_obj];
        for (i, x) in candidates.iter().enumerate() {
            let verdict = match self.lcb_into(x, &mut lcb) {
                None => Verdict::Fallback,
                Some(()) => {
                    // The ε-shifted LCB must still be undominated: the
                    // candidate has to *promise* an improvement, not
                    // merely a lateral move along the front.
                    for (l, e) in lcb.iter_mut().zip(&eps) {
                        *l += e;
                    }
                    let dominated_by = reference.iter().filter(|r| dominates(r, &lcb)).count();
                    if self.draw_explore() {
                        Verdict::Explored
                    } else if dominated_by == 0 {
                        Verdict::Accepted
                    } else {
                        let sum: f64 = lcb.iter().sum();
                        rejected.push((i, dominated_by, sum));
                        Verdict::Rejected
                    }
                }
            };
            keep.push(verdict);
        }
        rejected.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then(rfkit_num::total_cmp_f64(&a.2, &b.2))
                .then(a.0.cmp(&b.0))
        });
        let ranked: Vec<usize> = rejected.into_iter().map(|(i, ..)| i).collect();
        self.finalize(&mut keep, &ranked)
    }

    /// The lower confidence bound the screen would use for `x`, or
    /// `None` when no usable model exists. Exposed for tests and
    /// diagnostics — never feed these values into results.
    pub fn predict_lcb(&self, x: &[f64]) -> Option<Vec<f64>> {
        let mut out = vec![0.0; self.n_obj];
        self.lcb_into(x, &mut out).map(|()| out)
    }

    /// Decision counters accumulated so far.
    pub fn stats(&self) -> ScreenStats {
        self.stats
    }

    /// Whether a fitted model is currently armed.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Training points currently held.
    pub fn training_len(&self) -> usize {
        self.train_x.len()
    }

    fn min_train(&self) -> usize {
        if self.cfg.min_train > 0 {
            self.cfg.min_train
        } else {
            ResponseSurface::min_train_points(self.cfg.model, self.dim)
        }
    }

    /// Refits lazily at screen entry: first fit once enough training
    /// points exist, then on the retrain cadence.
    fn ensure_fitted(&mut self) {
        let enough = self.train_x.len() >= self.min_train();
        let due = self.model.is_none() || self.since_fit >= self.cfg.retrain_every;
        if !(enough && due) {
            return;
        }
        let start = self.train_x.len().saturating_sub(self.cfg.max_train);
        let _span = rfkit_obs::span("surrogate.fit");
        match ResponseSurface::fit(
            self.cfg.model,
            &self.train_x[start..],
            &self.train_f[start..],
            self.cfg.ridge,
        ) {
            Ok(m) => {
                self.model = Some(m);
                self.stats.fits += 1;
                OBS_FIT_COUNT.add(1);
            }
            Err(_) => {
                // Degenerate window (e.g. coincident points): drop the
                // model and fall back to true evaluation until the data
                // improves.
                self.model = None;
            }
        }
        self.since_fit = 0;
    }

    /// Updates the stagnation gate from this batch's incumbent set and
    /// returns the per-objective improvement threshold in objective
    /// units (zero while no model is armed).
    ///
    /// Only the *non-dominated subset* of the incumbents is tracked —
    /// against the full set, any offspring that displaces a dominated
    /// straggler would register as progress, and an actively-selecting
    /// optimizer does that every batch. The front "advanced" when some
    /// current front row strictly dominates a previous front row, or
    /// pushes past the previous per-objective minimum (an extreme
    /// extension). Lateral in-fill along an unchanged front counts as
    /// stagnation — that is exactly the churn the threshold exists to
    /// stop paying for. The threshold ramps in linearly over
    /// `improvement_patience` stagnant batches and resets to zero the
    /// moment progress reappears, so a search that is still advancing
    /// is never throttled, while a plateaued one drains to the
    /// keep-floor-plus-exploration trickle.
    fn improvement_margin(&mut self, incumbents: &[Vec<f64>]) -> Vec<f64> {
        let front: Vec<Vec<f64>> = incumbents
            .iter()
            .filter(|r| !incumbents.iter().any(|o| dominates(o, r)))
            .cloned()
            .collect();
        if !self.prev_incumbents.is_empty() {
            let mut prev_min = vec![f64::INFINITY; self.n_obj];
            for p in &self.prev_incumbents {
                for (slot, v) in prev_min.iter_mut().zip(p) {
                    *slot = slot.min(*v);
                }
            }
            let advanced = front.iter().any(|r| {
                self.prev_incumbents.iter().any(|p| dominates(r, p))
                    || r.iter().zip(&prev_min).any(|(v, m)| v < m)
            });
            if advanced {
                self.stagnant_batches = 0;
            } else {
                self.stagnant_batches += 1;
            }
        }
        self.prev_incumbents = front;
        let ramp = if self.cfg.improvement_patience == 0 {
            1.0
        } else {
            (self.stagnant_batches as f64 / self.cfg.improvement_patience as f64).min(1.0)
        };
        match &self.model {
            Some(m) => m
                .robust_spread()
                .iter()
                .map(|s| self.cfg.min_improvement * ramp * s)
                .collect(),
            None => vec![0.0; self.n_obj],
        }
    }

    fn lcb_into(&self, x: &[f64], out: &mut [f64]) -> Option<()> {
        let model = self.model.as_ref()?;
        model.predict_into(x, out);
        // Confidence widens as data support drops: at a training point
        // the band is the fit residual (floored), with no support it
        // opens by the robust training spread. Both the floor and the
        // support slack scale with the *robust* (interquartile) spread —
        // a penalty plateau in the training values stretches the full
        // spread a thousandfold, and a band on that scale would swallow
        // every comparison ordinary candidates face.
        let slack = 1.0 - model.support(x);
        let mut ok = true;
        for (j, o) in out.iter_mut().enumerate() {
            let spread = model.robust_spread()[j];
            let sigma = model.sigma()[j].max(self.cfg.sigma_floor * spread) + slack * spread;
            *o -= self.cfg.kappa * sigma;
            ok &= o.is_finite();
        }
        ok.then_some(())
    }

    /// One ε-greedy draw per modeled candidate, with deterministic
    /// exponential decay of the exploration probability.
    fn draw_explore(&mut self) -> bool {
        let eps = if self.cfg.explore_half_life == 0 {
            self.cfg.explore
        } else {
            let t = self.decisions as f64 / self.cfg.explore_half_life as f64;
            (self.cfg.explore * 0.5_f64.powf(t)).max(self.cfg.explore_min)
        };
        self.decisions += 1;
        self.rng.chance(eps)
    }

    /// Applies the batch keep floor (flipping ranked rejected
    /// candidates back in, best first), emits telemetry, and converts
    /// verdicts to booleans.
    fn finalize(&mut self, verdicts: &mut [Verdict], ranked_rejected: &[usize]) -> Vec<bool> {
        let min_keep = ((self.cfg.min_keep_frac * verdicts.len() as f64).ceil() as usize).max(1);
        let kept_n = verdicts.iter().filter(|v| **v != Verdict::Rejected).count();
        for &i in ranked_rejected.iter().take(min_keep.saturating_sub(kept_n)) {
            verdicts[i] = Verdict::Forced;
            self.stats.forced += 1;
        }
        let mut kept = 0u64;
        for v in verdicts.iter() {
            match v {
                Verdict::Accepted | Verdict::Forced => {
                    self.stats.accepted += 1;
                    OBS_ACCEPT.add(1);
                }
                Verdict::Explored => {
                    self.stats.explored += 1;
                    OBS_ACCEPT.add(1);
                }
                Verdict::Fallback => {
                    self.stats.fallbacks += 1;
                    OBS_FALLBACK.add(1);
                }
                Verdict::Rejected => {
                    self.stats.rejected += 1;
                    OBS_REJECT.add(1);
                }
            }
            if *v != Verdict::Rejected {
                kept += 1;
            }
        }
        OBS_TRUE_EVALS.add(kept);
        verdicts.iter().map(|v| *v != Verdict::Rejected).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Accepted,
    Explored,
    Fallback,
    Rejected,
    Forced,
}

/// `a` Pareto-dominates `b` under minimization: no worse everywhere,
/// strictly better somewhere.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (ai, bi) in a.iter().zip(b) {
        if ai > bi {
            return false;
        }
        if ai < bi {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_no_explore(model: ModelKind) -> SurrogateConfig {
        SurrogateConfig {
            model,
            explore: 0.0,
            explore_min: 0.0,
            kappa: 1.0,
            ..SurrogateConfig::default()
        }
    }

    /// Deterministic 2-D sample cloud and a smooth scalar objective.
    fn scalar_training(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Rng64::new(42);
        let mut xs = Vec::new();
        let mut fs = Vec::new();
        for _ in 0..n {
            let x = vec![rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
            let f = x[0] * x[0] + 2.0 * x[1] * x[1] + 0.3 * x[0];
            fs.push(vec![f]);
            xs.push(x);
        }
        (xs, fs)
    }

    #[test]
    fn cold_start_passes_everything_as_fallback() {
        let mut s = SurrogateScreen::new(2, 1, cfg_no_explore(ModelKind::Quadratic));
        let cands = vec![vec![0.1, 0.2], vec![0.5, -0.4]];
        let keep = s.screen_scalar(&cands, &[0.0, 0.0]);
        assert_eq!(keep, vec![true, true]);
        assert_eq!(s.stats().fallbacks, 2);
        assert_eq!(s.stats().rejected, 0);
        assert!(!s.has_model());
    }

    #[test]
    fn fitted_screen_prunes_hopeless_scalar_candidates() {
        let mut s = SurrogateScreen::new(2, 1, cfg_no_explore(ModelKind::Quadratic));
        let (xs, fs) = scalar_training(60);
        for (x, f) in xs.iter().zip(&fs) {
            s.observe(x, f);
        }
        // Incumbent is excellent; a far-out candidate's LCB can't beat it.
        let cands = vec![vec![0.9, 0.9], vec![0.02, -0.03]];
        let keep = s.screen_scalar(&cands, &[0.01, 0.01]);
        assert!(s.has_model());
        assert!(!keep[0], "hopeless candidate should be pruned");
        assert!(keep[1], "near-optimal candidate must survive");
        assert!(s.stats().rejected >= 1);
        assert!(s.stats().true_evals() >= 1);
    }

    #[test]
    fn at_least_one_candidate_always_survives() {
        let mut s = SurrogateScreen::new(2, 1, cfg_no_explore(ModelKind::Quadratic));
        let (xs, fs) = scalar_training(60);
        for (x, f) in xs.iter().zip(&fs) {
            s.observe(x, f);
        }
        // All candidates are terrible against an unbeatable incumbent.
        let cands = vec![vec![0.9, 0.9], vec![-0.8, 0.95], vec![0.85, -0.9]];
        let keep = s.screen_scalar(&cands, &[-100.0, -100.0, -100.0]);
        assert_eq!(keep.iter().filter(|k| **k).count(), 1);
        assert_eq!(s.stats().forced, 1);
    }

    #[test]
    fn multi_objective_dominated_lcb_is_pruned() {
        let mut s = SurrogateScreen::new(2, 2, cfg_no_explore(ModelKind::Quadratic));
        let mut rng = Rng64::new(7);
        for _ in 0..80 {
            let x = vec![rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
            // Conflicting objectives: f1 wants x near (1,1), f2 near (-1,-1).
            let f1 = (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2);
            let f2 = (x[0] + 1.0).powi(2) + (x[1] + 1.0).powi(2);
            s.observe(&x, &[f1, f2]);
        }
        // Reference: a point near each attractor — together they
        // dominate the middle-of-nowhere corner (1, -1) region? No:
        // corner (1,-1) trades off. Use a reference that dominates
        // everything far from the diagonal.
        let reference = vec![vec![0.1, 0.1]];
        // (0,0) has f ≈ (2,2): dominated by (0.1,0.1). On-diagonal
        // optimum (1,1) has f ≈ (0,8): not dominated.
        let cands = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let keep = s.screen_multi(&cands, &reference);
        assert!(s.has_model());
        assert!(!keep[0], "dominated-LCB candidate should be pruned");
        assert!(keep[1], "trade-off candidate must survive");
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let run = || {
            let mut cfg = cfg_no_explore(ModelKind::Quadratic);
            cfg.explore = 0.3;
            cfg.explore_min = 0.05;
            cfg.seed = 99;
            let mut s = SurrogateScreen::new(2, 1, cfg);
            let (xs, fs) = scalar_training(80);
            for (x, f) in xs.iter().zip(&fs) {
                s.observe(x, f);
            }
            let mut rng = Rng64::new(5);
            let mut verdicts = Vec::new();
            for _ in 0..10 {
                let cands: Vec<Vec<f64>> = (0..8)
                    .map(|_| vec![rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)])
                    .collect();
                let incumbents = vec![0.05; cands.len()];
                verdicts.push(s.screen_scalar(&cands, &incumbents));
            }
            (verdicts, s.stats())
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn outlier_cap_excludes_penalty_rows() {
        let mut cfg = cfg_no_explore(ModelKind::Quadratic);
        cfg.outlier_cap = 100.0;
        let mut s = SurrogateScreen::new(2, 1, cfg);
        s.observe(&[0.0, 0.0], &[1e3]); // penalty encoding: ignored
        s.observe(&[0.1, 0.1], &[2.0]);
        s.observe(&[0.2, 0.1], &[f64::NAN]); // non-finite: ignored
        assert_eq!(s.training_len(), 1);
    }

    #[test]
    fn retrain_cadence_refits_with_new_data() {
        let mut cfg = cfg_no_explore(ModelKind::Quadratic);
        cfg.retrain_every = 10;
        let mut s = SurrogateScreen::new(2, 1, cfg);
        let (xs, fs) = scalar_training(90);
        for (x, f) in xs.iter().zip(&fs).take(60) {
            s.observe(x, f);
        }
        let cands = vec![vec![0.0, 0.0]];
        s.screen_scalar(&cands, &[10.0]);
        assert_eq!(s.stats().fits, 1);
        for (x, f) in xs.iter().zip(&fs).skip(60) {
            s.observe(x, f);
        }
        s.screen_scalar(&cands, &[10.0]);
        assert_eq!(s.stats().fits, 2, "cadence-due refit did not happen");
    }

    #[test]
    fn rbf_screen_also_arms() {
        let mut s = SurrogateScreen::new(2, 1, cfg_no_explore(ModelKind::Rbf));
        let (xs, fs) = scalar_training(40);
        for (x, f) in xs.iter().zip(&fs) {
            s.observe(x, f);
        }
        s.screen_scalar(&[vec![0.0, 0.0]], &[10.0]);
        assert!(s.has_model());
        let lcb = s.predict_lcb(&[0.0, 0.0]).unwrap();
        assert!(lcb[0].is_finite());
    }

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }
}
