//! Response-surface models fitted from true-evaluated design points.
//!
//! Two model families, both linear-in-parameters so they ride on the
//! `rfkit-num` ridge least-squares and LU kernels:
//!
//! * [`ModelKind::Quadratic`] — a full second-order polynomial surface
//!   (`1 + d + d(d+1)/2` terms) in normalized coordinates, the classic
//!   response-surface-methodology model. Cheap, smooth, and a good
//!   global trend filter for LNA objectives which are locally bowl- or
//!   ridge-shaped in the design variables.
//! * [`ModelKind::Rbf`] — Gaussian radial-basis interpolation with a
//!   data-scaled shape parameter and ridge-damped diagonal. More
//!   flexible; cost grows with the training window.
//!
//! All objectives share one design/kernel matrix: the factorization is
//! computed once and reused per objective column, mirroring how the AC
//! engine reuses pivots across right-hand sides.
//!
//! Inputs are mapped through [`Normalizer`] onto `[-1, 1]^d` before any
//! basis expansion — the volts-next-to-farads conditioning fix pinned by
//! the regression tests in `rfkit_num::lstsq`.

use rfkit_num::lstsq::{ridge_solve, Normalizer};
use rfkit_num::{MatrixError, RMatrix};

/// Which response-surface family to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Full quadratic polynomial surface in normalized coordinates.
    Quadratic,
    /// Gaussian radial-basis interpolant with ridge-damped diagonal.
    Rbf,
}

/// Number of terms in the full quadratic basis over `d` variables.
pub fn n_quad_terms(d: usize) -> usize {
    1 + d + d * (d + 1) / 2
}

/// Expands the full quadratic basis of a normalized point into `out`.
fn quad_terms_into(u: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.push(1.0);
    out.extend_from_slice(u);
    for i in 0..u.len() {
        for j in i..u.len() {
            out.push(u[i] * u[j]);
        }
    }
}

/// A fitted multi-objective response surface.
///
/// Produced by [`ResponseSurface::fit`]; immutable afterwards. Predicts
/// all objectives of a raw (unnormalized) design point, and exposes the
/// per-objective in-sample residual RMS and training spread that the
/// screening layer turns into a confidence band.
#[derive(Debug, Clone)]
pub struct ResponseSurface {
    kind: ModelKind,
    norm: Normalizer,
    n_obj: usize,
    /// Per-objective weights: basis coefficients (quadratic) or kernel
    /// weights (RBF).
    weights: Vec<Vec<f64>>,
    /// Normalized training points; kernel centers for RBF, empty for
    /// quadratic.
    centers: Vec<Vec<f64>>,
    /// Per-objective training mean the RBF relaxes to far from the
    /// data (kernel weights are fitted on mean-centered values); empty
    /// for quadratic, whose basis carries its own intercept.
    offsets: Vec<f64>,
    gamma: f64,
    sigma: Vec<f64>,
    half_spread: Vec<f64>,
    robust_spread: Vec<f64>,
}

impl ResponseSurface {
    /// Minimum number of training points for a meaningful fit of `kind`
    /// over `d` input dimensions.
    pub fn min_train_points(kind: ModelKind, d: usize) -> usize {
        match kind {
            // Oversample the basis 2x so the LS system is genuinely
            // overdetermined and the residual RMS is meaningful.
            ModelKind::Quadratic => 2 * n_quad_terms(d),
            ModelKind::Rbf => (3 * d).max(10),
        }
    }

    /// Fits a surface of `kind` to true-evaluated samples: `xs[i]` is a
    /// raw design point, `fs[i]` its objective vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when the (ridge-regularized)
    /// system cannot be factored — e.g. all training points coincide.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, rows have inconsistent lengths,
    /// or `ridge` is negative.
    pub fn fit(
        kind: ModelKind,
        xs: &[Vec<f64>],
        fs: &[Vec<f64>],
        ridge: f64,
    ) -> Result<ResponseSurface, MatrixError> {
        assert_eq!(xs.len(), fs.len(), "need one objective row per point");
        assert!(!xs.is_empty(), "need at least one training point");
        let n_obj = fs[0].len();
        assert!(n_obj > 0, "need at least one objective");
        let norm = Normalizer::from_samples(xs);
        let us: Vec<Vec<f64>> = xs.iter().map(|x| norm.normalize(x)).collect();
        let ys: Vec<Vec<f64>> = (0..n_obj)
            .map(|j| fs.iter().map(|f| f[j]).collect())
            .collect();
        let mut surface = match kind {
            ModelKind::Quadratic => {
                let m = n_quad_terms(norm.dim());
                let rows: Vec<Vec<f64>> = us
                    .iter()
                    .map(|u| {
                        let mut row = Vec::with_capacity(m);
                        quad_terms_into(u, &mut row);
                        row
                    })
                    .collect();
                let a = RMatrix::from_fn(us.len(), m, |i, j| rows[i][j]);
                let weights = ridge_solve(&a, &ys, ridge)?;
                ResponseSurface {
                    kind,
                    norm,
                    n_obj,
                    weights,
                    centers: Vec::new(),
                    offsets: Vec::new(),
                    gamma: 0.0,
                    sigma: vec![0.0; n_obj],
                    half_spread: vec![0.0; n_obj],
                    robust_spread: vec![0.0; n_obj],
                }
            }
            ModelKind::Rbf => {
                let n = us.len();
                // Shape parameter from the mean pairwise squared
                // distance so the kernel width tracks the data cloud.
                let mut sum_d2 = 0.0;
                let mut pairs = 0u64;
                for i in 0..n {
                    for j in (i + 1)..n {
                        sum_d2 += sq_dist(&us[i], &us[j]);
                        pairs += 1;
                    }
                }
                let mean_d2 = if pairs == 0 {
                    0.0
                } else {
                    sum_d2 / pairs as f64
                };
                if !mean_d2.is_finite() || mean_d2 <= 0.0 {
                    return Err(MatrixError::Singular { pivot: 0 });
                }
                let gamma = 1.0 / mean_d2;
                let mut k = RMatrix::from_fn(n, n, |i, j| (-gamma * sq_dist(&us[i], &us[j])).exp());
                // Kernel diagonal is exactly 1, so `ridge` is already a
                // dimensionless damping of the interpolation system.
                for i in 0..n {
                    k[(i, i)] += ridge;
                }
                let lu = k.lu()?;
                // Fit kernel weights on mean-centered objectives: a bare
                // Gaussian expansion decays to zero away from the data,
                // and "zero" is an arbitrary (often flattering) value in
                // objective units. Centering makes the far-field
                // prediction the training mean instead — the honest
                // no-information answer.
                let offsets: Vec<f64> = ys
                    .iter()
                    .map(|y| y.iter().sum::<f64>() / y.len() as f64)
                    .collect();
                let weights: Vec<Vec<f64>> = ys
                    .iter()
                    .zip(&offsets)
                    .map(|(y, m)| {
                        let centered: Vec<f64> = y.iter().map(|v| v - m).collect();
                        lu.solve(&centered)
                    })
                    .collect();
                ResponseSurface {
                    kind,
                    norm,
                    n_obj,
                    weights,
                    centers: us,
                    offsets,
                    gamma,
                    sigma: vec![0.0; n_obj],
                    half_spread: vec![0.0; n_obj],
                    robust_spread: vec![0.0; n_obj],
                }
            }
        };
        // In-sample residual RMS and training spread per objective: the
        // raw material for the screening layer's confidence band.
        let mut pred = vec![0.0; n_obj];
        let mut sq_sum = vec![0.0; n_obj];
        let mut lo = vec![f64::INFINITY; n_obj];
        let mut hi = vec![f64::NEG_INFINITY; n_obj];
        for (x, f) in xs.iter().zip(fs) {
            surface.predict_into(x, &mut pred);
            for j in 0..n_obj {
                let r = pred[j] - f[j];
                sq_sum[j] += r * r;
                lo[j] = lo[j].min(f[j]);
                hi[j] = hi[j].max(f[j]);
            }
        }
        for j in 0..n_obj {
            surface.sigma[j] = (sq_sum[j] / xs.len() as f64).sqrt();
            surface.half_spread[j] = 0.5 * (hi[j] - lo[j]);
            // Robust spread: half the interquartile range. When a
            // minority of training rows sit on a penalty plateau far
            // from the regular values (infeasible-design encodings),
            // the full spread explodes while the IQR keeps tracking the
            // scale on which real candidates are compared.
            let mut sorted = ys[j].clone();
            sorted.sort_by(rfkit_num::total_cmp_f64);
            let q25 = sorted[sorted.len() / 4];
            let q75 = sorted[(3 * sorted.len()) / 4];
            surface.robust_spread[j] = 0.5 * (q75 - q25);
        }
        Ok(surface)
    }

    /// Model family of this surface.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.norm.dim()
    }

    /// Number of objectives predicted per point.
    pub fn n_obj(&self) -> usize {
        self.n_obj
    }

    /// Per-objective in-sample residual RMS of the fit.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// Per-objective half-spread (half of max − min) of the training
    /// objectives; a scale reference for confidence floors.
    pub fn half_spread(&self) -> &[f64] {
        &self.half_spread
    }

    /// Per-objective robust spread (half the interquartile range) of
    /// the training objectives. Unlike [`half_spread`](Self::half_spread)
    /// this ignores minority outliers — penalty plateaus in particular —
    /// so it measures the scale on which ordinary candidates differ.
    pub fn robust_spread(&self) -> &[f64] {
        &self.robust_spread
    }

    /// Predicts all objectives of a raw design point (allocating).
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_obj];
        self.predict_into(x, &mut out);
        out
    }

    /// Data support for a prediction at `x`, in `[0, 1]`: how close the
    /// point sits to the training cloud on the model's own length
    /// scale. For the RBF this is the largest kernel value against any
    /// center (1 at a training point, → 0 far away); the quadratic is a
    /// global trend fit and always reports full support. Screening
    /// layers widen their confidence band as support drops.
    pub fn support(&self, x: &[f64]) -> f64 {
        match self.kind {
            ModelKind::Quadratic => 1.0,
            ModelKind::Rbf => {
                let u = self.norm.normalize(x);
                self.centers
                    .iter()
                    .map(|c| (-self.gamma * sq_dist(&u, c)).exp())
                    .fold(0.0, f64::max)
            }
        }
    }

    /// Predicts all objectives of a raw design point into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `out.len() != self.n_obj()`.
    pub fn predict_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_obj, "objective count mismatch");
        let u = self.norm.normalize(x);
        match self.kind {
            ModelKind::Quadratic => {
                let mut terms = Vec::with_capacity(n_quad_terms(u.len()));
                quad_terms_into(&u, &mut terms);
                for (o, w) in out.iter_mut().zip(&self.weights) {
                    *o = terms.iter().zip(w).map(|(t, c)| t * c).sum();
                }
            }
            ModelKind::Rbf => {
                for ((o, w), m) in out.iter_mut().zip(&self.weights).zip(&self.offsets) {
                    *o = m + self
                        .centers
                        .iter()
                        .zip(w)
                        .map(|(c, wi)| (-self.gamma * sq_dist(&u, c)).exp() * wi)
                        .sum::<f64>();
                }
            }
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(x: &[f64]) -> Vec<f64> {
        // Two objectives with curvature and an interaction term, on
        // volts-vs-farads scales.
        let v = x[0];
        let c = x[1] / 1e-12;
        vec![
            1.5 + 0.4 * (v - 2.5) * (v - 2.5) + 0.1 * c - 0.05 * v * c,
            -10.0 + 0.8 * v + 0.3 * (c - 5.0) * (c - 5.0),
        ]
    }

    fn training_grid() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut xs = Vec::new();
        for i in 0..9 {
            for j in 0..9 {
                xs.push(vec![1.5 + 0.3 * i as f64, (0.5 + 1.4 * j as f64) * 1e-12]);
            }
        }
        let fs = xs.iter().map(|x| truth(x)).collect();
        (xs, fs)
    }

    #[test]
    fn quadratic_recovers_quadratic_truth() {
        let (xs, fs) = training_grid();
        let m = ResponseSurface::fit(ModelKind::Quadratic, &xs, &fs, 1e-10).unwrap();
        assert_eq!(m.n_obj(), 2);
        // Truth is itself quadratic: fit must be near-exact, including
        // off the training lattice.
        let probe = vec![2.13, 3.7e-12];
        let p = m.predict(&probe);
        let t = truth(&probe);
        assert!((p[0] - t[0]).abs() < 1e-6, "{} vs {}", p[0], t[0]);
        assert!((p[1] - t[1]).abs() < 1e-6, "{} vs {}", p[1], t[1]);
        // Residual RMS on an exactly-representable truth is ~0.
        assert!(m.sigma()[0] < 1e-6 && m.sigma()[1] < 1e-6);
        assert!(m.half_spread()[0] > 0.0);
    }

    #[test]
    fn rbf_interpolates_training_points() {
        let (xs, fs) = training_grid();
        let m = ResponseSurface::fit(ModelKind::Rbf, &xs, &fs, 1e-8).unwrap();
        let p = m.predict(&xs[40]);
        assert!((p[0] - fs[40][0]).abs() < 1e-3, "{} vs {}", p[0], fs[40][0]);
        assert!((p[1] - fs[40][1]).abs() < 1e-3, "{} vs {}", p[1], fs[40][1]);
    }

    #[test]
    fn rbf_far_field_relaxes_to_training_mean() {
        let (xs, fs) = training_grid();
        let m = ResponseSurface::fit(ModelKind::Rbf, &xs, &fs, 1e-8).unwrap();
        let mean: Vec<f64> = (0..2)
            .map(|j| fs.iter().map(|f| f[j]).sum::<f64>() / fs.len() as f64)
            .collect();
        // A probe far outside the training cloud must not collapse to
        // zero (an arbitrary value in objective units) but to the mean.
        let p = m.predict(&[1e3, 1e-9]);
        assert!((p[0] - mean[0]).abs() < 1e-6, "{} vs {}", p[0], mean[0]);
        assert!((p[1] - mean[1]).abs() < 1e-6, "{} vs {}", p[1], mean[1]);
    }

    #[test]
    fn coincident_points_are_singular_not_panic() {
        let xs = vec![vec![1.0, 2.0]; 12];
        let fs = vec![vec![3.0]; 12];
        assert!(ResponseSurface::fit(ModelKind::Rbf, &xs, &fs, 0.0).is_err());
    }

    #[test]
    fn min_train_points_scales_with_dimension() {
        assert_eq!(n_quad_terms(7), 36);
        assert_eq!(
            ResponseSurface::min_train_points(ModelKind::Quadratic, 7),
            72
        );
        assert_eq!(ResponseSurface::min_train_points(ModelKind::Rbf, 7), 21);
    }
}
