//! # rfkit-surrogate
//!
//! Online response-surface surrogates that cut the number of *true*
//! band evaluations an optimization run spends, without ever letting a
//! predicted number into a result.
//!
//! The LNA design flow's cost is dominated by full band sweeps: tens of
//! frequency points times process corners per candidate, for thousands
//! of candidates, most of which an accurate cheap model could have
//! rejected outright. This crate fits regularized quadratic or RBF
//! response surfaces ([`ResponseSurface`]) to the points the design
//! cache has already true-evaluated, and wraps them in a
//! lower-confidence-bound screening rule ([`SurrogateScreen`]) that
//! DE/PSO/NSGA-II generation loops consult before paying for a sweep.
//!
//! Two invariants shape the whole crate:
//!
//! * **Prune, never propagate** — the screen only answers "is this
//!   candidate worth a true evaluation?". Predicted objective values
//!   never reach a Pareto front, report, or cache entry; the
//!   `surrogate-leak` lint in `rfkit-analyze` checks this structurally.
//! * **Determinism** — decisions happen serially in the caller's
//!   generation loop using a private seeded RNG, so fixed-seed runs
//!   remain bit-identical at any `RFKIT_THREADS`.
//!
//! ## Example
//!
//! ```
//! use rfkit_surrogate::{ModelKind, SurrogateConfig, SurrogateScreen};
//!
//! let cfg = SurrogateConfig { explore: 0.0, explore_min: 0.0, ..Default::default() };
//! let mut screen = SurrogateScreen::new(2, 1, cfg);
//! // Feed true evaluations of f(x) = x0² + x1² as they happen...
//! let mut rng = rfkit_num::rng::Rng64::new(1);
//! for _ in 0..80 {
//!     let x = [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
//!     screen.observe(&x, &[x[0] * x[0] + x[1] * x[1]]);
//! }
//! // ...then let it veto candidates that cannot beat the incumbent.
//! let keep = screen.screen_scalar(&[vec![0.9, 0.9], vec![0.05, 0.0]], &[0.01, 0.01]);
//! assert!(keep[1]); // the near-optimal candidate always survives
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod screen;

pub use model::{n_quad_terms, ModelKind, ResponseSurface};
pub use screen::{ScreenStats, SurrogateConfig, SurrogateScreen};
