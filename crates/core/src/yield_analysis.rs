//! Monte-Carlo production-yield analysis.
//!
//! A design that meets spec only at nominal component values is not a
//! design. This module "manufactures" many units of a design with the
//! catalog tolerances of [`crate::measure::BuildConfig`] and reports the
//! fraction meeting a pass/fail specification — together with which
//! criterion kills the failures, which tells the designer what margin to
//! buy next.

use crate::amplifier::{Amplifier, DesignVariables};
use crate::band::{BandMetrics, BandSpec};
use crate::measure::{BuildConfig, BuiltAmplifier};
use rfkit_device::Phemt;
use rfkit_par::par_collect;
use rfkit_robust::{faults, DegradePolicy, PointDiagnostic};

// Per-unit failure telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_YIELD_UNITS_FAILED: rfkit_obs::Counter = rfkit_obs::Counter::new("yield.units.failed");

/// Pass/fail specification for one manufactured unit (worst case over the
/// band).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldSpec {
    /// Maximum allowed worst-case noise figure (dB).
    pub max_nf_db: f64,
    /// Minimum allowed worst-case gain (dB).
    pub min_gain_db: f64,
    /// Maximum allowed worst-case |S11| (dB).
    pub max_s11_db: f64,
    /// Require unconditional stability (min μ > 1) over the wide grid.
    pub require_stability: bool,
}

impl Default for YieldSpec {
    fn default() -> Self {
        YieldSpec {
            max_nf_db: 0.9,
            min_gain_db: 10.0,
            max_s11_db: -8.0,
            require_stability: true,
        }
    }
}

/// Result of a yield run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Units manufactured.
    pub units: usize,
    /// Units meeting every criterion.
    pub passing: usize,
    /// Failures per criterion (a unit can fail several):
    /// `[nf, gain, s11, stability, dead_board]`.
    pub failures: [usize; 5],
    /// Worst-case NF of every live unit (dB).
    pub nf_db: Vec<f64>,
    /// Worst-case gain of every live unit (dB).
    pub gain_db: Vec<f64>,
}

impl YieldReport {
    /// Yield as a fraction in `[0, 1]`.
    pub fn yield_fraction(&self) -> f64 {
        if self.units == 0 {
            return 0.0;
        }
        self.passing as f64 / self.units as f64
    }

    /// Name of the dominant failure mechanism, or `None` at 100 % yield.
    pub fn dominant_failure(&self) -> Option<&'static str> {
        const NAMES: [&str; 5] = [
            "noise figure",
            "gain",
            "input match",
            "stability",
            "dead board",
        ];
        let (idx, &count) = self.failures.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if count == 0 {
            None
        } else {
            Some(NAMES[idx])
        }
    }
}

/// Result of a fault-isolated yield run ([`yield_analysis_robust`]).
#[derive(Debug, Clone, PartialEq)]
pub struct YieldOutcome {
    /// The grading report, aggregated over the units that evaluated.
    /// `report.units` counts only those units, so
    /// [`YieldReport::yield_fraction`] stays meaningful on a partial.
    pub report: YieldReport,
    /// One entry per unit whose evaluation failed transiently (index =
    /// unit number). These units are excluded from the report entirely —
    /// they are neither passes nor dead boards.
    pub diagnostics: Vec<PointDiagnostic>,
    /// `true` when the failure fraction exceeded the [`DegradePolicy`]:
    /// the report is a flagged partial and should not be trusted for
    /// sign-off.
    pub degraded: bool,
}

/// Manufactures `units` boards of `design` (seeds `0..units` offset by
/// `seed_base`) and grades each against `spec` over `band`.
///
/// The units are evaluated in parallel through `rfkit-par`: every unit's
/// tolerance draw is seeded from `seed_base + unit` before dispatch, so
/// the report is bit-identical at any thread count, and the grading
/// reduction runs serially in unit order.
///
/// This is the lenient view of [`yield_analysis_robust`]: transient
/// per-unit failures (only possible under fault injection) are excluded
/// from the report without failing the run.
pub fn yield_analysis(
    device: &Phemt,
    design: &DesignVariables,
    spec: &YieldSpec,
    band: &BandSpec,
    units: usize,
    build: &BuildConfig,
    seed_base: u64,
) -> YieldReport {
    yield_analysis_robust(
        device,
        design,
        spec,
        band,
        units,
        build,
        seed_base,
        &DegradePolicy::lenient(1.0),
    )
    .report
}

/// Like [`yield_analysis`], but with per-unit failure isolation: a unit
/// whose evaluation fails transiently records a diagnostic and is
/// excluded from the aggregation (it is *not* a dead board — a dead board
/// is a deterministic property of its tolerance draw). The failure
/// fraction is graded against `policy`; beyond it the report is returned
/// anyway but flagged `degraded`.
#[allow(clippy::too_many_arguments)]
pub fn yield_analysis_robust(
    device: &Phemt,
    design: &DesignVariables,
    spec: &YieldSpec,
    band: &BandSpec,
    units: usize,
    build: &BuildConfig,
    seed_base: u64,
    policy: &DegradePolicy,
) -> YieldOutcome {
    // Parallel phase: manufacture and measure each unit independently.
    // The fault hook is keyed by the unit index — data-derived, so an
    // armed plan kills the same units at any thread count.
    let measured: Vec<Result<Option<BandMetrics>, ()>> =
        par_collect(units, &Default::default(), |unit| {
            if faults::inject("yield.unit", unit as u64).is_some() {
                return Err(());
            }
            let cfg = BuildConfig {
                seed: seed_base.wrapping_add(unit as u64),
                ..*build
            };
            let built = BuiltAmplifier::build(design, &cfg);
            let amp = Amplifier::new(device, built.actual_vars);
            Ok(BandMetrics::evaluate(&amp, band))
        });

    // Serial reduction in unit order.
    let mut diagnostics = Vec::new();
    let mut report = YieldReport {
        units,
        passing: 0,
        failures: [0; 5],
        nf_db: Vec::with_capacity(units),
        gain_db: Vec::with_capacity(units),
    };
    for (unit, metrics) in measured.into_iter().enumerate() {
        let metrics = match metrics {
            Ok(m) => m,
            Err(()) => {
                diagnostics.push(PointDiagnostic {
                    index: unit,
                    at: unit as f64,
                    detail: "unit evaluation failed transiently".to_string(),
                });
                continue;
            }
        };
        let Some(metrics) = metrics else {
            report.failures[4] += 1;
            continue;
        };
        report.nf_db.push(metrics.worst_nf_db);
        report.gain_db.push(metrics.min_gain_db);
        let mut pass = true;
        if metrics.worst_nf_db > spec.max_nf_db {
            report.failures[0] += 1;
            pass = false;
        }
        if metrics.min_gain_db < spec.min_gain_db {
            report.failures[1] += 1;
            pass = false;
        }
        if metrics.worst_s11_db > spec.max_s11_db {
            report.failures[2] += 1;
            pass = false;
        }
        if spec.require_stability && metrics.min_mu <= 1.0 {
            report.failures[3] += 1;
            pass = false;
        }
        if pass {
            report.passing += 1;
        }
    }
    if !diagnostics.is_empty() {
        OBS_YIELD_UNITS_FAILED.add(diagnostics.len() as u64);
    }
    // Failed units are excluded from the denominator so the yield
    // fraction reflects only what was actually graded.
    report.units = units - diagnostics.len();
    let degraded = !policy.accepts(diagnostics.len(), units);
    YieldOutcome {
        report,
        diagnostics,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn loose_spec_gives_full_yield() {
        let device = Phemt::atf54143_like();
        let spec = YieldSpec {
            max_nf_db: 2.0,
            min_gain_db: 5.0,
            max_s11_db: 0.0,
            require_stability: false,
        };
        let report = yield_analysis(
            &device,
            &nominal(),
            &spec,
            &BandSpec::gnss(),
            20,
            &BuildConfig::default(),
            0,
        );
        assert_eq!(report.passing, 20);
        assert_eq!(report.yield_fraction(), 1.0);
        assert!(report.dominant_failure().is_none());
    }

    #[test]
    fn impossible_spec_gives_zero_yield() {
        let device = Phemt::atf54143_like();
        let spec = YieldSpec {
            max_nf_db: 0.1,
            min_gain_db: 40.0,
            max_s11_db: -40.0,
            require_stability: true,
        };
        let report = yield_analysis(
            &device,
            &nominal(),
            &spec,
            &BandSpec::gnss(),
            10,
            &BuildConfig::default(),
            0,
        );
        assert_eq!(report.passing, 0);
        assert!(report.dominant_failure().is_some());
    }

    #[test]
    fn tighter_tolerances_raise_yield() {
        // Find a spec near the nominal performance edge, then compare 10 %
        // vs 1 % parts.
        let device = Phemt::atf54143_like();
        let amp = Amplifier::new(&device, nominal());
        let nominal_metrics = BandMetrics::evaluate(&amp, &BandSpec::gnss()).unwrap();
        let spec = YieldSpec {
            max_nf_db: nominal_metrics.worst_nf_db + 0.01,
            min_gain_db: nominal_metrics.min_gain_db - 0.15,
            max_s11_db: 0.0,
            require_stability: false,
        };
        let run = |tol: f64| {
            yield_analysis(
                &device,
                &nominal(),
                &spec,
                &BandSpec::gnss(),
                40,
                &BuildConfig {
                    tolerance: tol,
                    bias_error: 0.002,
                    ..Default::default()
                },
                7,
            )
            .yield_fraction()
        };
        let loose = run(0.10);
        let tight = run(0.01);
        assert!(
            tight > loose,
            "1 % parts must out-yield 10 % parts: {tight} vs {loose}"
        );
        assert!(tight > 0.5, "1 % parts near nominal spec: {tight}");
    }

    #[test]
    fn robust_run_without_faults_matches_legacy() {
        let device = Phemt::atf54143_like();
        let spec = YieldSpec::default();
        let legacy = yield_analysis(
            &device,
            &nominal(),
            &spec,
            &BandSpec::gnss(),
            12,
            &BuildConfig::default(),
            5,
        );
        let robust = yield_analysis_robust(
            &device,
            &nominal(),
            &spec,
            &BandSpec::gnss(),
            12,
            &BuildConfig::default(),
            5,
            &DegradePolicy::strict(),
        );
        // With nothing armed, the robust path is the legacy path: same
        // report bit-for-bit, no diagnostics, not degraded even under the
        // strictest policy.
        assert_eq!(robust.report, legacy);
        assert!(robust.diagnostics.is_empty());
        assert!(!robust.degraded);
    }

    #[test]
    fn reports_collect_distributions() {
        let device = Phemt::atf54143_like();
        let report = yield_analysis(
            &device,
            &nominal(),
            &YieldSpec::default(),
            &BandSpec::gnss(),
            15,
            &BuildConfig::default(),
            3,
        );
        assert_eq!(report.nf_db.len() + report.failures[4], 15);
        assert!(report.nf_db.iter().all(|v| *v > 0.0 && *v < 3.0));
        // The distribution has spread (tolerances are real).
        let span = rfkit_num::stats::max(&report.nf_db) - rfkit_num::stats::min(&report.nf_db);
        assert!(span > 1e-4, "NF spread {span}");
    }
}
