//! Memoization of band evaluations at snapped design points.
//!
//! E24 snapping and snap-repair quantize optimizer candidates onto a
//! coarse lattice, so different search iterates frequently collide on the
//! *same* quantized [`DesignVariables`] — and a full
//! [`BandMetrics::evaluate`] (15 frequency points through the noisy-ABCD
//! cascade) is pure in those variables. [`DesignCache`] keys a bounded
//! map on the exact bit patterns of the seven design variables and skips
//! the whole band evaluation on a hit.
//!
//! ## Determinism rules
//!
//! The cache preserves the repo's 1-vs-4-thread bit-identical contract
//! because it can only substitute a value for itself:
//!
//! * keys are the `f64::to_bits` of the variables — no rounding, no
//!   tolerance, so a hit means *exactly* the same inputs;
//! * the cached value is a pure function of the key (device and band are
//!   fixed per cache), so whichever thread populates an entry first, every
//!   later reader observes the value it would have computed itself;
//! * eviction pops the smallest key of the `BTreeMap` — a deterministic
//!   order — and at worst turns a would-be hit into a recomputation of the
//!   identical value.
//!
//! Interior state lives behind a poison-tolerant [`Mutex`]; evaluation
//! runs *outside* the lock so parallel workers never serialize on the
//! expensive part.

use crate::amplifier::{Amplifier, DesignVariables};
use crate::band::{BandMetrics, BandOutcome, BandSpec};
use rfkit_device::Phemt;
use rfkit_robust::DegradePolicy;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

// Hit/miss/eviction telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_CACHE_HIT: rfkit_obs::Counter = rfkit_obs::Counter::new("design.cache.hit");
static OBS_CACHE_MISS: rfkit_obs::Counter = rfkit_obs::Counter::new("design.cache.miss");
static OBS_CACHE_UNCACHEABLE: rfkit_obs::Counter =
    rfkit_obs::Counter::new("design.cache.uncacheable");

/// Default entry capacity: generous for a 6k-evaluation design run while
/// bounding memory to a few hundred kilobytes.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Exact-bits key: the seven design variables as `u64` bit patterns.
type Key = [u64; 7];

/// A bounded, thread-safe, deterministic memo cache for
/// [`BandMetrics::evaluate`] results at quantized design points.
#[derive(Debug, Default)]
pub struct DesignCache {
    capacity: usize,
    map: Mutex<BTreeMap<Key, Option<BandMetrics>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

impl DesignCache {
    /// Creates a cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity: capacity.max(1),
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Creates a cache with [`DEFAULT_CACHE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        DesignCache::new(DEFAULT_CACHE_CAPACITY)
    }

    fn key(vars: &DesignVariables) -> Key {
        [
            vars.vds.to_bits(),
            vars.ids.to_bits(),
            vars.l1.to_bits(),
            vars.ls_deg.to_bits(),
            vars.l2.to_bits(),
            vars.c2.to_bits(),
            vars.r_bias.to_bits(),
        ]
    }

    /// Inverse of [`DesignCache::key`]: exact-bits round trip, so the
    /// reconstructed variables are the very values that were evaluated.
    fn vars_from_key(key: &Key) -> DesignVariables {
        DesignVariables {
            vds: f64::from_bits(key[0]),
            ids: f64::from_bits(key[1]),
            l1: f64::from_bits(key[2]),
            ls_deg: f64::from_bits(key[3]),
            l2: f64::from_bits(key[4]),
            c2: f64::from_bits(key[5]),
            r_bias: f64::from_bits(key[6]),
        }
    }

    /// Deterministic read-only export of every cached entry as
    /// `(variables, metrics)`, in ascending key order (`None` marks a
    /// cached-infeasible point).
    ///
    /// The order is a pure function of the cache *contents* — the
    /// `BTreeMap` sorts on the exact variable bits — so two caches
    /// holding the same set of evaluated points snapshot identically no
    /// matter how many threads raced to populate them or in which order
    /// insertions happened. This is the property that lets a surrogate
    /// model train from a warm cache without bending the repo's
    /// thread-count determinism contract. (Under eviction pressure the
    /// *contents* themselves can depend on insertion order; keep the
    /// cache under capacity when a snapshot must be reproducible.)
    pub fn snapshot(&self) -> Vec<(DesignVariables, Option<BandMetrics>)> {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (Self::vars_from_key(k), *v))
            .collect()
    }

    /// Band metrics at `vars`, served from the cache when the exact bit
    /// pattern was evaluated before. Infeasible results (`None`) are
    /// cached too — a repeatedly probed infeasible corner is as expensive
    /// as a feasible one.
    pub fn evaluate(
        &self,
        device: &Phemt,
        vars: DesignVariables,
        band: &BandSpec,
    ) -> Option<BandMetrics> {
        match self.evaluate_with(device, vars, band, &DegradePolicy::strict()) {
            BandOutcome::Complete(m) => Some(m),
            _ => None,
        }
    }

    /// Like [`DesignCache::evaluate`], but evaluates through
    /// [`BandMetrics::evaluate_robust`] and returns the full
    /// [`BandOutcome`].
    ///
    /// Only outcomes that are pure functions of the design — complete
    /// sweeps and deterministic infeasibility — enter the cache. Degraded
    /// and failed sweeps reflect transient solver trouble: memoizing one
    /// would pin a corrupted partial to the design point and keep serving
    /// it after the fault clears, so they are recomputed on every query
    /// (and counted by [`DesignCache::uncacheable`]).
    pub fn evaluate_with(
        &self,
        device: &Phemt,
        vars: DesignVariables,
        band: &BandSpec,
        policy: &DegradePolicy,
    ) -> BandOutcome {
        let key = Self::key(&vars);
        if let Some(&value) = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            OBS_CACHE_HIT.add(1);
            return match value {
                Some(m) => BandOutcome::Complete(m),
                None => BandOutcome::Infeasible,
            };
        }
        // Compute outside the lock: the value is a pure function of the
        // key, so concurrent workers at most duplicate work, never diverge.
        let amp = Amplifier::new(device, vars);
        let outcome = BandMetrics::evaluate_robust(&amp, band, policy);
        self.misses.fetch_add(1, Ordering::Relaxed);
        OBS_CACHE_MISS.add(1);
        let value = match &outcome {
            BandOutcome::Complete(m) => Some(Some(*m)),
            BandOutcome::Infeasible => Some(None),
            BandOutcome::Degraded { .. } | BandOutcome::Failed { .. } => None,
        };
        let Some(value) = value else {
            self.uncacheable.fetch_add(1, Ordering::Relaxed);
            OBS_CACHE_UNCACHEABLE.add(1);
            return outcome;
        };
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        if !map.contains_key(&key) {
            while map.len() >= self.capacity {
                map.pop_first();
                let evicted = self.evictions.fetch_add(1, Ordering::Relaxed) + 1;
                if rfkit_obs::enabled() {
                    rfkit_obs::event(
                        "design.cache.evict",
                        &[
                            ("evictions", evicted as f64),
                            ("capacity", self.capacity as f64),
                        ],
                    );
                    // Thrash warning: more entries evicted than ever hit
                    // means the capacity is below the working set and the
                    // cache is churning instead of memoizing. Resize it.
                    let hits = self.hits.load(Ordering::Relaxed);
                    if evicted > hits {
                        rfkit_obs::event(
                            "design.cache.thrash",
                            &[
                                ("evictions", evicted as f64),
                                ("hits", hits as f64),
                                ("capacity", self.capacity as f64),
                            ],
                        );
                    }
                }
            }
            map.insert(key, value);
        }
        outcome
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (full evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Evaluations whose outcome was degraded or failed and therefore
    /// never entered the cache.
    pub fn uncacheable(&self) -> u64 {
        self.uncacheable.load(Ordering::Relaxed)
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn hit_returns_bit_identical_metrics() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(16);
        let first = cache.evaluate(&d, vars(), &band);
        let second = cache.evaluate(&d, vars(), &band);
        let amp = Amplifier::new(&d, vars());
        let fresh = BandMetrics::evaluate(&amp, &band);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn infeasible_results_are_cached() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(16);
        let mut bad = vars();
        bad.ids = 3.0;
        assert_eq!(cache.evaluate(&d, bad, &band), None);
        assert_eq!(cache.evaluate(&d, bad, &band), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_bound_evicts_deterministically() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(2);
        let mut v = vars();
        for i in 0..4 {
            v.r_bias = 30.0 + i as f64;
            cache.evaluate(&d, v, &band);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.misses(), 4);
        // A re-query of an evicted key recomputes the identical value.
        v.r_bias = 30.0;
        let amp = Amplifier::new(&d, v);
        assert_eq!(
            cache.evaluate(&d, v, &band),
            BandMetrics::evaluate(&amp, &band)
        );
    }

    #[test]
    fn robust_lookup_serves_hits_as_outcomes() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(16);
        let policy = DegradePolicy::strict();
        // Miss then hit: both Complete, bit-identical, and a feasible
        // sweep is cached (nothing marked uncacheable).
        let first = cache.evaluate_with(&d, vars(), &band, &policy);
        let second = cache.evaluate_with(&d, vars(), &band, &policy);
        assert!(matches!(first, BandOutcome::Complete(_)));
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.uncacheable(), 0);
        // An infeasible corner round-trips as Infeasible, also cached.
        let mut bad = vars();
        bad.ids = 3.0;
        assert_eq!(
            cache.evaluate_with(&d, bad, &band, &policy),
            BandOutcome::Infeasible
        );
        assert_eq!(
            cache.evaluate_with(&d, bad, &band, &policy),
            BandOutcome::Infeasible
        );
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        // The strict evaluate() view agrees with the outcome view.
        assert_eq!(cache.evaluate(&d, vars(), &band), first.metrics().copied());
    }

    #[test]
    fn snapshot_round_trips_exact_bits_in_key_order() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(16);
        let mut evaluated = Vec::new();
        // Insert in descending r_bias order; the snapshot must come back
        // sorted by key bits regardless.
        for i in (0..3).rev() {
            let mut v = vars();
            v.r_bias = 30.0 + i as f64;
            let m = cache.evaluate(&d, v, &band);
            evaluated.push((v, m));
        }
        let mut bad = vars();
        bad.ids = 3.0; // cached-infeasible entry must appear as None
        assert_eq!(cache.evaluate(&d, bad, &band), None);

        let snap = cache.snapshot();
        assert_eq!(snap.len(), 4);
        for (v, m) in &evaluated {
            let hit = snap.iter().find(|(sv, _)| sv == v).expect("entry present");
            assert_eq!(hit.1, *m, "snapshot metrics differ from evaluation");
        }
        assert!(snap.iter().any(|(sv, sm)| *sv == bad && sm.is_none()));
        // Key order is bit order: vds ties, then ids bits decide.
        let keys: Vec<_> = snap.iter().map(|(v, _)| DesignCache::key(v)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot is not in ascending key order");
    }

    #[test]
    fn distinct_bits_never_collide() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(16);
        let a = cache.evaluate(&d, vars(), &band).expect("feasible");
        let mut v = vars();
        v.l1 = f64::from_bits(v.l1.to_bits() + 1); // 1 ulp away
        let b = cache.evaluate(&d, v, &band).expect("feasible");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        // The two keys are different entries even though the values are
        // numerically indistinguishable for all practical purposes.
        assert_eq!(cache.len(), 2);
        let _ = (a, b);
    }
}
