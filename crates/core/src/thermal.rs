//! Operating-temperature analysis of the amplifier.
//!
//! A GNSS antenna amplifier lives outdoors: −40 °C on a winter roof,
//! +85 °C in a sunlit radome. Two first-order effects dominate across that
//! range, and both are modelled here:
//!
//! * every resistive element's **thermal noise scales with its physical
//!   temperature** (the correlation-matrix machinery takes the temperature
//!   directly);
//! * the channel **transconductance derates with temperature** through the
//!   mobility law `gm(T) ≈ gm(T₀)·(T/T₀)^−1.3`, dragging gain down and
//!   noise up at the hot end.

use crate::amplifier::{Amplifier, DesignVariables, PointMetrics};
use crate::band::BandSpec;
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_net::gains::transducer_gain;
use rfkit_net::stability::{mu_load, mu_source, rollett_k};
use rfkit_num::units::{db_from_amplitude_ratio, nf_db_from_factor};
use rfkit_num::Complex;
use rfkit_passive::{Capacitor, Component, Inductor, Orientation};

/// Ambient operating condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCondition {
    /// Ambient temperature in °C.
    pub celsius: f64,
    /// Mobility-derating exponent for gm (default 1.3).
    pub gm_exponent: f64,
}

impl ThermalCondition {
    /// Condition at the given ambient temperature with the default
    /// derating law.
    pub fn at(celsius: f64) -> Self {
        ThermalCondition {
            celsius,
            gm_exponent: 1.3,
        }
    }

    /// Ambient in kelvin.
    pub fn kelvin(&self) -> f64 {
        self.celsius + 273.15
    }

    /// The gm derating factor relative to the 23.35 °C reference.
    pub fn gm_derating(&self) -> f64 {
        (self.kelvin() / 296.5).powf(-self.gm_exponent)
    }
}

/// Point metrics of the amplifier at one frequency and ambient condition.
///
/// Returns `None` for an unreachable bias.
pub fn metrics_at_temperature(
    device: &Phemt,
    vars: DesignVariables,
    freq_hz: f64,
    cond: &ThermalCondition,
) -> Option<PointMetrics> {
    let amp = Amplifier::new(device, vars);
    let op = amp.operating_point()?;
    let t_amb = cond.kelvin();

    // Device: derated gm, all noise temperatures referenced to ambient.
    let mut ss = device.small_signal(&op);
    ss.intrinsic.gm = op.gm * cond.gm_derating();
    ss.extrinsic.ls += vars.ls_deg;
    let temps = NoiseTemperatures {
        tg: t_amb + 3.5,
        td: (device.noise.td0 * op.ids / device.noise.ids_ref * t_amb / 296.5).max(t_amb),
        ambient: t_amb,
    };
    let core = ss.noisy_two_port(freq_hz, &temps);

    // Passives at ambient.
    let c_blk = Capacitor::chip_0402(amp.c_block).two_port(freq_hz, Orientation::Series, t_amb);
    let l1 = Inductor::chip_0402(vars.l1).two_port(freq_hz, Orientation::Series, t_amb);
    let z_feed = Complex::real(vars.r_bias) + Inductor::chip_0402(vars.l2).impedance(freq_hz);
    let l2 = rfkit_net::NoisyAbcd::passive_shunt(z_feed.recip(), t_amb);
    let c2 = Capacitor::chip_0402(vars.c2).two_port(freq_hz, Orientation::Series, t_amb);
    let chain = c_blk.cascade(&l1).cascade(&core).cascade(&l2).cascade(&c2);

    let s = chain.abcd.to_s(50.0).ok()?;
    let np = chain.noise_params(50.0).ok()?;
    Some(PointMetrics {
        freq_hz,
        gain_db: 10.0
            * transducer_gain(&s, Complex::ZERO, Complex::ZERO)
                .max(1e-30)
                .log10(),
        nf_db: nf_db_from_factor(np.noise_factor(Complex::ZERO)),
        s11_db: db_from_amplitude_ratio(s.s11().abs()),
        s22_db: db_from_amplitude_ratio(s.s22().abs()),
        k: rollett_k(&s),
        mu: mu_load(&s).min(mu_source(&s)),
    })
}

/// Worst-case in-band NF and minimum gain at each ambient temperature.
/// Rows are `(celsius, worst_nf_db, min_gain_db)`.
pub fn band_sweep_over_temperature(
    device: &Phemt,
    vars: DesignVariables,
    band: &BandSpec,
    celsius: &[f64],
) -> Vec<(f64, f64, f64)> {
    celsius
        .iter()
        .filter_map(|&t| {
            let cond = ThermalCondition::at(t);
            let mut worst_nf = f64::NEG_INFINITY;
            let mut min_gain = f64::INFINITY;
            for &f in band.grid() {
                let m = metrics_at_temperature(device, vars, f, &cond)?;
                worst_nf = worst_nf.max(m.nf_db);
                min_gain = min_gain.min(m.gain_db);
            }
            Some((t, worst_nf, min_gain))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn room_temperature_matches_nominal_analysis() {
        let device = Phemt::atf54143_like();
        let amp = Amplifier::new(&device, vars());
        let nominal = amp.metrics(1.4e9).unwrap();
        let thermal =
            metrics_at_temperature(&device, vars(), 1.4e9, &ThermalCondition::at(23.35)).unwrap();
        // Same circuit at reference temperature: tenths of a dB at most
        // (passive reference T0 = 290 K vs ambient 296.5 K differs slightly).
        assert!((thermal.gain_db - nominal.gain_db).abs() < 0.2);
        assert!((thermal.nf_db - nominal.nf_db).abs() < 0.1);
    }

    #[test]
    fn noise_rises_and_gain_falls_with_temperature() {
        let device = Phemt::atf54143_like();
        let sweep =
            band_sweep_over_temperature(&device, vars(), &BandSpec::gnss(), &[-40.0, 25.0, 85.0]);
        assert_eq!(sweep.len(), 3);
        let (_, nf_cold, gain_cold) = sweep[0];
        let (_, nf_room, gain_room) = sweep[1];
        let (_, nf_hot, gain_hot) = sweep[2];
        assert!(
            nf_cold < nf_room && nf_room < nf_hot,
            "NF: {nf_cold} {nf_room} {nf_hot}"
        );
        assert!(
            gain_cold > gain_room && gain_room > gain_hot,
            "gain: {gain_cold} {gain_room} {gain_hot}"
        );
        // The swing is realistic: tenths of a dB of NF, ~1 dB of gain.
        assert!(nf_hot - nf_cold > 0.05 && nf_hot - nf_cold < 1.0);
        assert!(gain_cold - gain_hot > 0.3 && gain_cold - gain_hot < 4.0);
    }

    #[test]
    fn derating_factor_is_unity_at_reference() {
        let c = ThermalCondition::at(23.35);
        assert!((c.gm_derating() - 1.0).abs() < 1e-12);
        assert!(ThermalCondition::at(85.0).gm_derating() < 1.0);
        assert!(ThermalCondition::at(-40.0).gm_derating() > 1.0);
    }

    #[test]
    fn stability_holds_over_the_automotive_range() {
        let device = Phemt::atf54143_like();
        for t in [-40.0, 85.0] {
            let m =
                metrics_at_temperature(&device, vars(), 1.4e9, &ThermalCondition::at(t)).unwrap();
            assert!(m.k > 1.0, "K at {t} °C = {}", m.k);
        }
    }
}
