//! Netlist-level verification sweeps through the shared plan cache.
//!
//! The design flow's band metrics run on the analytic ABCD cascade
//! ([`crate::Amplifier`]); final verification, the design example and
//! the benchmarks cross-check against full MNA netlist sweeps. This
//! module is the single home for those verification netlists — the
//! bench harness, the example and the equivalence tests previously each
//! carried their own copy — and routes every sweep through
//! [`rfkit_circuit::shared_plan`] +
//! [`StampPlan::sweep_batch`](rfkit_circuit::StampPlan::sweep_batch), so
//! repeated verifications of one topology (yield units, corner loops,
//! parallel workers) compile and stamp the netlist exactly once per
//! process.

use crate::DesignVariables;
use rfkit_circuit::{shared_plan, AcError, AcStamps, AcWorkspace, Circuit, SweepBatch};

/// The reference-design schematic as a netlist: input match, bias feed
/// and output match around the (separately stamped) device position.
/// Element values come from the design variables where the flow selects
/// them (`l1`, `r_bias`, `l2`, `c2`, supply `vds`); the fixed parts
/// (gate bleed, bias-feed choke, coupling capacitor) match the built
/// hardware.
pub fn reference_netlist(vars: &DesignVariables) -> Circuit {
    let mut c = Circuit::new();
    c.inductor("in", "gate", vars.l1)
        .resistor("gate", "gnd", 10_000.0)
        .resistor("drain", "nb", 30.0)
        .inductor("nb", "gnd", 10e-9)
        .vsource("vdd", "gnd", vars.vds)
        .resistor("vdd", "nb", vars.r_bias)
        .capacitor("drain", "out", 2.2e-12)
        .inductor("out", "gnd", vars.l2)
        .capacitor("out", "gnd", vars.c2)
        .port("in", 50.0)
        .port("out", 50.0);
    c
}

/// The output-match verification network the design example sweeps after
/// a design run: series `l2`, shunt `c2`.
pub fn output_match_network(vars: &DesignVariables) -> Circuit {
    let mut c = Circuit::new();
    c.inductor("in", "out", vars.l2)
        .capacitor("out", "gnd", vars.c2)
        .port("in", 50.0)
        .port("out", 50.0);
    c
}

/// A multi-stage verification netlist with `stages` cascaded LC/RC
/// sections sharing one supply rail — the structure-aware sweep
/// workload. Each stage adds a series inductor, a damped shunt
/// capacitor, a coupling capacitor and a drain resistor to the shared
/// `vdd` node, so the internal block is a long near-tridiagonal chain
/// plus one high-degree hub: the classifier's bordered case. `stages ≥
/// 25` gives a 50+-node MNA system.
pub fn multistage_netlist(stages: usize) -> Circuit {
    assert!(stages >= 1, "need at least one stage");
    let mut c = Circuit::new();
    c.vsource("vdd", "gnd", 3.0);
    let mut prev = "in".to_string();
    for i in 0..stages {
        let mid = format!("m{i}");
        let next = if i + 1 == stages {
            "out".to_string()
        } else {
            format!("n{i}")
        };
        c.inductor(&prev, &mid, 2.4e-9 + 0.05e-9 * i as f64)
            .capacitor(&mid, "gnd", 0.9e-12 + 0.02e-12 * i as f64)
            .resistor(&mid, "gnd", 2_200.0)
            .capacitor(&mid, &next, 3.3e-12 + 0.04e-12 * i as f64)
            .resistor(&next, "vdd", 180.0 + 5.0 * i as f64);
        prev = next;
    }
    c.port("in", 50.0).port("out", 50.0);
    c
}

/// Sweeps `circuit` over `freqs` through the process-wide shared plan
/// cache and the batched structure-aware engine. Repeated calls for one
/// topology — from any thread — reuse a single compiled plan with zero
/// re-stamping; per-call mutable state lives in the caller's workspace.
///
/// # Errors
///
/// Propagates plan compilation errors ([`AcError::NoPorts`]); per-point
/// solve errors are reported in the returned batch, not here.
pub fn cached_sweep(
    circuit: &Circuit,
    freqs: &[f64],
    ws: &mut AcWorkspace,
) -> Result<SweepBatch, AcError> {
    let plan = shared_plan(circuit)?;
    Ok(plan.sweep_batch(freqs, &AcStamps::none(), ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_circuit::two_port_s;

    fn vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.06,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 1.0e-12,
            r_bias: 15.0,
        }
    }

    #[test]
    fn multistage_has_fifty_plus_nodes_and_borders() {
        let c = multistage_netlist(25);
        assert!(c.n_nodes() >= 50, "{} nodes", c.n_nodes());
        let plan = rfkit_circuit::StampPlan::compile(&c).unwrap();
        assert_eq!(plan.solve_path_name(), "bordered");
    }

    #[test]
    fn cached_sweep_matches_legacy_and_shares_plan() {
        let c = reference_netlist(&vars());
        let freqs = rfkit_num::linspace(1.1e9, 1.7e9, 11);
        let mut ws = AcWorkspace::new();
        let batch = cached_sweep(&c, &freqs, &mut ws).unwrap();
        assert!(batch.failures().is_empty());
        for (p, &f) in freqs.iter().enumerate() {
            let legacy = two_port_s(&c, f, &AcStamps::none()).unwrap();
            let got = batch.two_port(p).unwrap();
            assert!(
                (got.s21() - legacy.s21()).abs() <= rfkit_circuit::SWEEP_TOL,
                "point {p}"
            );
        }
        // Second sweep of the same topology reuses the shared plan.
        let p1 = shared_plan(&c).unwrap();
        let p2 = shared_plan(&c).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn parallel_cached_sweeps_are_deterministic() {
        // 1-vs-4-thread bit-identity: workers share one Arc'd plan but
        // own their workspaces; the SoA grids must agree bit for bit.
        let c = multistage_netlist(25);
        let freqs = rfkit_num::linspace(1.1e9, 1.7e9, 16);
        let mut ws = AcWorkspace::new();
        let serial = cached_sweep(&c, &freqs, &mut ws).unwrap();
        let chunks: Vec<Vec<f64>> = freqs.chunks(4).map(|ch| ch.to_vec()).collect();
        let parallel: Vec<_> = rfkit_par::par_map(&chunks, |ch| {
            let mut ws = AcWorkspace::new();
            cached_sweep(&c, ch, &mut ws).unwrap()
        });
        let mut p = 0usize;
        for batch in &parallel {
            for q in 0..batch.len() {
                for i in 0..2 {
                    for j in 0..2 {
                        assert_eq!(serial.s(p, i, j), batch.s(q, i, j));
                    }
                }
                p += 1;
            }
        }
        assert_eq!(p, freqs.len());
    }
}
