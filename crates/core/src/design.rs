//! The goal-attainment design flow — the paper's "optimal selection of the
//! amplifier operating point and essential passive elements … using the
//! previously improved goal attainment method".
//!
//! Two soft objectives (worst-case in-band noise figure, worst-case
//! in-band transducer gain) trade off against each other; return loss and
//! unconditional stability enter as hard (zero-weight) goals. After the
//! continuous optimum is found, the passives are snapped to catalog (E24)
//! values and the design is re-verified — the paper's prototype is, after
//! all, built from purchasable parts.

use crate::amplifier::{Amplifier, DesignVariables};
use crate::band::{BandMetrics, BandSpec};
use crate::cache::DesignCache;
use rfkit_device::Phemt;
use rfkit_opt::{improved_goal_attainment, standard_goal_attainment, GoalConfig, GoalProblem};
use rfkit_passive::ESeries;

/// Design aspirations for the flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignGoals {
    /// Worst-case in-band noise-figure goal (dB).
    pub nf_db: f64,
    /// Worst-case in-band gain goal (dB).
    pub gain_db: f64,
    /// Hard in-band return-loss requirement for |S11| and |S22| (dB).
    pub return_loss_db: f64,
    /// Relative weight of the NF goal (larger = softer).
    pub nf_weight: f64,
    /// Relative weight of the gain goal.
    pub gain_weight: f64,
    /// Required stability margin: the design must keep `min μ ≥ 1 + margin`
    /// so component snapping and tolerances cannot push it conditional.
    pub stability_margin: f64,
}

impl Default for DesignGoals {
    fn default() -> Self {
        DesignGoals {
            nf_db: 0.8,
            gain_db: 14.0,
            return_loss_db: -10.0,
            nf_weight: 0.5,
            gain_weight: 2.0,
            stability_margin: 0.005,
        }
    }
}

/// Penalty objective value for designs with unreachable bias.
pub(crate) const INFEASIBLE: f64 = 1e3;

/// Maps a band evaluation to the 5-component objective vector (shared by
/// the direct and memoized objective builders so both produce identical
/// values).
fn band_objective_vec(metrics: Option<BandMetrics>) -> Vec<f64> {
    match metrics {
        Some(m) => vec![
            m.worst_nf_db,
            -m.min_gain_db,
            m.worst_s11_db,
            m.worst_s22_db,
            1.0 - m.min_mu,
        ],
        None => vec![INFEASIBLE; 5],
    }
}

/// Builds the 5-component objective vector
/// `[worst NF, −min gain, worst |S11|, worst |S22|, 1 − min μ]` (all dB
/// except the last) used by every optimizer in the comparison.
pub fn band_objectives<'a>(
    device: &'a Phemt,
    band: &'a BandSpec,
) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
    move |x: &[f64]| {
        let vars = DesignVariables::from_vec(x);
        let amp = Amplifier::new(device, vars);
        band_objective_vec(BandMetrics::evaluate(&amp, band))
    }
}

/// Like [`band_objectives`], but memoized through a [`DesignCache`]:
/// candidates that collide on the exact same variable bits (as snapping
/// and repair make them do) skip the band evaluation. Values are
/// bit-identical to [`band_objectives`] — the cache can only substitute a
/// result for itself.
pub fn cached_band_objectives<'a>(
    device: &'a Phemt,
    band: &'a BandSpec,
    cache: &'a DesignCache,
) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
    move |x: &[f64]| {
        let vars = DesignVariables::from_vec(x);
        band_objective_vec(cache.evaluate(device, vars, band))
    }
}

/// Failure-aware variant of [`cached_band_objectives`]: evaluation goes
/// through [`BandMetrics::evaluate_robust`] under `policy`, so a
/// transiently failed grid point degrades a candidate instead of
/// discarding it.
///
/// * Complete sweeps score exactly as [`cached_band_objectives`].
/// * Degraded sweeps score from the surviving points — the worst case
///   over fewer points can only flatter a candidate, which is acceptable
///   for search guidance (the final design is always re-verified
///   strictly) and far better than the [`INFEASIBLE`] cliff that would
///   otherwise punish a candidate for solver trouble it did not cause.
/// * Infeasible and failed sweeps take the [`INFEASIBLE`] penalty.
///
/// With no faults armed this is value-identical to
/// [`cached_band_objectives`]: every sweep is complete or infeasible.
pub fn robust_band_objectives<'a>(
    device: &'a Phemt,
    band: &'a BandSpec,
    cache: &'a DesignCache,
    policy: &'a rfkit_robust::DegradePolicy,
) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
    use crate::band::BandOutcome;
    move |x: &[f64]| {
        let vars = DesignVariables::from_vec(x);
        match cache.evaluate_with(device, vars, band, policy) {
            BandOutcome::Complete(m) | BandOutcome::Degraded { metrics: m, .. } => {
                band_objective_vec(Some(m))
            }
            BandOutcome::Infeasible | BandOutcome::Failed { .. } => band_objective_vec(None),
        }
    }
}

/// Builds the 3-component spot-frequency objective vector
/// `[NF(f0) dB, −gain(f0) dB, 1 − min μ]` used by the Pareto-front study
/// (F4): noise and gain trade at one frequency, stability stays a hard
/// constraint over the wide grid.
pub fn spot_objectives<'a>(device: &'a Phemt, f0_hz: f64) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
    move |x: &[f64]| {
        let vars = DesignVariables::from_vec(x);
        let amp = Amplifier::new(device, vars);
        let spot = match amp.metrics(f0_hz) {
            Some(m) => m,
            None => return vec![INFEASIBLE; 3],
        };
        let mut min_mu = f64::INFINITY;
        for &f in BandSpec::stability_grid() {
            match amp.metrics(f) {
                Some(m) => min_mu = min_mu.min(m.mu),
                None => return vec![INFEASIBLE; 3],
            }
        }
        vec![spot.nf_db, -spot.gain_db, 1.0 - min_mu]
    }
}

/// A finished design.
#[derive(Debug, Clone, PartialEq)]
pub struct LnaDesign {
    /// Continuous optimizer solution.
    pub continuous: DesignVariables,
    /// E24-snapped, buildable solution.
    pub snapped: DesignVariables,
    /// Band metrics of the continuous solution.
    pub continuous_metrics: BandMetrics,
    /// Band metrics after snapping.
    pub snapped_metrics: BandMetrics,
    /// Attainment factor γ of the continuous solution (negative = goals
    /// over-attained).
    pub attainment: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

/// Configuration of the design run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignConfig {
    /// Objective-evaluation budget.
    pub max_evals: usize,
    /// RNG seed.
    pub seed: u64,
    /// Band to design for.
    pub band: BandSpec,
    /// Use the improved (true) or standard (false) goal-attainment solver.
    pub improved: bool,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            max_evals: 6_000,
            seed: 0x1a5,
            band: BandSpec::gnss(),
            improved: true,
        }
    }
}

/// Runs the design flow.
///
/// # Panics
///
/// Panics if the optimizer returns an infeasible design even after the
/// full budget (does not occur for the golden device with sane goals).
pub fn design_lna(device: &Phemt, goals: &DesignGoals, config: &DesignConfig) -> LnaDesign {
    let _span = rfkit_obs::span("design.total");
    // Memoize band evaluations: snap/repair quantize candidates onto a
    // coarse lattice, so the pattern-search polish and re-verification
    // revisit identical points. The cache is local to this run, so
    // repeated designs with different devices/goals never cross-talk.
    let cache = DesignCache::with_default_capacity();
    let objectives = cached_band_objectives(device, &config.band, &cache);
    let objective_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let goal_vec = vec![
        goals.nf_db,
        -goals.gain_db,
        goals.return_loss_db,
        goals.return_loss_db,
        -goals.stability_margin,
    ];
    let weights = vec![goals.nf_weight, goals.gain_weight, 0.0, 0.0, 0.0];
    let problem = GoalProblem::new(objective_ref, goal_vec, weights, DesignVariables::bounds());
    // One long global phase beats split multistarts in this 7-dimensional
    // space at practical budgets.
    let cfg = GoalConfig {
        max_evals: config.max_evals,
        seed: config.seed,
        multistart: 1,
        global_fraction: 0.7,
        ..Default::default()
    };
    let result = {
        let _span = rfkit_obs::span("design.optimize");
        if config.improved {
            improved_goal_attainment(&problem, &cfg)
        } else {
            standard_goal_attainment(&problem, &problem.bounds.center(), &cfg)
        }
    };

    let continuous = DesignVariables::from_vec(&result.x);
    let continuous_metrics = cache
        .evaluate(device, continuous, &config.band)
        .expect("optimizer returned feasible design");

    let snapped = {
        let _span = rfkit_obs::span("design.snap_repair");
        repair_snapped(device, &config.band, &problem, snap_to_catalog(continuous))
    };
    let snapped_metrics = cache
        .evaluate(device, snapped, &config.band)
        .expect("snapped design feasible");

    if rfkit_obs::enabled() {
        rfkit_obs::event(
            "design.result",
            &[
                ("attainment", result.attainment),
                ("evals", result.evaluations as f64),
                ("nf_db", snapped_metrics.worst_nf_db),
                ("gain_db", snapped_metrics.min_gain_db),
                ("cache_hit_rate", cache.hit_rate()),
            ],
        );
    }

    LnaDesign {
        continuous,
        snapped,
        continuous_metrics,
        snapped_metrics,
        attainment: result.attainment,
        evaluations: result.evaluations,
    }
}

/// After snapping, the catalog parts are frozen and the still-continuous
/// variables (bias point, board degeneration, bias-feed resistor) are
/// re-polished against the same attainment function — the snap may
/// otherwise erode a hard constraint (typically the stability margin).
fn repair_snapped(
    device: &Phemt,
    band: &BandSpec,
    problem: &GoalProblem<'_>,
    snapped: DesignVariables,
) -> DesignVariables {
    use rfkit_opt::{pattern_search, Bounds, PatternConfig};
    let _ = (device, band);
    // Free dims in the 7-vector: vds (0), ids_mA (1), ls_nH (3), r_bias (6).
    let frozen = snapped.to_vec();
    let full = DesignVariables::bounds();
    let free = [0usize, 1, 3, 6];
    let bounds = Bounds::new(
        free.iter().map(|&i| full.lo()[i]).collect(),
        free.iter().map(|&i| full.hi()[i]).collect(),
    )
    .expect("repair bounds valid");
    let expand = |y: &[f64]| -> Vec<f64> {
        let mut x = frozen.clone();
        for (k, &i) in free.iter().enumerate() {
            x[i] = y[k];
        }
        x
    };
    let start: Vec<f64> = free.iter().map(|&i| frozen[i]).collect();
    let r = pattern_search(
        |y| problem.attainment(&(problem.objectives)(&expand(y))),
        &start,
        &bounds,
        &PatternConfig {
            max_evals: 600,
            initial_step: 0.02,
            ..Default::default()
        },
    );
    let mut repaired = DesignVariables::from_vec(&expand(&r.x));
    // Keep the repaired bias current on its 5 mA grid and the feed
    // resistor on E24 where that costs nothing.
    repaired.ids = (repaired.ids / 5e-3).round().max(1.0) * 5e-3;
    repaired.r_bias = ESeries::E24.snap(repaired.r_bias);
    let check = |v: DesignVariables| problem.attainment(&(problem.objectives)(&v.to_vec()));
    let unquantized = DesignVariables::from_vec(&expand(&r.x));
    if check(repaired) <= check(unquantized) {
        repaired
    } else {
        unquantized
    }
}

/// Snaps the purchasable passives to E24 and the bias current to a 5 mA
/// grid (set by a bias resistor choice); board-level degeneration and Vds
/// stay continuous.
pub fn snap_to_catalog(vars: DesignVariables) -> DesignVariables {
    DesignVariables {
        vds: (vars.vds * 10.0).round() / 10.0,
        ids: (vars.ids / 5e-3).round().max(1.0) * 5e-3,
        l1: ESeries::E24.snap(vars.l1),
        ls_deg: vars.ls_deg,
        l2: ESeries::E24.snap(vars.l2),
        c2: ESeries::E24.snap(vars.c2),
        r_bias: ESeries::E24.snap(vars.r_bias),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DesignConfig {
        DesignConfig {
            max_evals: 4_000,
            seed: 11,
            band: BandSpec::gnss(),
            improved: true,
        }
    }

    #[test]
    fn design_flow_produces_feasible_lna() {
        let d = Phemt::atf54143_like();
        let design = design_lna(&d, &DesignGoals::default(), &quick_config());
        let m = &design.continuous_metrics;
        assert!(m.min_mu > 1.0, "unconditionally stable: μ = {}", m.min_mu);
        assert!(m.worst_s11_db <= -9.0, "S11 = {} dB", m.worst_s11_db);
        assert!(m.worst_s22_db <= -9.0, "S22 = {} dB", m.worst_s22_db);
        assert!(m.worst_nf_db < 1.0, "NF = {} dB", m.worst_nf_db);
        // Worst-case gain over the whole 1.1-1.7 GHz band: the simple
        // L-match topology holds ~10-12 dB at the band edges.
        assert!(m.min_gain_db > 9.5, "gain = {} dB", m.min_gain_db);
    }

    #[test]
    fn snapping_is_catalog_valued_and_close() {
        let d = Phemt::atf54143_like();
        let design = design_lna(&d, &DesignGoals::default(), &quick_config());
        let s = design.snapped;
        // Snapped parts are E24 values (compare within float rounding).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs();
        assert!(close(ESeries::E24.snap(s.l1), s.l1));
        assert!(close(ESeries::E24.snap(s.l2), s.l2));
        assert!(close(ESeries::E24.snap(s.c2), s.c2));
        // Snapping cannot wreck the design.
        let degradation =
            design.snapped_metrics.worst_nf_db - design.continuous_metrics.worst_nf_db;
        assert!(degradation < 0.3, "snapping cost {degradation} dB of NF");
        assert!(design.snapped_metrics.min_mu > 1.0);
    }

    #[test]
    fn infeasible_design_vector_is_penalized() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let obj = band_objectives(&d, &band);
        // 80 mA is in range; push Ids beyond the box to simulate a broken
        // candidate (the optimizer clamps, but the objective must cope).
        let mut x = DesignVariables {
            vds: 3.0,
            ids: 2.0,
            l1: 5e-9,
            ls_deg: 0.3e-9,
            l2: 10e-9,
            c2: 2e-12,
            r_bias: 30.0,
        }
        .to_vec();
        let f = obj(&x);
        assert!(f.iter().all(|&v| v == INFEASIBLE));
        x[1] = 40.0;
        assert!(obj(&x)[0] < 10.0);
    }

    #[test]
    fn attainment_tracks_goal_difficulty() {
        // The attainment factor is the method's own report of how far the
        // goals were missed: demanding ever more gain (as a hard goal) must
        // produce monotonically larger attainment values, and an easy goal
        // set must come out (near-)attained.
        let d = Phemt::atf54143_like();
        let attain_at_gain = |gain_goal: f64| {
            let goals = DesignGoals {
                nf_db: 0.3,
                nf_weight: 1.0,
                gain_db: gain_goal,
                gain_weight: 0.0,
                ..Default::default()
            };
            design_lna(&d, &goals, &quick_config()).attainment
        };
        let easy = attain_at_gain(9.5);
        let hard = attain_at_gain(13.0);
        let harder = attain_at_gain(14.5);
        assert!(easy < 5.0, "9.5 dB of gain is easy: γ = {easy}");
        assert!(hard > easy, "γ must grow with goal difficulty");
        assert!(harder > hard, "γ must keep growing: {hard} vs {harder}");
    }
}
