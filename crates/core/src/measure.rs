//! Measurement simulation of the as-built amplifier.
//!
//! The paper closes with measured s-parameters, noise figure and IM3 of
//! the physical prototype. This reproduction has no prototype, so this
//! module builds the *as-manufactured* amplifier instead: every passive is
//! perturbed within its purchase tolerance, the bias current gets a
//! trimming error, SMA launch lines are added at both ports, and the
//! "instruments" add their own noise. Comparing these curves against the
//! nominal design reproduces the design-vs-measurement gap of the paper's
//! final figures.

use crate::amplifier::{Amplifier, DesignVariables};
use rfkit_circuit::{ip3_sweep, time_domain, Ip3Sweep, TwoToneSpec};
use rfkit_device::Phemt;
use rfkit_net::{FrequencyResponse, SParams};
use rfkit_num::rng::Rng64;
use rfkit_num::units::db_from_amplitude_ratio;
use rfkit_num::Complex;
use rfkit_passive::{Microstrip, Substrate};

/// Build + instrumentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// Relative component tolerance (e.g. 0.05 for ±5 % parts).
    pub tolerance: f64,
    /// Relative bias-current trim error.
    pub bias_error: f64,
    /// Length of the SMA launch microstrip at each port (m).
    pub launch_length: f64,
    /// VNA absolute S-parameter noise per component.
    pub vna_noise: f64,
    /// Noise-figure meter standard deviation (dB).
    pub nf_meter_sigma_db: f64,
    /// RNG seed (one seed = one physical build).
    pub seed: u64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            tolerance: 0.05,
            bias_error: 0.03,
            launch_length: 8e-3,
            vna_noise: 0.004,
            nf_meter_sigma_db: 0.03,
            seed: 0xb111d,
        }
    }
}

fn gaussian(rng: &mut Rng64) -> f64 {
    loop {
        let u: f64 = rng.uniform(-1.0, 1.0);
        let v: f64 = rng.uniform(-1.0, 1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The as-built amplifier: perturbed design variables plus launch lines.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltAmplifier {
    /// The perturbed (as-manufactured) design variables.
    pub actual_vars: DesignVariables,
    /// The SMA launch line used on each port.
    pub launch: Microstrip,
}

impl BuiltAmplifier {
    /// "Manufactures" one unit of the design.
    pub fn build(design: &DesignVariables, config: &BuildConfig) -> BuiltAmplifier {
        let mut rng = Rng64::new(config.seed);
        let mut perturb = |v: f64, rel: f64| v * (1.0 + rel * gaussian(&mut rng));
        let actual_vars = DesignVariables {
            vds: perturb(design.vds, 0.01),
            ids: perturb(design.ids, config.bias_error),
            l1: perturb(design.l1, config.tolerance),
            ls_deg: perturb(design.ls_deg, 0.10), // board inductance is less controlled
            l2: perturb(design.l2, config.tolerance),
            c2: perturb(design.c2, config.tolerance),
            r_bias: perturb(design.r_bias, 0.01),
        };
        BuiltAmplifier {
            actual_vars,
            launch: Microstrip::for_impedance(Substrate::ro4350b(), 50.0, config.launch_length),
        }
    }

    /// The true (noise-free) S-parameters of the built unit including the
    /// launch lines, or `None` if the perturbed bias is unreachable.
    pub fn true_s_params(&self, device: &Phemt, freq_hz: f64) -> Option<SParams> {
        let amp = Amplifier::new(device, self.actual_vars);
        let core = amp.noisy_two_port(freq_hz)?;
        let line = self.launch.two_port(freq_hz, 296.5);
        line.cascade(&core).cascade(&line).abcd.to_s(50.0).ok()
    }

    /// The true noise factor (50 Ω source, linear) of the built unit.
    pub fn true_noise_factor(&self, device: &Phemt, freq_hz: f64) -> Option<f64> {
        let amp = Amplifier::new(device, self.actual_vars);
        let core = amp.noisy_two_port(freq_hz)?;
        let line = self.launch.two_port(freq_hz, 296.5);
        let chain = line.cascade(&core).cascade(&line);
        Some(chain.noise_params(50.0).ok()?.noise_factor(Complex::ZERO))
    }
}

/// A complete "measurement session": S-parameters with VNA noise plus NF
/// readings with meter jitter.
pub struct MeasurementSession {
    /// Measured S-parameters + noise data per frequency.
    pub response: FrequencyResponse,
    /// Measured 50 Ω noise figure per frequency (dB), aligned with
    /// `response` frequencies.
    pub nf_db: Vec<f64>,
}

/// Runs a swept measurement of a built amplifier.
///
/// Returns `None` if the built unit's bias is unreachable (a "dead board").
pub fn measure(
    device: &Phemt,
    built: &BuiltAmplifier,
    freqs: &[f64],
    config: &BuildConfig,
) -> Option<MeasurementSession> {
    let mut rng = Rng64::new(config.seed.wrapping_add(0x5ca1e));
    let mut response = FrequencyResponse::new();
    let mut nf_db = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let s = built.true_s_params(device, f)?;
        let jitter = |rng: &mut Rng64, sigma: f64| {
            Complex::new(sigma * gaussian(rng), sigma * gaussian(rng))
        };
        let noisy = SParams::new(
            s.s11() + jitter(&mut rng, config.vna_noise),
            s.s12() + jitter(&mut rng, config.vna_noise),
            s.s21() + jitter(&mut rng, config.vna_noise),
            s.s22() + jitter(&mut rng, config.vna_noise),
            50.0,
        );
        response.push(f, noisy, None);
        let nf_true = 10.0 * built.true_noise_factor(device, f)?.log10();
        nf_db.push(nf_true + config.nf_meter_sigma_db * gaussian(&mut rng));
    }
    Some(MeasurementSession { response, nf_db })
}

/// Two-tone IM3 measurement of the built amplifier around `f0`:
/// the device nonlinearity is driven at the as-built operating point and
/// the result is referred to the amplifier output through the output
/// network's transmission.
///
/// Returns `None` for unreachable bias.
pub fn measure_im3(device: &Phemt, built: &BuiltAmplifier, pin_dbm: &[f64]) -> Option<Ip3Sweep> {
    let vars = built.actual_vars;
    let vgs = device.bias_for_current(vars.vds, vars.ids)?;
    let op = device.operating_point(vgs, vars.vds);
    let sweep = ip3_sweep(pin_dbm, |p| {
        time_domain(
            device,
            &op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
    });
    Some(sweep)
}

/// Quantifies the design-vs-measurement gap over a response: maximum |S21|
/// deviation in dB.
pub fn gain_gap_db(design: &FrequencyResponse, measured: &FrequencyResponse) -> f64 {
    design
        .iter()
        .zip(measured.iter())
        .map(|(d, m)| {
            (db_from_amplitude_ratio(d.s.s21().abs()) - db_from_amplitude_ratio(m.s.s21().abs()))
                .abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::linspace;

    fn design() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn build_perturbs_within_tolerance_scale() {
        let cfg = BuildConfig::default();
        let built = BuiltAmplifier::build(&design(), &cfg);
        let d = design();
        assert_ne!(built.actual_vars.l1, d.l1);
        // 5 % parts stay within ~4σ.
        assert!((built.actual_vars.l1 / d.l1 - 1.0).abs() < 0.25);
        assert!((built.actual_vars.ids / d.ids - 1.0).abs() < 0.15);
    }

    #[test]
    fn builds_are_reproducible_per_seed_and_differ_across_seeds() {
        let cfg = BuildConfig::default();
        let b1 = BuiltAmplifier::build(&design(), &cfg);
        let b2 = BuiltAmplifier::build(&design(), &cfg);
        assert_eq!(b1, b2);
        let b3 = BuiltAmplifier::build(&design(), &BuildConfig { seed: 99, ..cfg });
        assert_ne!(b1.actual_vars, b3.actual_vars);
    }

    #[test]
    fn measurement_tracks_design_within_tolerance_band() {
        let device = Phemt::atf54143_like();
        let d = design();
        let cfg = BuildConfig::default();
        let built = BuiltAmplifier::build(&d, &cfg);
        let freqs = linspace(1.1e9, 1.7e9, 7);
        let session = measure(&device, &built, &freqs, &cfg).expect("board alive");
        // Design response (no perturbation, no launch lines).
        let amp = Amplifier::new(&device, d);
        let mut design_resp = FrequencyResponse::new();
        for &f in &freqs {
            design_resp.push(f, amp.s_params(f).unwrap(), None);
        }
        let gap = gain_gap_db(&design_resp, &session.response);
        assert!(gap > 0.0, "measurement must differ from design");
        assert!(gap < 2.5, "but only by tolerance-scale amounts: {gap} dB");
        // NF readings exist and are physical.
        assert_eq!(session.nf_db.len(), freqs.len());
        for nf in &session.nf_db {
            assert!(*nf > 0.0 && *nf < 3.0, "NF = {nf} dB");
        }
    }

    #[test]
    fn im3_measurement_produces_realistic_oip3() {
        let device = Phemt::atf54143_like();
        let built = BuiltAmplifier::build(&design(), &BuildConfig::default());
        let pins: Vec<f64> = (0..9).map(|k| -45.0 + 2.5 * k as f64).collect();
        let sweep = measure_im3(&device, &built, &pins).expect("board alive");
        let oip3 = sweep.oip3_dbm.expect("extrapolation well-posed");
        assert!(oip3 > 5.0 && oip3 < 45.0, "OIP3 = {oip3} dBm");
        assert_eq!(sweep.rows.len(), 9);
    }

    #[test]
    fn dead_board_returns_none() {
        let device = Phemt::atf54143_like();
        let mut d = design();
        d.ids = 3.0; // unbuildable bias
        let built = BuiltAmplifier {
            actual_vars: d,
            launch: Microstrip::for_impedance(Substrate::ro4350b(), 50.0, 8e-3),
        };
        assert!(measure(&device, &built, &[1.5e9], &BuildConfig::default()).is_none());
        assert!(measure_im3(&device, &built, &[-30.0]).is_none());
    }
}
