//! Band specifications and worst-case band metrics.
//!
//! The multi-constellation requirement is what makes this design
//! multi-objective *across frequency*: GPS L1/L2/L5, GLONASS G1/G2,
//! Galileo E1/E5/E6 and BeiDou B1/B2/B3 together span roughly
//! 1.1–1.7 GHz, and the paper optimizes the worst case over that whole
//! band rather than a single spot frequency.

use crate::amplifier::{Amplifier, PointMetrics};
use rfkit_num::linspace;
use rfkit_par::par_map;
use rfkit_robust::{faults, DegradePolicy, PointDiagnostic};
use std::sync::OnceLock;

// Per-point failure telemetry (runtime-gated, write-only; see rfkit-obs).
static OBS_BAND_POINTS_FAILED: rfkit_obs::Counter = rfkit_obs::Counter::new("band.points.failed");

/// GPS L1 / Galileo E1 / BeiDou B1C center frequency (Hz).
pub const GPS_L1_HZ: f64 = 1.57542e9;
/// GPS L2 center frequency (Hz).
pub const GPS_L2_HZ: f64 = 1.2276e9;
/// GPS L5 / Galileo E5a center frequency (Hz).
pub const GPS_L5_HZ: f64 = 1.17645e9;
/// GLONASS G1 center frequency (Hz).
pub const GLONASS_G1_HZ: f64 = 1.602e9;

/// The wider out-of-band stability-check grid (0.2–6 GHz).
const STABILITY_GRID: [f64; 8] = [0.2e9, 0.5e9, 1.0e9, 1.4e9, 1.8e9, 2.5e9, 4.0e9, 6.0e9];

/// Cached evaluation grids of a [`BandSpec`], computed once per spec.
#[derive(Debug, Clone)]
struct Grids {
    /// The in-band linspace grid.
    in_band: Vec<f64>,
    /// In-band grid followed by the stability grid — the buffer
    /// [`BandMetrics::evaluate`] sweeps.
    combined: Vec<f64>,
}

/// A frequency band with an evaluation grid.
///
/// The band edges and point count are fixed at construction; the
/// evaluation grids are computed lazily once and then borrowed, so the
/// hot path ([`BandMetrics::evaluate`], called for every optimizer
/// candidate) never reallocates frequency buffers.
#[derive(Debug, Clone)]
pub struct BandSpec {
    f_lo: f64,
    f_hi: f64,
    n_points: usize,
    grids: OnceLock<Grids>,
}

impl PartialEq for BandSpec {
    fn eq(&self, other: &Self) -> bool {
        // The grid cache is derived state; only the defining parameters
        // participate in equality.
        self.f_lo == other.f_lo && self.f_hi == other.f_hi && self.n_points == other.n_points
    }
}

impl BandSpec {
    /// A band from `f_lo` to `f_hi` Hz with `n_points` in-band evaluation
    /// points.
    pub fn new(f_lo: f64, f_hi: f64, n_points: usize) -> Self {
        BandSpec {
            f_lo,
            f_hi,
            n_points,
            grids: OnceLock::new(),
        }
    }

    /// The multi-constellation GNSS band of the paper: 1.1–1.7 GHz.
    pub fn gnss() -> Self {
        BandSpec::new(1.1e9, 1.7e9, 7)
    }

    /// Lower band edge (Hz).
    pub fn f_lo(&self) -> f64 {
        self.f_lo
    }

    /// Upper band edge (Hz).
    pub fn f_hi(&self) -> f64 {
        self.f_hi
    }

    /// Number of in-band evaluation points.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// A wider grid for out-of-band stability checks (0.2–6 GHz).
    pub fn stability_grid() -> &'static [f64] {
        &STABILITY_GRID
    }

    /// The in-band evaluation grid (computed once, then borrowed).
    pub fn grid(&self) -> &[f64] {
        &self.grids().in_band
    }

    /// The in-band grid followed by the stability grid — the combined
    /// buffer band evaluation sweeps (computed once, then borrowed).
    pub fn combined_grid(&self) -> &[f64] {
        &self.grids().combined
    }

    fn grids(&self) -> &Grids {
        self.grids.get_or_init(|| {
            let in_band = linspace(self.f_lo, self.f_hi, self.n_points);
            let mut combined = in_band.clone();
            combined.extend_from_slice(&STABILITY_GRID);
            Grids { in_band, combined }
        })
    }

    /// Band center (Hz).
    pub fn center(&self) -> f64 {
        0.5 * (self.f_lo + self.f_hi)
    }
}

/// Worst-case metrics of an amplifier over a band (plus out-of-band
/// stability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandMetrics {
    /// Largest in-band 50 Ω noise figure (dB).
    pub worst_nf_db: f64,
    /// Smallest in-band transducer gain (dB).
    pub min_gain_db: f64,
    /// Largest in-band |S11| (dB).
    pub worst_s11_db: f64,
    /// Largest in-band |S22| (dB).
    pub worst_s22_db: f64,
    /// Smallest geometric stability factor μ over the wide grid
    /// (must exceed 1 for unconditional stability).
    pub min_mu: f64,
    /// Smallest Rollett K over the wide grid.
    pub min_k: f64,
}

/// Outcome of a fault-isolated band evaluation
/// ([`BandMetrics::evaluate_robust`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BandOutcome {
    /// Every grid point evaluated.
    Complete(BandMetrics),
    /// Some points failed but stayed within the [`DegradePolicy`]; the
    /// metrics reduce over the surviving points only and must be treated
    /// as a flagged partial, never cached or compared bit-for-bit against
    /// a complete sweep.
    Degraded {
        /// Worst case over the surviving points.
        metrics: BandMetrics,
        /// One entry per failed grid point, in grid order.
        diagnostics: Vec<PointDiagnostic>,
    },
    /// The bias point is unreachable — a deterministic property of the
    /// design variables, not a transient solver failure.
    Infeasible,
    /// Transient point failures exceeded the policy (or left a grid
    /// segment empty); no metrics are trustworthy.
    Failed {
        /// One entry per failed grid point, in grid order.
        diagnostics: Vec<PointDiagnostic>,
    },
}

impl BandOutcome {
    /// The metrics when the sweep produced any (complete or degraded).
    pub fn metrics(&self) -> Option<&BandMetrics> {
        match self {
            BandOutcome::Complete(m) => Some(m),
            BandOutcome::Degraded { metrics, .. } => Some(metrics),
            BandOutcome::Infeasible | BandOutcome::Failed { .. } => None,
        }
    }

    /// The per-point failure diagnostics (empty for complete/infeasible
    /// outcomes).
    pub fn diagnostics(&self) -> &[PointDiagnostic] {
        match self {
            BandOutcome::Degraded { diagnostics, .. } | BandOutcome::Failed { diagnostics } => {
                diagnostics
            }
            BandOutcome::Complete(_) | BandOutcome::Infeasible => &[],
        }
    }

    /// `true` for the outcomes that are pure functions of the design
    /// (complete sweeps and deterministic infeasibility) and may therefore
    /// be memoized. Degraded and failed sweeps reflect transient solver
    /// trouble and must never enter a cache.
    pub fn cacheable(&self) -> bool {
        matches!(self, BandOutcome::Complete(_) | BandOutcome::Infeasible)
    }
}

impl BandMetrics {
    /// Evaluates an amplifier over the band; `None` when any point fails
    /// (e.g. unreachable bias).
    ///
    /// This is the strict view of [`BandMetrics::evaluate_robust`]: any
    /// point failure voids the sweep. Values are bit-identical to the
    /// pre-robust implementation — the reduction visits the same points in
    /// the same serial order.
    pub fn evaluate(amp: &Amplifier<'_>, band: &BandSpec) -> Option<BandMetrics> {
        match BandMetrics::evaluate_robust(amp, band, &DegradePolicy::strict()) {
            BandOutcome::Complete(m) => Some(m),
            _ => None,
        }
    }

    /// Evaluates an amplifier over the band with per-point failure
    /// isolation.
    ///
    /// The per-frequency evaluations (in-band grid plus out-of-band
    /// stability grid) go through `rfkit-par`: each point is a pure
    /// function of frequency, so the worst-case reduction — done serially
    /// in grid order afterwards — is thread-count independent. When this
    /// is itself called from a parallel region (e.g. optimizer population
    /// evaluation), the nested call runs serially, and dense grids in
    /// standalone sweeps fan out.
    ///
    /// A failed point records a [`PointDiagnostic`] instead of voiding the
    /// whole sweep. When every point succeeds the result is
    /// [`BandOutcome::Complete`]; when the bias point itself is
    /// unreachable it is [`BandOutcome::Infeasible`]; otherwise the
    /// failure fraction is graded against `policy` and the surviving
    /// points reduce to a [`BandOutcome::Degraded`] partial — provided
    /// both the in-band and stability segments keep at least one live
    /// point — or the sweep is [`BandOutcome::Failed`].
    pub fn evaluate_robust(
        amp: &Amplifier<'_>,
        band: &BandSpec,
        policy: &DegradePolicy,
    ) -> BandOutcome {
        static OBS_BAND_EVALS: rfkit_obs::Counter = rfkit_obs::Counter::new("band.evaluations");
        OBS_BAND_EVALS.add(1);
        // The combined in-band + stability buffer is cached on the spec;
        // evaluation allocates no frequency grids.
        let n_in_band = band.n_points();
        let freqs = band.combined_grid();
        // Fault hook, keyed by the frequency's bit pattern — data-derived,
        // so an armed plan fires at the same grid points regardless of how
        // rfkit-par chunks the sweep across threads.
        let points: Vec<Option<PointMetrics>> = par_map(freqs, |&f| {
            if faults::inject("band.point", f.to_bits()).is_some() {
                return None;
            }
            amp.metrics(f)
        });

        let mut diagnostics = Vec::new();
        let mut worst_nf = f64::NEG_INFINITY;
        let mut min_gain = f64::INFINITY;
        let mut worst_s11 = f64::NEG_INFINITY;
        let mut worst_s22 = f64::NEG_INFINITY;
        let mut in_band_live = 0usize;
        for (i, m) in points[..n_in_band].iter().enumerate() {
            let Some(m) = m.as_ref() else {
                diagnostics.push(PointDiagnostic {
                    index: i,
                    at: freqs[i],
                    detail: "in-band point failed to evaluate".to_string(),
                });
                continue;
            };
            in_band_live += 1;
            worst_nf = worst_nf.max(m.nf_db);
            min_gain = min_gain.min(m.gain_db);
            worst_s11 = worst_s11.max(m.s11_db);
            worst_s22 = worst_s22.max(m.s22_db);
        }
        let mut min_mu = f64::INFINITY;
        let mut min_k = f64::INFINITY;
        let mut stability_live = 0usize;
        for (i, m) in points[n_in_band..].iter().enumerate() {
            let Some(m) = m.as_ref() else {
                diagnostics.push(PointDiagnostic {
                    index: n_in_band + i,
                    at: freqs[n_in_band + i],
                    detail: "stability-grid point failed to evaluate".to_string(),
                });
                continue;
            };
            stability_live += 1;
            min_mu = min_mu.min(m.mu);
            min_k = min_k.min(m.k);
        }

        if !diagnostics.is_empty() {
            OBS_BAND_POINTS_FAILED.add(diagnostics.len() as u64);
        }
        if diagnostics.len() == freqs.len() && amp.operating_point().is_none() {
            // Every point failed because the bias itself is unreachable: a
            // deterministic property of the design, not solver trouble.
            return BandOutcome::Infeasible;
        }
        let metrics = BandMetrics {
            worst_nf_db: worst_nf,
            min_gain_db: min_gain,
            worst_s11_db: worst_s11,
            worst_s22_db: worst_s22,
            min_mu,
            min_k,
        };
        if diagnostics.is_empty() {
            return BandOutcome::Complete(metrics);
        }
        if in_band_live == 0
            || stability_live == 0
            || !policy.accepts(diagnostics.len(), freqs.len())
        {
            return BandOutcome::Failed { diagnostics };
        }
        BandOutcome::Degraded {
            metrics,
            diagnostics,
        }
    }

    /// `true` when the design meets the usual hard constraints:
    /// unconditional stability and ≤ `return_loss_db` reflections.
    pub fn feasible(&self, return_loss_db: f64) -> bool {
        self.min_mu > 1.0
            && self.worst_s11_db <= return_loss_db
            && self.worst_s22_db <= return_loss_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplifier::DesignVariables;
    use rfkit_device::Phemt;

    fn amp_vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn gnss_band_covers_all_constellations() {
        let b = BandSpec::gnss();
        for f in [GPS_L1_HZ, GPS_L2_HZ, GPS_L5_HZ, GLONASS_G1_HZ] {
            assert!(f >= b.f_lo() && f <= b.f_hi(), "{f} outside band");
        }
        assert_eq!(b.grid().len(), 7);
        assert!((b.center() - 1.4e9).abs() < 1.0);
    }

    #[test]
    fn grids_are_cached_and_consistent() {
        let b = BandSpec::new(1.1e9, 1.7e9, 5);
        // Repeated calls borrow the same buffer (compute-once, no realloc).
        assert!(std::ptr::eq(b.grid(), b.grid()));
        assert!(std::ptr::eq(b.combined_grid(), b.combined_grid()));
        // Combined = in-band grid followed by the stability grid.
        let combined = b.combined_grid();
        assert_eq!(&combined[..5], b.grid());
        assert_eq!(&combined[5..], BandSpec::stability_grid());
        // The in-band grid still matches a fresh linspace.
        assert_eq!(b.grid(), linspace(1.1e9, 1.7e9, 5).as_slice());
        // Equality ignores the lazily-populated cache.
        assert_eq!(b, BandSpec::new(1.1e9, 1.7e9, 5));
    }

    #[test]
    fn band_metrics_evaluate() {
        let d = Phemt::atf54143_like();
        let amp = crate::amplifier::Amplifier::new(&d, amp_vars());
        let m = BandMetrics::evaluate(&amp, &BandSpec::gnss()).expect("valid design");
        assert!(
            m.worst_nf_db > 0.0 && m.worst_nf_db < 3.0,
            "NF {}",
            m.worst_nf_db
        );
        assert!(m.min_gain_db > 5.0, "gain {}", m.min_gain_db);
        assert!(m.min_k.is_finite());
        // Worst-case NF is at least the best-case in-band NF.
        let center = amp.metrics(1.4e9).unwrap();
        assert!(m.worst_nf_db >= center.nf_db - 1e-12);
        assert!(m.min_gain_db <= center.gain_db + 1e-12);
    }

    #[test]
    fn infeasible_bias_propagates_none() {
        let d = Phemt::atf54143_like();
        let mut vars = amp_vars();
        vars.ids = 3.0;
        let amp = crate::amplifier::Amplifier::new(&d, vars);
        assert!(BandMetrics::evaluate(&amp, &BandSpec::gnss()).is_none());
    }

    #[test]
    fn robust_outcome_classifies_complete_and_infeasible() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let amp = crate::amplifier::Amplifier::new(&d, amp_vars());
        let policy = rfkit_robust::DegradePolicy::strict();
        // A healthy design is Complete and agrees bit-for-bit with the
        // strict evaluator.
        let outcome = BandMetrics::evaluate_robust(&amp, &band, &policy);
        let strict = BandMetrics::evaluate(&amp, &band).expect("feasible");
        assert_eq!(outcome, BandOutcome::Complete(strict));
        assert!(outcome.cacheable());
        assert!(outcome.diagnostics().is_empty());
        assert_eq!(outcome.metrics(), Some(&strict));
        // An unreachable bias is Infeasible — a property of the design,
        // not a transient failure, so it is cacheable but carries no
        // metrics.
        let mut bad = amp_vars();
        bad.ids = 3.0;
        let dead = crate::amplifier::Amplifier::new(&d, bad);
        let outcome = BandMetrics::evaluate_robust(&dead, &band, &policy);
        assert_eq!(outcome, BandOutcome::Infeasible);
        assert!(outcome.cacheable());
        assert_eq!(outcome.metrics(), None);
    }

    #[test]
    fn feasibility_thresholds() {
        let m = BandMetrics {
            worst_nf_db: 0.9,
            min_gain_db: 14.0,
            worst_s11_db: -12.0,
            worst_s22_db: -11.0,
            min_mu: 1.05,
            min_k: 1.2,
        };
        assert!(m.feasible(-10.0));
        assert!(!m.feasible(-15.0));
        let unstable = BandMetrics { min_mu: 0.9, ..m };
        assert!(!unstable.feasible(-10.0));
    }
}
