//! Band specifications and worst-case band metrics.
//!
//! The multi-constellation requirement is what makes this design
//! multi-objective *across frequency*: GPS L1/L2/L5, GLONASS G1/G2,
//! Galileo E1/E5/E6 and BeiDou B1/B2/B3 together span roughly
//! 1.1–1.7 GHz, and the paper optimizes the worst case over that whole
//! band rather than a single spot frequency.

use crate::amplifier::{Amplifier, PointMetrics};
use rfkit_num::linspace;
use rfkit_par::par_map;
use std::sync::OnceLock;

/// GPS L1 / Galileo E1 / BeiDou B1C center frequency (Hz).
pub const GPS_L1_HZ: f64 = 1.57542e9;
/// GPS L2 center frequency (Hz).
pub const GPS_L2_HZ: f64 = 1.2276e9;
/// GPS L5 / Galileo E5a center frequency (Hz).
pub const GPS_L5_HZ: f64 = 1.17645e9;
/// GLONASS G1 center frequency (Hz).
pub const GLONASS_G1_HZ: f64 = 1.602e9;

/// The wider out-of-band stability-check grid (0.2–6 GHz).
const STABILITY_GRID: [f64; 8] = [0.2e9, 0.5e9, 1.0e9, 1.4e9, 1.8e9, 2.5e9, 4.0e9, 6.0e9];

/// Cached evaluation grids of a [`BandSpec`], computed once per spec.
#[derive(Debug, Clone)]
struct Grids {
    /// The in-band linspace grid.
    in_band: Vec<f64>,
    /// In-band grid followed by the stability grid — the buffer
    /// [`BandMetrics::evaluate`] sweeps.
    combined: Vec<f64>,
}

/// A frequency band with an evaluation grid.
///
/// The band edges and point count are fixed at construction; the
/// evaluation grids are computed lazily once and then borrowed, so the
/// hot path ([`BandMetrics::evaluate`], called for every optimizer
/// candidate) never reallocates frequency buffers.
#[derive(Debug, Clone)]
pub struct BandSpec {
    f_lo: f64,
    f_hi: f64,
    n_points: usize,
    grids: OnceLock<Grids>,
}

impl PartialEq for BandSpec {
    fn eq(&self, other: &Self) -> bool {
        // The grid cache is derived state; only the defining parameters
        // participate in equality.
        self.f_lo == other.f_lo && self.f_hi == other.f_hi && self.n_points == other.n_points
    }
}

impl BandSpec {
    /// A band from `f_lo` to `f_hi` Hz with `n_points` in-band evaluation
    /// points.
    pub fn new(f_lo: f64, f_hi: f64, n_points: usize) -> Self {
        BandSpec {
            f_lo,
            f_hi,
            n_points,
            grids: OnceLock::new(),
        }
    }

    /// The multi-constellation GNSS band of the paper: 1.1–1.7 GHz.
    pub fn gnss() -> Self {
        BandSpec::new(1.1e9, 1.7e9, 7)
    }

    /// Lower band edge (Hz).
    pub fn f_lo(&self) -> f64 {
        self.f_lo
    }

    /// Upper band edge (Hz).
    pub fn f_hi(&self) -> f64 {
        self.f_hi
    }

    /// Number of in-band evaluation points.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// A wider grid for out-of-band stability checks (0.2–6 GHz).
    pub fn stability_grid() -> &'static [f64] {
        &STABILITY_GRID
    }

    /// The in-band evaluation grid (computed once, then borrowed).
    pub fn grid(&self) -> &[f64] {
        &self.grids().in_band
    }

    /// The in-band grid followed by the stability grid — the combined
    /// buffer band evaluation sweeps (computed once, then borrowed).
    pub fn combined_grid(&self) -> &[f64] {
        &self.grids().combined
    }

    fn grids(&self) -> &Grids {
        self.grids.get_or_init(|| {
            let in_band = linspace(self.f_lo, self.f_hi, self.n_points);
            let mut combined = in_band.clone();
            combined.extend_from_slice(&STABILITY_GRID);
            Grids { in_band, combined }
        })
    }

    /// Band center (Hz).
    pub fn center(&self) -> f64 {
        0.5 * (self.f_lo + self.f_hi)
    }
}

/// Worst-case metrics of an amplifier over a band (plus out-of-band
/// stability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandMetrics {
    /// Largest in-band 50 Ω noise figure (dB).
    pub worst_nf_db: f64,
    /// Smallest in-band transducer gain (dB).
    pub min_gain_db: f64,
    /// Largest in-band |S11| (dB).
    pub worst_s11_db: f64,
    /// Largest in-band |S22| (dB).
    pub worst_s22_db: f64,
    /// Smallest geometric stability factor μ over the wide grid
    /// (must exceed 1 for unconditional stability).
    pub min_mu: f64,
    /// Smallest Rollett K over the wide grid.
    pub min_k: f64,
}

impl BandMetrics {
    /// Evaluates an amplifier over the band; `None` when any point fails
    /// (e.g. unreachable bias).
    ///
    /// The per-frequency evaluations (in-band grid plus out-of-band
    /// stability grid) go through `rfkit-par`: each point is a pure
    /// function of frequency, so the worst-case reduction — done serially
    /// in grid order afterwards — is thread-count independent. When this
    /// is itself called from a parallel region (e.g. optimizer population
    /// evaluation), the nested call runs serially, and dense grids in
    /// standalone sweeps fan out.
    pub fn evaluate(amp: &Amplifier<'_>, band: &BandSpec) -> Option<BandMetrics> {
        static OBS_BAND_EVALS: rfkit_obs::Counter = rfkit_obs::Counter::new("band.evaluations");
        OBS_BAND_EVALS.add(1);
        // The combined in-band + stability buffer is cached on the spec;
        // evaluation allocates no frequency grids.
        let n_in_band = band.n_points();
        let freqs = band.combined_grid();
        let points: Vec<Option<PointMetrics>> = par_map(freqs, |&f| amp.metrics(f));

        let mut worst_nf = f64::NEG_INFINITY;
        let mut min_gain = f64::INFINITY;
        let mut worst_s11 = f64::NEG_INFINITY;
        let mut worst_s22 = f64::NEG_INFINITY;
        for m in &points[..n_in_band] {
            let m = m.as_ref()?;
            worst_nf = worst_nf.max(m.nf_db);
            min_gain = min_gain.min(m.gain_db);
            worst_s11 = worst_s11.max(m.s11_db);
            worst_s22 = worst_s22.max(m.s22_db);
        }
        let mut min_mu = f64::INFINITY;
        let mut min_k = f64::INFINITY;
        for m in &points[n_in_band..] {
            let m = m.as_ref()?;
            min_mu = min_mu.min(m.mu);
            min_k = min_k.min(m.k);
        }
        Some(BandMetrics {
            worst_nf_db: worst_nf,
            min_gain_db: min_gain,
            worst_s11_db: worst_s11,
            worst_s22_db: worst_s22,
            min_mu,
            min_k,
        })
    }

    /// `true` when the design meets the usual hard constraints:
    /// unconditional stability and ≤ `return_loss_db` reflections.
    pub fn feasible(&self, return_loss_db: f64) -> bool {
        self.min_mu > 1.0
            && self.worst_s11_db <= return_loss_db
            && self.worst_s22_db <= return_loss_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplifier::DesignVariables;
    use rfkit_device::Phemt;

    fn amp_vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn gnss_band_covers_all_constellations() {
        let b = BandSpec::gnss();
        for f in [GPS_L1_HZ, GPS_L2_HZ, GPS_L5_HZ, GLONASS_G1_HZ] {
            assert!(f >= b.f_lo() && f <= b.f_hi(), "{f} outside band");
        }
        assert_eq!(b.grid().len(), 7);
        assert!((b.center() - 1.4e9).abs() < 1.0);
    }

    #[test]
    fn grids_are_cached_and_consistent() {
        let b = BandSpec::new(1.1e9, 1.7e9, 5);
        // Repeated calls borrow the same buffer (compute-once, no realloc).
        assert!(std::ptr::eq(b.grid(), b.grid()));
        assert!(std::ptr::eq(b.combined_grid(), b.combined_grid()));
        // Combined = in-band grid followed by the stability grid.
        let combined = b.combined_grid();
        assert_eq!(&combined[..5], b.grid());
        assert_eq!(&combined[5..], BandSpec::stability_grid());
        // The in-band grid still matches a fresh linspace.
        assert_eq!(b.grid(), linspace(1.1e9, 1.7e9, 5).as_slice());
        // Equality ignores the lazily-populated cache.
        assert_eq!(b, BandSpec::new(1.1e9, 1.7e9, 5));
    }

    #[test]
    fn band_metrics_evaluate() {
        let d = Phemt::atf54143_like();
        let amp = crate::amplifier::Amplifier::new(&d, amp_vars());
        let m = BandMetrics::evaluate(&amp, &BandSpec::gnss()).expect("valid design");
        assert!(
            m.worst_nf_db > 0.0 && m.worst_nf_db < 3.0,
            "NF {}",
            m.worst_nf_db
        );
        assert!(m.min_gain_db > 5.0, "gain {}", m.min_gain_db);
        assert!(m.min_k.is_finite());
        // Worst-case NF is at least the best-case in-band NF.
        let center = amp.metrics(1.4e9).unwrap();
        assert!(m.worst_nf_db >= center.nf_db - 1e-12);
        assert!(m.min_gain_db <= center.gain_db + 1e-12);
    }

    #[test]
    fn infeasible_bias_propagates_none() {
        let d = Phemt::atf54143_like();
        let mut vars = amp_vars();
        vars.ids = 3.0;
        let amp = crate::amplifier::Amplifier::new(&d, vars);
        assert!(BandMetrics::evaluate(&amp, &BandSpec::gnss()).is_none());
    }

    #[test]
    fn feasibility_thresholds() {
        let m = BandMetrics {
            worst_nf_db: 0.9,
            min_gain_db: 14.0,
            worst_s11_db: -12.0,
            worst_s22_db: -11.0,
            min_mu: 1.05,
            min_k: 1.2,
        };
        assert!(m.feasible(-10.0));
        assert!(!m.feasible(-15.0));
        let unstable = BandMetrics { min_mu: 0.9, ..m };
        assert!(!unstable.feasible(-10.0));
    }
}
