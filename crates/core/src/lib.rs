//! # lna — the paper's primary contribution
//!
//! The multi-objective GNSS antenna-preamplifier design flow of
//! Dobeš et al. (SOCC 2015), reproduced end to end:
//!
//! * the single-stage pHEMT amplifier topology with dispersive catalog
//!   passives ([`Amplifier`]);
//! * worst-case band objectives over the 1.1–1.7 GHz multi-constellation
//!   band ([`band`]);
//! * the improved goal-attainment design flow selecting the operating
//!   point and essential passives, with E24 snapping ([`design`]);
//! * the surrogate-screened band-level NF/gain Pareto-front study,
//!   trained online from the design cache ([`study`]);
//! * the as-built measurement simulation (tolerances, launch lines,
//!   instrument noise) behind the paper's measured figures ([`measure()`]);
//! * report/table formatting ([`report`]).
//!
//! ## Example
//!
//! ```no_run
//! use lna::{design_lna, DesignConfig, DesignGoals};
//! use rfkit_device::Phemt;
//!
//! let device = Phemt::atf54143_like();
//! let design = design_lna(&device, &DesignGoals::default(), &DesignConfig::default());
//! println!("worst in-band NF = {:.2} dB", design.snapped_metrics.worst_nf_db);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod amplifier;
pub mod band;
pub mod cache;
pub mod design;
pub mod measure;
pub mod report;
pub mod study;
pub mod thermal;
pub mod verify;
pub mod yield_analysis;

pub use amplifier::{Amplifier, DesignVariables, PointMetrics};
pub use band::{BandMetrics, BandOutcome, BandSpec};
pub use cache::{DesignCache, DEFAULT_CACHE_CAPACITY};
pub use design::{
    band_objectives, cached_band_objectives, design_lna, robust_band_objectives, snap_to_catalog,
    spot_objectives, DesignConfig, DesignGoals, LnaDesign,
};
pub use measure::{
    gain_gap_db, measure, measure_im3, BuildConfig, BuiltAmplifier, MeasurementSession,
};
pub use rfkit_robust::{DegradePolicy, PointDiagnostic, RetryPolicy, SolveError, SolveStage};
pub use study::{
    nf_gain_objectives, pareto_front_study, study_screen_config, surrogate_training_set,
    ParetoStudy, ParetoStudyConfig, STUDY_REFERENCE,
};
pub use thermal::{band_sweep_over_temperature, metrics_at_temperature, ThermalCondition};
pub use verify::{cached_sweep, multistage_netlist, output_match_network, reference_netlist};
pub use yield_analysis::{
    yield_analysis, yield_analysis_robust, YieldOutcome, YieldReport, YieldSpec,
};
