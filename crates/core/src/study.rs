//! Surrogate-accelerated Pareto-front study of the band-level NF/gain
//! trade-off.
//!
//! The paper's Figure-4 study traces the noise-figure-versus-gain front;
//! this module runs the band-level (worst-case in-band) version of that
//! trade-off with NSGA-II, optionally screened by an `rfkit-surrogate`
//! response-surface model trained from a [`DesignCache`] snapshot. The
//! screen only *vetoes* true band evaluations — every objective vector
//! that reaches the returned front passed through
//! [`BandMetrics::evaluate`](crate::band::BandMetrics::evaluate) via the
//! cache, so surrogate predictions can never contaminate results
//! (prune-never-propagate).
//!
//! The cache is taken by reference so a warm-up run (or a previous
//! study) can seed the surrogate's training set: points the flow already
//! paid for become free model fodder through
//! [`surrogate_training_set`].

use crate::amplifier::DesignVariables;
use crate::band::BandSpec;
use crate::cache::DesignCache;
use crate::design::INFEASIBLE;
use rfkit_device::Phemt;
use rfkit_opt::pareto::hypervolume_2d;
use rfkit_opt::{nsga2, nsga2_screened, Individual, Nsga2Config};
use rfkit_surrogate::{ScreenStats, SurrogateConfig, SurrogateScreen};

/// Hypervolume reference point for the study: 3 dB worst-case noise
/// figure, 0 dB worst-case gain. A front point contributes only when it
/// beats both — i.e. is a usable GNSS preamplifier at all.
pub const STUDY_REFERENCE: [f64; 2] = [3.0, 0.0];

/// Builds the 2-component band objective vector
/// `[worst NF dB, −min gain dB]` memoized through `cache`, with
/// unconditional stability folded in as a feasibility gate: a design
/// whose stability factor dips to `μ ≤ 1` anywhere on the wide grid
/// takes the [`INFEASIBLE`] penalty in both objectives, exactly like an
/// unreachable bias point.
pub fn nf_gain_objectives<'a>(
    device: &'a Phemt,
    band: &'a BandSpec,
    cache: &'a DesignCache,
) -> impl Fn(&[f64]) -> Vec<f64> + 'a {
    move |x: &[f64]| {
        let vars = DesignVariables::from_vec(x);
        match cache.evaluate(device, vars, band) {
            Some(m) if m.min_mu > 1.0 => vec![m.worst_nf_db, -m.min_gain_db],
            _ => vec![INFEASIBLE; 2],
        }
    }
}

/// Extracts the surrogate training set from a cache snapshot: one
/// `(design vector, objective vector)` pair per entry, in deterministic
/// snapshot order, scored exactly as [`nf_gain_objectives`] would score
/// it — feasible stable entries carry their real
/// `[worst NF dB, −min gain dB]`, everything else the [`INFEASIBLE`]
/// penalty vector.
///
/// Penalty rows are deliberately *included*: on this landscape the
/// dominant structure is the thin unconditionally-stable region inside a
/// sea of `μ ≤ 1` designs, and a screen that never saw the sea cannot
/// veto candidates in it. The RBF model of [`study_screen_config`]
/// localizes the cliff (predictions relax to the penalty plateau away
/// from feasible training points) instead of smearing it the way a
/// global polynomial would. Training values still never propagate — they
/// only shape keep/skip verdicts.
pub fn surrogate_training_set(cache: &DesignCache) -> Vec<(Vec<f64>, Vec<f64>)> {
    cache
        .snapshot()
        .into_iter()
        .map(|(vars, metrics)| {
            let f = match metrics {
                Some(m)
                    if m.min_mu > 1.0 && m.worst_nf_db.is_finite() && m.min_gain_db.is_finite() =>
                {
                    vec![m.worst_nf_db, -m.min_gain_db]
                }
                _ => vec![INFEASIBLE; 2],
            };
            (vars.to_vec(), f)
        })
        .collect()
}

/// Surrogate screen configuration tuned for the band study: an RBF
/// model (arms after `3·dim` points instead of the quadratic's 72 and
/// can localize the feasibility cliff), an `outlier_cap` that admits
/// the [`INFEASIBLE`] penalty encoding as training data while still
/// excluding genuinely broken values, and a mild exploration floor that
/// keeps spending occasional true evaluations on model-rejected
/// candidates near the feasible boundary.
///
/// `κ = 0` switches the acquisition from a lower confidence bound to
/// the plain model prediction: on this cliff-dominated landscape the
/// support-aware confidence band is systematically over-conservative
/// near the feasibility boundary (exactly where the interesting
/// candidates live), and seed scans showed the always-on
/// ε-improvement threshold (`min_improvement` at
/// `improvement_patience = 0`) holding front quality better while
/// pruning 4–5× — the batch keep floor and the exploration trickle
/// carry the safety-valve role instead.
pub fn study_screen_config(seed: u64) -> SurrogateConfig {
    SurrogateConfig {
        model: rfkit_surrogate::ModelKind::Rbf,
        outlier_cap: 10.0 * INFEASIBLE,
        kappa: 0.0,
        min_improvement: 0.3,
        improvement_patience: 0,
        explore_min: 0.05,
        min_keep_frac: 0.125,
        seed,
        ..Default::default()
    }
}

/// Configuration of [`pareto_front_study`].
#[derive(Debug, Clone)]
pub struct ParetoStudyConfig {
    /// NSGA-II population size (even; 0 selects the optimizer default).
    pub population: usize,
    /// NSGA-II generations.
    pub generations: usize,
    /// RNG seed (optimizer; the screen derives its own from
    /// [`SurrogateConfig::seed`]).
    pub seed: u64,
    /// Design vectors injected into the initial population (warm
    /// start) — typically a previous study's front. Injected designs
    /// are evaluated like any other; an empty vector (the default)
    /// starts from a fully random population.
    pub initial: Vec<Vec<f64>>,
    /// Surrogate screen to arm, or `None` for a plain (baseline) run.
    pub surrogate: Option<SurrogateConfig>,
}

impl Default for ParetoStudyConfig {
    fn default() -> Self {
        ParetoStudyConfig {
            population: 48,
            generations: 40,
            seed: 0xf4,
            initial: Vec::new(),
            surrogate: Some(study_screen_config(0x5ca1e)),
        }
    }
}

/// Result of a [`pareto_front_study`] run.
#[derive(Debug, Clone)]
pub struct ParetoStudy {
    /// Final non-dominated front; every objective vector is
    /// true-evaluated (feasible points carry real band metrics).
    pub front: Vec<Individual>,
    /// Dominated 2-D hypervolume against [`STUDY_REFERENCE`].
    pub hypervolume: f64,
    /// True objective evaluations spent by the optimizer (screen-pruned
    /// candidates excluded).
    pub evaluations: usize,
    /// Full band sweeps actually computed (cache misses during the run).
    pub band_evaluations: u64,
    /// Band sweeps avoided by the memo cache during the run.
    pub cache_hits: u64,
    /// Evaluations-to-quality curve: `(true evaluations so far,
    /// first-front hypervolume against `STUDY_REFERENCE`)` after
    /// initialisation and after each generation. This is what
    /// equal-quality comparisons (benchmarks) read: the evaluation
    /// count at which a run first reaches a given hypervolume.
    pub history: Vec<(usize, f64)>,
    /// Screen decision counters, when a surrogate was armed.
    pub screen_stats: Option<ScreenStats>,
}

/// Traces the band-level NF/gain Pareto front for `device` over `band`.
///
/// With `config.surrogate` set, the screen is seeded from the cache's
/// current contents ([`surrogate_training_set`]) and consulted serially
/// before every parallel offspring batch; otherwise this is a plain
/// NSGA-II run. Either way the cache memoizes band sweeps, so a study
/// run on a warm cache both trains better models and pays for fewer
/// sweeps. Fixed seeds give bit-identical fronts at any `RFKIT_THREADS`.
pub fn pareto_front_study(
    device: &Phemt,
    band: &BandSpec,
    config: &ParetoStudyConfig,
    cache: &DesignCache,
) -> ParetoStudy {
    let _span = rfkit_obs::span("study.pareto");
    let objectives = nf_gain_objectives(device, band, cache);
    let objective_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let bounds = DesignVariables::bounds();
    let nsga_cfg = Nsga2Config {
        population: config.population,
        generations: config.generations,
        seed: config.seed,
        hv_reference: Some(STUDY_REFERENCE),
        initial_population: config.initial.clone(),
        ..Default::default()
    };
    let hits_before = cache.hits();
    let misses_before = cache.misses();

    let (result, screen_stats) = match &config.surrogate {
        Some(screen_cfg) => {
            let mut screen = SurrogateScreen::new(bounds.dim(), 2, screen_cfg.clone());
            screen.seed_training(&surrogate_training_set(cache));
            let r = nsga2_screened(objective_ref, &bounds, &nsga_cfg, &mut screen);
            (r, Some(screen.stats()))
        }
        None => (nsga2(objective_ref, &bounds, &nsga_cfg), None),
    };

    let front_objs: Vec<Vec<f64>> = result.front.iter().map(|i| i.objectives.clone()).collect();
    let hypervolume = hypervolume_2d(&front_objs, STUDY_REFERENCE);
    let band_evaluations = cache.misses() - misses_before;
    let cache_hits = cache.hits() - hits_before;
    if rfkit_obs::enabled() {
        rfkit_obs::event(
            "study.result",
            &[
                ("front", result.front.len() as f64),
                ("hypervolume", hypervolume),
                ("evals", result.evaluations as f64),
                ("band_evals", band_evaluations as f64),
            ],
        );
    }

    ParetoStudy {
        front: result.front,
        hypervolume,
        evaluations: result.evaluations,
        band_evaluations,
        cache_hits,
        history: result.history,
        screen_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study(surrogate: Option<SurrogateConfig>) -> ParetoStudyConfig {
        ParetoStudyConfig {
            population: 16,
            generations: 5,
            seed: 7,
            initial: Vec::new(),
            surrogate,
        }
    }

    #[test]
    fn training_set_mirrors_objective_penalty_encoding() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::new(64);
        // Heavier source degeneration and a light bias feed: one of the
        // few corners of the box where the wide-grid μ clears 1.
        let good = DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.8e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 15.0,
        };
        let m = cache.evaluate(&d, good, &band).expect("reference feasible");
        assert!(m.min_mu > 1.0, "reference design must be stable");
        let mut bad = good;
        bad.ids = 3.0; // unreachable bias → cached as infeasible
        assert_eq!(cache.evaluate(&d, bad, &band), None);

        let train = surrogate_training_set(&cache);
        assert_eq!(train.len(), 2, "every cached entry trains");
        let feasible = train
            .iter()
            .find(|(x, _)| x == &good.to_vec())
            .expect("feasible entry present");
        assert_eq!(feasible.1, vec![m.worst_nf_db, -m.min_gain_db]);
        let penalty = train
            .iter()
            .find(|(x, _)| x == &bad.to_vec())
            .expect("infeasible entry present");
        assert_eq!(
            penalty.1,
            vec![INFEASIBLE; 2],
            "infeasible entries carry the objective's penalty encoding"
        );
    }

    #[test]
    fn study_front_is_true_evaluated_and_feasible() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        let cache = DesignCache::with_default_capacity();
        let study = pareto_front_study(&d, &band, &quick_study(None), &cache);
        assert!(!study.front.is_empty());
        assert!(study.hypervolume > 0.0, "no usable design on the front");
        // Every front point re-evaluates (from cache) to exactly the
        // objectives the optimizer recorded — nothing predicted, nothing
        // stale.
        let obj = nf_gain_objectives(&d, &band, &cache);
        for ind in &study.front {
            assert_eq!(ind.objectives, obj(&ind.x));
            assert!(ind.objectives[0] < INFEASIBLE);
        }
        assert_eq!(
            study.band_evaluations + study.cache_hits,
            study.evaluations as u64,
            "every optimizer evaluation is a cache hit or a band sweep"
        );
    }

    #[test]
    fn warm_cache_seeds_screen_and_preserves_quality() {
        let d = Phemt::atf54143_like();
        let band = BandSpec::gnss();
        // Warm-up: a plain run populates the cache.
        let cache = DesignCache::with_default_capacity();
        let warmup = pareto_front_study(&d, &band, &quick_study(None), &cache);
        assert!(!surrogate_training_set(&cache).is_empty());

        // Screened run on the warm cache: the seeded model prunes, and
        // the front quality (hypervolume) stays in the same regime.
        let screened = pareto_front_study(
            &d,
            &band,
            &quick_study(Some(study_screen_config(0x5ca1e))),
            &cache,
        );
        let stats = screened.screen_stats.expect("screen was armed");
        assert!(stats.fits > 0, "seeded screen never fitted a model");
        assert!(
            screened.hypervolume > 0.5 * warmup.hypervolume,
            "screened front collapsed: {} vs {}",
            screened.hypervolume,
            warmup.hypervolume
        );
    }
}
