//! Plain-text table and report formatting for the experiment binaries.
//!
//! Every table/figure binary in `crates/bench` prints through these
//! helpers so the reproduction's output reads like the paper's tables.

use crate::amplifier::DesignVariables;
use crate::band::BandMetrics;

/// Renders a fixed-width text table. Column widths adapt to content.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Formats engineering values with a unit prefix (n, p, m, …).
pub fn eng(value: f64, unit: &str) -> String {
    let a = value.abs();
    let (scaled, prefix) = if rfkit_num::is_exact_zero(a) {
        (value, "")
    } else if a >= 1e9 {
        (value / 1e9, "G")
    } else if a >= 1e6 {
        (value / 1e6, "M")
    } else if a >= 1e3 {
        (value / 1e3, "k")
    } else if a >= 1.0 {
        (value, "")
    } else if a >= 1e-3 {
        (value * 1e3, "m")
    } else if a >= 1e-6 {
        (value * 1e6, "u")
    } else if a >= 1e-9 {
        (value * 1e9, "n")
    } else if a >= 1e-12 {
        (value * 1e12, "p")
    } else {
        (value * 1e15, "f")
    };
    format!("{scaled:.3} {prefix}{unit}")
}

/// One-paragraph textual summary of a design's component values.
pub fn design_summary(vars: &DesignVariables) -> Vec<(String, String)> {
    vec![
        ("Vds".into(), format!("{:.2} V", vars.vds)),
        ("Ids".into(), eng(vars.ids, "A")),
        ("L1 (series input)".into(), eng(vars.l1, "H")),
        ("Ls (degeneration)".into(), eng(vars.ls_deg, "H")),
        ("L2 (shunt output / bias feed)".into(), eng(vars.l2, "H")),
        ("C2 (output block/match)".into(), eng(vars.c2, "F")),
        (
            "R_bias (feed damping)".into(),
            format!("{:.1} ohm", vars.r_bias),
        ),
    ]
}

/// Summary rows of band metrics for the performance table.
pub fn metrics_summary(m: &BandMetrics) -> Vec<(String, String)> {
    vec![
        (
            "worst in-band NF".into(),
            format!("{:.3} dB", m.worst_nf_db),
        ),
        (
            "min in-band gain".into(),
            format!("{:.2} dB", m.min_gain_db),
        ),
        ("worst |S11|".into(), format!("{:.1} dB", m.worst_s11_db)),
        ("worst |S22|".into(), format!("{:.1} dB", m.worst_s22_db)),
        ("min K (0.2-6 GHz)".into(), format!("{:.2}", m.min_k)),
        ("min mu (0.2-6 GHz)".into(), format!("{:.3}", m.min_mu)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = format_table(
            &["model", "rmse"],
            &[
                vec!["Angelov".into(), "0.004".into()],
                vec!["TOM".into(), "0.031".into()],
            ],
        );
        assert!(t.contains("| model   | rmse  |"));
        assert!(t.contains("| Angelov | 0.004 |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn engineering_notation() {
        assert_eq!(eng(4.7e-9, "H"), "4.700 nH");
        assert_eq!(eng(2.2e-12, "F"), "2.200 pF");
        assert_eq!(eng(0.05, "A"), "50.000 mA");
        assert_eq!(eng(1.575e9, "Hz"), "1.575 GHz");
        assert_eq!(eng(0.0, "V"), "0.000 V");
    }

    #[test]
    fn summaries_have_all_fields() {
        let vars = DesignVariables {
            vds: 3.0,
            ids: 0.05,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        };
        assert_eq!(design_summary(&vars).len(), 7);
        let m = BandMetrics {
            worst_nf_db: 0.8,
            min_gain_db: 14.0,
            worst_s11_db: -12.0,
            worst_s22_db: -13.0,
            min_mu: 1.1,
            min_k: 1.3,
        };
        assert_eq!(metrics_summary(&m).len(), 6);
    }
}
