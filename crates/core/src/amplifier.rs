//! The GNSS antenna preamplifier circuit and its evaluation.
//!
//! Topology (single ATF-54143-class pHEMT stage, the arrangement of the
//! vendor application notes and of the paper's prototype):
//!
//! ```text
//! in ──┤C_blk├──(L1 series)──┤gate  drain├──(C2 series)── out
//!                                  │             │
//!                              Ls_deg         R_bias + L2 shunt
//!                              (source        (bias feed, output match,
//!                               degeneration)  low-frequency damping)
//! ```
//!
//! The series resistor in the bias feed is the classic low-frequency
//! stabilization: below the band the choke impedance collapses and the
//! resistor loads the drain, killing the out-of-band gain that would
//! otherwise make the stage conditionally stable; in band the choke hides
//! it.
//!
//! All passives are the *dispersive* catalog models from `rfkit-passive`
//! (finite Q, ESR(f), self-resonance), so matching-network loss correctly
//! degrades the noise figure, and the whole chain is evaluated with
//! noise-correlation matrices.

use rfkit_device::{OperatingPoint, Phemt};
use rfkit_net::gains::transducer_gain;
use rfkit_net::stability::{mu_load, mu_source, rollett_k};
use rfkit_net::{NoisyAbcd, SParams};
use rfkit_num::units::{db_from_amplitude_ratio, nf_db_from_factor, T0_KELVIN};
use rfkit_num::Complex;
use rfkit_passive::{Capacitor, Component, Inductor, Orientation};

/// The six continuous design variables of the amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignVariables {
    /// Drain-source bias voltage (V).
    pub vds: f64,
    /// Drain bias current (A).
    pub ids: f64,
    /// Series input inductor (H).
    pub l1: f64,
    /// Source degeneration inductance added to the device lead (H).
    pub ls_deg: f64,
    /// Shunt output inductor (H) — also the drain bias feed.
    pub l2: f64,
    /// Series output DC-block/match capacitor (F).
    pub c2: f64,
    /// Resistor in series with the bias feed (Ω) — low-frequency
    /// stabilization.
    pub r_bias: f64,
}

impl DesignVariables {
    /// Encodes into the optimizer vector
    /// `[vds, ids_mA, l1_nH, ls_nH, l2_nH, c2_pF, r_bias_ohm]`.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.vds,
            self.ids * 1e3,
            self.l1 * 1e9,
            self.ls_deg * 1e9,
            self.l2 * 1e9,
            self.c2 * 1e12,
            self.r_bias,
        ]
    }

    /// Decodes from the optimizer vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != 7`.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len(), 7, "design vector must have 7 entries");
        DesignVariables {
            vds: v[0],
            ids: v[1] * 1e-3,
            l1: v[2] * 1e-9,
            ls_deg: v[3] * 1e-9,
            l2: v[4] * 1e-9,
            c2: v[5] * 1e-12,
            r_bias: v[6],
        }
    }

    /// The optimizer box: Vds 1.5–4 V, Ids 10–80 mA, L1 0.5–18 nH,
    /// Ls 0–1.2 nH, L2 1–22 nH, C2 0.3–12 pF, R_bias 5–200 Ω.
    pub fn bounds() -> rfkit_opt::Bounds {
        rfkit_opt::Bounds::new(
            vec![1.5, 10.0, 0.5, 0.0, 1.0, 0.3, 5.0],
            vec![4.0, 80.0, 18.0, 1.2, 22.0, 12.0, 200.0],
        )
        .expect("valid design bounds")
    }
}

/// The amplifier: a device plus design variables.
pub struct Amplifier<'a> {
    /// The pHEMT the amplifier is built around.
    pub device: &'a Phemt,
    /// The selected design.
    pub vars: DesignVariables,
    /// Fixed input DC-block capacitance (F).
    pub c_block: f64,
}

/// Metrics of the amplifier at one frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// Frequency (Hz).
    pub freq_hz: f64,
    /// Transducer gain into 50 Ω terminations (dB).
    pub gain_db: f64,
    /// Noise figure with a 50 Ω source (dB).
    pub nf_db: f64,
    /// Input reflection |S11| (dB).
    pub s11_db: f64,
    /// Output reflection |S22| (dB).
    pub s22_db: f64,
    /// Rollett stability factor.
    pub k: f64,
    /// Geometric stability factor (load plane).
    pub mu: f64,
}

impl<'a> Amplifier<'a> {
    /// Creates the amplifier with the default 100 pF input block.
    pub fn new(device: &'a Phemt, vars: DesignVariables) -> Self {
        Amplifier {
            device,
            vars,
            c_block: 100e-12,
        }
    }

    /// The DC operating point implied by the design variables.
    ///
    /// Returns `None` when `ids` is outside the device's range at `vds`.
    pub fn operating_point(&self) -> Option<OperatingPoint> {
        let vgs = self.device.bias_for_current(self.vars.vds, self.vars.ids)?;
        Some(self.device.operating_point(vgs, self.vars.vds))
    }

    /// The complete noisy two-port at `freq_hz` (input network × device
    /// with degeneration × output network), at ambient temperature.
    ///
    /// Returns `None` when the bias point is unreachable.
    pub fn noisy_two_port(&self, freq_hz: f64) -> Option<NoisyAbcd> {
        let op = self.operating_point()?;
        // Device small-signal model with the added source degeneration.
        let mut ss = self.device.small_signal(&op);
        ss.extrinsic.ls += self.vars.ls_deg;
        let core = ss.noisy_two_port(freq_hz, &self.device.noise.temperatures(op.ids));

        let t = T0_KELVIN;
        let c_blk = Capacitor::chip_0402(self.c_block).two_port(freq_hz, Orientation::Series, t);
        let l1 = Inductor::chip_0402(self.vars.l1).two_port(freq_hz, Orientation::Series, t);
        // Bias feed: R_bias in series with the choke, shunting the drain
        // to AC ground (the supply rail is bypassed).
        let z_feed =
            Complex::real(self.vars.r_bias) + Inductor::chip_0402(self.vars.l2).impedance(freq_hz);
        let l2 = NoisyAbcd::passive_shunt(z_feed.recip(), t);
        let c2 = Capacitor::chip_0402(self.vars.c2).two_port(freq_hz, Orientation::Series, t);

        Some(c_blk.cascade(&l1).cascade(&core).cascade(&l2).cascade(&c2))
    }

    /// S-parameters of the full amplifier at `freq_hz`, 50 Ω reference.
    pub fn s_params(&self, freq_hz: f64) -> Option<SParams> {
        self.noisy_two_port(freq_hz)?.abcd.to_s(50.0).ok()
    }

    /// Swept response over a frequency grid, with noise parameters at
    /// every point — ready for Touchstone export or group-delay analysis.
    ///
    /// The per-frequency solves run in parallel through `rfkit-par`
    /// (see [`rfkit_net::FrequencyResponse::from_fn_par`]); the response
    /// is assembled in grid order.
    ///
    /// Returns `None` when the bias is unreachable or any point fails.
    pub fn frequency_response(&self, freqs: &[f64]) -> Option<rfkit_net::FrequencyResponse> {
        rfkit_net::FrequencyResponse::from_fn_par(freqs, |f| {
            let noisy = self.noisy_two_port(f)?;
            let s = noisy.abcd.to_s(50.0).ok()?;
            let np = noisy.noise_params(50.0).ok()?;
            Some((s, Some(np)))
        })
    }

    /// All point metrics at `freq_hz`.
    pub fn metrics(&self, freq_hz: f64) -> Option<PointMetrics> {
        let noisy = self.noisy_two_port(freq_hz)?;
        let s = noisy.abcd.to_s(50.0).ok()?;
        let np = noisy.noise_params(50.0).ok()?;
        Some(PointMetrics {
            freq_hz,
            gain_db: 10.0
                * transducer_gain(&s, Complex::ZERO, Complex::ZERO)
                    .max(1e-30)
                    .log10(),
            nf_db: nf_db_from_factor(np.noise_factor(Complex::ZERO)),
            s11_db: db_from_amplitude_ratio(s.s11().abs()),
            s22_db: db_from_amplitude_ratio(s.s22().abs()),
            k: rollett_k(&s),
            mu: mu_load(&s).min(mu_source(&s)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reasonable_vars() -> DesignVariables {
        DesignVariables {
            vds: 3.0,
            ids: 0.050,
            l1: 6.8e-9,
            ls_deg: 0.4e-9,
            l2: 10e-9,
            c2: 2.2e-12,
            r_bias: 30.0,
        }
    }

    #[test]
    fn design_vector_roundtrip() {
        let v = reasonable_vars();
        let back = DesignVariables::from_vec(&v.to_vec());
        assert!((back.ids - v.ids).abs() < 1e-15);
        assert!((back.l1 - v.l1).abs() < 1e-22);
        assert!(DesignVariables::bounds().contains(&v.to_vec()));
    }

    #[test]
    fn amplifier_has_gain_at_gnss() {
        let d = Phemt::atf54143_like();
        let amp = Amplifier::new(&d, reasonable_vars());
        let m = amp.metrics(1.575e9).expect("valid bias");
        assert!(m.gain_db > 8.0, "gain = {} dB", m.gain_db);
        assert!(m.nf_db < 2.0, "NF = {} dB", m.nf_db);
        assert!(m.nf_db > 0.0);
    }

    #[test]
    fn matching_network_improves_input_match() {
        let d = Phemt::atf54143_like();
        // Bare device vs matched amplifier at 1.575 GHz.
        let vars = reasonable_vars();
        let amp = Amplifier::new(&d, vars);
        let op = amp.operating_point().unwrap();
        let bare = d.noisy_two_port(1.575e9, &op).abcd.to_s(50.0).unwrap();
        let matched = amp.s_params(1.575e9).unwrap();
        assert!(
            matched.s11().abs() < bare.s11().abs(),
            "matching must help: {} vs {}",
            matched.s11().abs(),
            bare.s11().abs()
        );
    }

    #[test]
    fn degeneration_improves_stability() {
        let d = Phemt::atf54143_like();
        let mut vars = reasonable_vars();
        vars.ls_deg = 0.0;
        let k_plain = Amplifier::new(&d, vars).metrics(1.575e9).unwrap().k;
        vars.ls_deg = 1.0e-9;
        let k_degen = Amplifier::new(&d, vars).metrics(1.575e9).unwrap().k;
        assert!(k_degen > k_plain, "{k_degen} vs {k_plain}");
    }

    #[test]
    fn unreachable_bias_returns_none() {
        let d = Phemt::atf54143_like();
        let mut vars = reasonable_vars();
        vars.ids = 5.0; // 5 A is far beyond the device
        assert!(Amplifier::new(&d, vars).metrics(1.5e9).is_none());
    }

    #[test]
    fn metrics_change_with_frequency() {
        let d = Phemt::atf54143_like();
        let amp = Amplifier::new(&d, reasonable_vars());
        let low = amp.metrics(1.1e9).unwrap();
        let high = amp.metrics(1.7e9).unwrap();
        assert!(
            (low.gain_db - high.gain_db).abs() > 0.1,
            "frequency matters"
        );
    }

    #[test]
    fn frequency_response_carries_noise_and_group_delay() {
        let d = Phemt::atf54143_like();
        let amp = Amplifier::new(&d, reasonable_vars());
        let freqs = rfkit_num::linspace(1.1e9, 1.7e9, 13);
        let resp = amp.frequency_response(&freqs).expect("feasible design");
        assert_eq!(resp.len(), 13);
        // Noise data present everywhere and consistent with metrics().
        let max_nf = resp.max_nf_db().expect("noise data");
        let mut worst = f64::NEG_INFINITY;
        for &f in &freqs {
            worst = worst.max(amp.metrics(f).unwrap().nf_db);
        }
        assert!((max_nf - worst).abs() < 1e-9);
        // Group delay of an amplifier at L-band: a few hundred ps, and the
        // differential group delay across the GNSS band stays bounded
        // (GNSS receivers care about this figure).
        let dgd_ps = resp.differential_group_delay_s().unwrap() * 1e12;
        assert!(dgd_ps > 0.0 && dgd_ps < 500.0, "DGD = {dgd_ps} ps");
    }

    #[test]
    fn frequency_response_none_for_dead_bias() {
        let d = Phemt::atf54143_like();
        let mut vars = reasonable_vars();
        vars.ids = 3.0;
        assert!(Amplifier::new(&d, vars)
            .frequency_response(&[1.4e9])
            .is_none());
    }

    #[test]
    fn more_current_more_gain() {
        let d = Phemt::atf54143_like();
        let mut vars = reasonable_vars();
        vars.ids = 0.015;
        let g_low = Amplifier::new(&d, vars).metrics(1.575e9).unwrap().gain_db;
        vars.ids = 0.070;
        let g_high = Amplifier::new(&d, vars).metrics(1.575e9).unwrap().gain_db;
        assert!(g_high > g_low + 1.0, "{g_high} vs {g_low}");
    }
}
