//! Graceful-degradation blitz: injected point faults must isolate — a
//! band sweep with k bad points returns a flagged partial with exactly k
//! diagnostics, the memo cache never stores a degraded result, and the
//! yield Monte-Carlo excludes killed units without corrupting the
//! grading. Every armed section runs under `faults::scoped`, which
//! serializes fault tests and disarms on drop, so the post-guard
//! assertions are genuine recovery checks.
//!
//! Compiled only with `--features rfkit-faults`.
#![cfg(feature = "rfkit-faults")]

use lna::{
    yield_analysis, yield_analysis_robust, Amplifier, BandMetrics, BandOutcome, BandSpec,
    DegradePolicy, DesignCache, DesignVariables, YieldSpec,
};
use rfkit_device::Phemt;
use rfkit_robust::faults::{self, FaultKind, FaultPlan};

fn nominal() -> DesignVariables {
    DesignVariables {
        vds: 3.0,
        ids: 0.050,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    }
}

/// Kills `keys` on the band-point site: one in-band frequency and one
/// stability-grid frequency by default.
fn band_fault(band: &BandSpec, indices: &[usize]) -> FaultPlan {
    let keys: Vec<u64> = indices
        .iter()
        .map(|&i| band.combined_grid()[i].to_bits())
        .collect();
    FaultPlan::new().fail_keys("band.point", FaultKind::PointFailure, &keys)
}

#[test]
fn k_injected_points_degrade_with_exactly_k_diagnostics_at_any_thread_count() {
    // Thread-count flipping lives in this one test because RFKIT_THREADS
    // is process state; the scoped guard already serializes armed runs.
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let amp = Amplifier::new(&device, nominal());
    let policy = DegradePolicy::lenient(0.5);
    let bad = [1usize, 9]; // one in-band point, one stability point
    let run = || {
        let _g = faults::scoped(band_fault(&band, &bad));
        BandMetrics::evaluate_robust(&amp, &band, &policy)
    };

    std::env::set_var("RFKIT_THREADS", "1");
    let out_1 = run();
    std::env::set_var("RFKIT_THREADS", "4");
    let out_4 = run();
    std::env::remove_var("RFKIT_THREADS");

    assert_eq!(
        out_1, out_4,
        "degraded outcome differs across thread counts"
    );
    let BandOutcome::Degraded {
        metrics,
        diagnostics,
    } = out_1
    else {
        panic!("expected Degraded, got {out_1:?}");
    };
    assert_eq!(diagnostics.len(), bad.len(), "exactly k diagnostics");
    for (d, &i) in diagnostics.iter().zip(&bad) {
        assert_eq!(d.index, i);
        assert_eq!(d.at, band.combined_grid()[i]);
    }
    // The partial reduces over the surviving points: dropping a worst-case
    // candidate can only flatter the metrics, never invent a worse case.
    let full = BandMetrics::evaluate(&amp, &band).expect("healthy design");
    assert!(metrics.worst_nf_db <= full.worst_nf_db);
    assert!(metrics.min_gain_db >= full.min_gain_db);
    assert!(metrics.min_mu >= full.min_mu);
    // Recovery: with the guard dropped the sweep completes bit-identically.
    assert_eq!(
        BandMetrics::evaluate_robust(&amp, &band, &policy),
        BandOutcome::Complete(full)
    );
}

#[test]
fn strict_policy_fails_a_partial_instead_of_degrading() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let amp = Amplifier::new(&device, nominal());
    let _g = faults::scoped(band_fault(&band, &[0]));
    // Strict: one bad point voids the sweep (Failed, not Infeasible — the
    // bias is fine, this is transient trouble, and the diagnostics say so).
    match BandMetrics::evaluate_robust(&amp, &band, &DegradePolicy::strict()) {
        BandOutcome::Failed { diagnostics } => {
            assert_eq!(diagnostics.len(), 1);
            assert_eq!(diagnostics[0].index, 0);
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // The strict Option view agrees.
    assert_eq!(BandMetrics::evaluate(&amp, &band), None);
}

#[test]
fn all_points_killed_is_failed_not_infeasible() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let amp = Amplifier::new(&device, nominal());
    let _g = faults::scoped(FaultPlan::new().fail_all("band.point", FaultKind::PointFailure));
    // Every point dies, but the operating point is reachable: this is
    // transient, so even the most lenient policy reports Failed (no
    // surviving points to reduce), never Infeasible.
    match BandMetrics::evaluate_robust(&amp, &band, &DegradePolicy::lenient(1.0)) {
        BandOutcome::Failed { diagnostics } => {
            assert_eq!(diagnostics.len(), band.combined_grid().len());
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn cache_never_stores_a_transiently_faulted_result() {
    // The satellite regression: a transient fault during a cached
    // evaluation must leave NO entry behind — neither the degraded
    // partial nor a stale None — so the first query after the fault
    // clears computes and caches the correct value.
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let cache = DesignCache::new(16);
    let policy = DegradePolicy::lenient(0.5);
    {
        let _g = faults::scoped(band_fault(&band, &[1, 9]));
        let first = cache.evaluate_with(&device, nominal(), &band, &policy);
        assert!(matches!(first, BandOutcome::Degraded { .. }));
        assert_eq!(cache.len(), 0, "degraded result must not be cached");
        assert_eq!(cache.uncacheable(), 1);
        // A second query under the fault recomputes (miss, not hit).
        let second = cache.evaluate_with(&device, nominal(), &band, &policy);
        assert_eq!(first, second, "faulted recomputation is deterministic");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.uncacheable(), 2);
        // The strict Option view under the fault: Failed → None, also
        // uncached.
        assert_eq!(cache.evaluate(&device, nominal(), &band), None);
        assert_eq!(cache.len(), 0, "no stale None from a transient fault");
    }
    // Fault cleared: the correct value computes, caches, and serves hits.
    let amp = Amplifier::new(&device, nominal());
    let fresh = BandMetrics::evaluate(&amp, &band).expect("feasible");
    assert_eq!(cache.evaluate(&device, nominal(), &band), Some(fresh));
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.evaluate(&device, nominal(), &band), Some(fresh));
    assert_eq!(cache.hits(), 1, "post-recovery entry serves hits");
}

#[test]
fn yield_run_excludes_killed_units_and_flags_partials() {
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let spec = YieldSpec {
        max_nf_db: 2.0,
        min_gain_db: 5.0,
        max_s11_db: 0.0,
        require_stability: false,
    };
    let build = Default::default();
    let units = 12usize;
    let baseline = yield_analysis(&device, &nominal(), &spec, &band, units, &build, 3);
    assert_eq!(baseline.passing, units, "loose spec passes everything");

    let killed = [2u64, 5, 7];
    {
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "yield.unit",
            FaultKind::PointFailure,
            &killed,
        ));
        // A tolerant policy: 3/12 = 25 % failures allowed.
        let out = yield_analysis_robust(
            &device,
            &nominal(),
            &spec,
            &band,
            units,
            &build,
            3,
            &DegradePolicy::lenient(0.25),
        );
        assert_eq!(out.diagnostics.len(), killed.len());
        for (d, &u) in out.diagnostics.iter().zip(&killed) {
            assert_eq!(d.index, u as usize);
        }
        assert!(!out.degraded, "within the policy threshold");
        // Killed units vanish from the denominator and the grading:
        // everything that was graded still passes.
        assert_eq!(out.report.units, units - killed.len());
        assert_eq!(out.report.passing, units - killed.len());
        assert_eq!(out.report.yield_fraction(), 1.0);
        assert_eq!(
            out.report.failures, [0; 5],
            "killed units are not dead boards"
        );
        // A stricter policy flags the same run as degraded.
        let strict = yield_analysis_robust(
            &device,
            &nominal(),
            &spec,
            &band,
            units,
            &build,
            3,
            &DegradePolicy::lenient(0.1),
        );
        assert!(strict.degraded, "3/12 failures exceed a 10 % threshold");
        assert_eq!(strict.report, out.report, "grading is policy-independent");
    }
    // Recovery: the legacy entry point returns the bit-identical baseline.
    assert_eq!(
        yield_analysis(&device, &nominal(), &spec, &band, units, &build, 3),
        baseline
    );
}
