//! The memo cache must not bend the repo's determinism contract: with the
//! cache enabled and tracing armed, a candidate population evaluated at
//! `RFKIT_THREADS=1` and `RFKIT_THREADS=4` must produce bit-identical
//! objective vectors, which must in turn equal the uncached objectives.
//!
//! The thread-count comparison lives in one `#[test]` because
//! `RFKIT_THREADS` is process state and the harness runs tests
//! concurrently.

use lna::{
    band_objectives, cached_band_objectives, pareto_front_study, snap_to_catalog,
    study_screen_config, Amplifier, BandMetrics, BandSpec, DesignCache, DesignVariables,
    ParetoStudyConfig,
};
use rfkit_device::Phemt;
use rfkit_num::rng::Rng64;
use rfkit_par::par_map;

/// Seeded random candidates snapped to the catalog lattice, then
/// duplicated once — the duplication guarantees cache hits, the snapping
/// mirrors how real optimizer iterates collide.
fn snapped_candidates(n_distinct: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng64::new(0x5eed_cafe);
    let mut xs: Vec<Vec<f64>> = (0..n_distinct)
        .map(|_| {
            let vars = DesignVariables {
                vds: rng.uniform(2.0, 4.0),
                ids: rng.uniform(0.02, 0.08),
                l1: rng.uniform(3e-9, 12e-9),
                ls_deg: rng.uniform(0.1e-9, 0.8e-9),
                l2: rng.uniform(5e-9, 15e-9),
                c2: rng.uniform(1e-12, 4e-12),
                r_bias: rng.uniform(15.0, 60.0),
            };
            snap_to_catalog(vars).to_vec()
        })
        .collect();
    let dup = xs.clone();
    xs.extend(dup);
    xs
}

#[test]
fn cached_objectives_identical_at_1_and_4_threads() {
    // Arm tracing for the whole comparison: hit/miss counters and evict
    // events must stay write-only with respect to the numerics.
    let trace = std::env::temp_dir().join(format!(
        "rfkit_cache_determinism_trace_{}.jsonl",
        std::process::id()
    ));
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(trace.clone()),
        ..rfkit_obs::TraceConfig::default()
    });

    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let xs = snapped_candidates(12); // 24 evaluations, ≥12 cache hits serially

    let run = || {
        let cache = DesignCache::new(64);
        let obj = cached_band_objectives(&device, &band, &cache);
        let out: Vec<Vec<f64>> = par_map(&xs, |x| obj(x));
        // Snapshot while still under capacity: the export must be a pure
        // function of the evaluated point set, not of the racy insertion
        // order.
        let snap = cache.snapshot();
        (out, cache.hits(), cache.misses(), snap)
    };
    // Surrogate-armed Pareto study: warm a cache with a plain pass, then
    // screen from its snapshot — the full training-from-cache pipeline
    // must hold the bit-identity contract too.
    let study = || {
        let cache = DesignCache::with_default_capacity();
        let warm = ParetoStudyConfig {
            population: 12,
            generations: 2,
            seed: 3,
            initial: Vec::new(),
            surrogate: None,
        };
        let w = pareto_front_study(&device, &band, &warm, &cache);
        let screened_cfg = ParetoStudyConfig {
            population: 12,
            generations: 4,
            seed: 3,
            initial: w.front.iter().map(|i| i.x.clone()).collect(),
            surrogate: Some(study_screen_config(0xbeef)),
        };
        let s = pareto_front_study(&device, &band, &screened_cfg, &cache);
        (s.front, s.evaluations, s.screen_stats)
    };

    std::env::set_var("RFKIT_THREADS", "1");
    let (out_1, hits_1, misses_1, snap_1) = run();
    let (front_1, evals_1, stats_1) = study();
    std::env::set_var("RFKIT_THREADS", "4");
    let (out_4, hits_4, misses_4, snap_4) = run();
    let (front_4, evals_4, stats_4) = study();
    std::env::remove_var("RFKIT_THREADS");

    assert_eq!(
        snap_1, snap_4,
        "cache snapshot differs across thread counts"
    );
    assert_eq!(
        front_1, front_4,
        "surrogate-armed study front differs across thread counts"
    );
    assert_eq!(evals_1, evals_4);
    assert_eq!(
        stats_1, stats_4,
        "screen decisions differ across thread counts"
    );

    // Bit-identical across thread counts, and identical to the uncached
    // objective (the cache can only substitute a value for itself).
    assert_eq!(
        out_1, out_4,
        "cached objectives differ across thread counts"
    );
    let plain = band_objectives(&device, &band);
    let reference: Vec<Vec<f64>> = xs.iter().map(|x| plain(x)).collect();
    assert_eq!(out_1, reference, "cache changed objective values");

    // Serial run: every duplicate is a guaranteed hit. Parallel runs may
    // trade some hits for duplicated work (compute happens outside the
    // lock), but every lookup is still classified exactly once.
    assert!(
        hits_1 >= 12,
        "expected duplicate candidates to hit: {hits_1}"
    );
    assert_eq!(hits_1 + misses_1, xs.len() as u64);
    assert_eq!(hits_4 + misses_4, xs.len() as u64);

    // The failure-aware objective builder with nothing armed is the same
    // function: every sweep completes, values are bit-identical, and
    // nothing is classified uncacheable.
    let robust_cache = DesignCache::new(64);
    let policy = lna::DegradePolicy::strict();
    let robust_obj = lna::robust_band_objectives(&device, &band, &robust_cache, &policy);
    let robust_out: Vec<Vec<f64>> = xs.iter().map(|x| robust_obj(x)).collect();
    assert_eq!(out_1, robust_out, "robust objectives changed values");
    assert_eq!(robust_cache.uncacheable(), 0);

    rfkit_obs::flush();
    let meta = std::fs::metadata(&trace).expect("armed run wrote a trace");
    assert!(meta.len() > 0, "trace file is empty despite armed run");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn band_metrics_match_legacy_grid_construction() {
    // The cached-grid refactor (borrowed slices, reused combined buffer)
    // must leave every metric bit-identical to the old build-a-fresh-grid
    // evaluation, replicated inline here.
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let vars = DesignVariables {
        vds: 3.0,
        ids: 0.050,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let amp = Amplifier::new(&device, vars);
    let m = BandMetrics::evaluate(&amp, &band).expect("reference design feasible");

    let in_band = rfkit_num::linspace(band.f_lo(), band.f_hi(), band.n_points());
    let mut freqs = in_band.clone();
    freqs.extend_from_slice(BandSpec::stability_grid());
    let points: Vec<_> = freqs
        .iter()
        .map(|&f| amp.metrics(f).expect("feasible"))
        .collect();
    let mut worst_nf = f64::NEG_INFINITY;
    let mut min_gain = f64::INFINITY;
    let mut worst_s11 = f64::NEG_INFINITY;
    let mut worst_s22 = f64::NEG_INFINITY;
    for p in &points[..in_band.len()] {
        worst_nf = worst_nf.max(p.nf_db);
        min_gain = min_gain.min(p.gain_db);
        worst_s11 = worst_s11.max(p.s11_db);
        worst_s22 = worst_s22.max(p.s22_db);
    }
    let mut min_mu = f64::INFINITY;
    let mut min_k = f64::INFINITY;
    for p in &points[in_band.len()..] {
        min_mu = min_mu.min(p.mu);
        min_k = min_k.min(p.k);
    }

    // Exact bits, not tolerances: the noise figure and every other band
    // metric must be unchanged by the fast-path refactor.
    assert_eq!(m.worst_nf_db, worst_nf);
    assert_eq!(m.min_gain_db, min_gain);
    assert_eq!(m.worst_s11_db, worst_s11);
    assert_eq!(m.worst_s22_db, worst_s22);
    assert_eq!(m.min_mu, min_mu);
    assert_eq!(m.min_k, min_k);

    // And the memoized value is the same object's worth of bits again.
    let cache = DesignCache::new(4);
    assert_eq!(cache.evaluate(&device, vars, &band), Some(m));
    assert_eq!(cache.evaluate(&device, vars, &band), Some(m));
    assert_eq!(cache.hits(), 1);
}
