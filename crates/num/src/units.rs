//! Unit conversions and physical constants for RF work.
//!
//! Everything internal is SI (hertz, ohms, watts, kelvin); these helpers
//! convert at the presentation boundary (dB, dBm, noise figure ↔ noise
//! temperature).

/// Boltzmann constant in J/K.
pub const K_BOLTZMANN: f64 = 1.380_649e-23;

/// IEEE standard reference temperature for noise figure, in kelvin.
pub const T0_KELVIN: f64 = 290.0;

/// Speed of light in vacuum, m/s.
pub const C0: f64 = 299_792_458.0;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 1.256_637_061_27e-6;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_818_8e-12;

/// Converts a power ratio to decibels: `10·log10(ratio)`.
///
/// Non-positive ratios map to `-inf`, matching instrument behaviour for
/// underflowed power readings.
#[inline]
pub fn db_from_power_ratio(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts decibels to a power ratio.
#[inline]
pub fn power_ratio_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude (voltage) ratio to decibels: `20·log10(ratio)`.
#[inline]
pub fn db_from_amplitude_ratio(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Converts decibels to an amplitude ratio.
#[inline]
pub fn amplitude_ratio_from_db(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts watts to dBm.
#[inline]
pub fn dbm_from_watts(w: f64) -> f64 {
    db_from_power_ratio(w / 1e-3)
}

/// Converts dBm to watts.
#[inline]
pub fn watts_from_dbm(dbm: f64) -> f64 {
    1e-3 * power_ratio_from_db(dbm)
}

/// Noise figure in dB from a noise factor (linear).
#[inline]
pub fn nf_db_from_factor(factor: f64) -> f64 {
    db_from_power_ratio(factor)
}

/// Noise factor (linear) from a noise figure in dB.
#[inline]
pub fn factor_from_nf_db(nf_db: f64) -> f64 {
    power_ratio_from_db(nf_db)
}

/// Equivalent noise temperature (K) of a noise factor.
#[inline]
pub fn noise_temperature_from_factor(factor: f64) -> f64 {
    (factor - 1.0) * T0_KELVIN
}

/// Noise factor of an equivalent noise temperature (K).
#[inline]
pub fn factor_from_noise_temperature(t: f64) -> f64 {
    1.0 + t / T0_KELVIN
}

/// Free-space wavelength (m) at frequency `f_hz`.
#[inline]
pub fn wavelength(f_hz: f64) -> f64 {
    C0 / f_hz
}

/// Angular frequency ω = 2πf.
#[inline]
pub fn angular(f_hz: f64) -> f64 {
    2.0 * std::f64::consts::PI * f_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_power_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 20.0] {
            assert!((db_from_power_ratio(power_ratio_from_db(db)) - db).abs() < 1e-12);
        }
        assert_eq!(db_from_power_ratio(0.0), f64::NEG_INFINITY);
        assert_eq!(db_from_power_ratio(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn db_amplitude_roundtrip() {
        assert!((db_from_amplitude_ratio(10.0) - 20.0).abs() < 1e-12);
        assert!((amplitude_ratio_from_db(6.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn dbm_watts() {
        assert!((dbm_from_watts(1e-3) - 0.0).abs() < 1e-12);
        assert!((dbm_from_watts(1.0) - 30.0).abs() < 1e-12);
        assert!((watts_from_dbm(-30.0) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn noise_figure_temperature_relation() {
        // NF = 3.0103 dB ↔ factor 2 ↔ Te = 290 K
        let factor = factor_from_nf_db(10.0 * 2f64.log10());
        assert!((factor - 2.0).abs() < 1e-12);
        assert!((noise_temperature_from_factor(2.0) - 290.0).abs() < 1e-9);
        assert!((factor_from_noise_temperature(290.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wavelength_at_gps_l1() {
        let lambda = wavelength(1.57542e9);
        assert!((lambda - 0.1903).abs() < 1e-3);
    }

    #[test]
    fn angular_frequency() {
        assert!((angular(1.0) - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn kt_at_t0_is_minus_174_dbm_per_hz() {
        let kt = K_BOLTZMANN * T0_KELVIN;
        assert!((dbm_from_watts(kt) + 174.0).abs() < 0.05);
    }
}
