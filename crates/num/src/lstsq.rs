//! Normalized, ridge-regularized linear least squares.
//!
//! The design variables of the LNA flow span ~14 orders of magnitude
//! (bias voltages in volts next to capacitances in farads), so raw
//! normal equations `AᵀA c = AᵀY` on a polynomial basis are numerically
//! hopeless: the Gram matrix picks up entries from `Σ 1` down to
//! `Σ c⁴ ≈ 1e-46` and the LU factorization either reports a singular
//! pivot or returns garbage coefficients. This module provides the two
//! standard fixes, composed so callers get both by default:
//!
//! * [`Normalizer`] — a per-dimension affine map onto `[-1, 1]`, built
//!   either from observed samples or from known box bounds, applied
//!   before any basis expansion;
//! * [`ridge_solve`] — least squares through the normal equations with
//!   Tikhonov regularization `λ·s·I`, where `s` is the mean Gram
//!   diagonal so `λ` stays a dimensionless knob.
//!
//! [`crate::Polynomial::fit_scaled`] and the `rfkit-surrogate` response
//! surfaces are the consumers.

use crate::matrix::{MatrixError, RMatrix};

/// Per-dimension affine map of raw inputs onto the cube `[-1, 1]^d`.
///
/// Dimensions with zero observed span map to `0.0` instead of dividing
/// by zero, so degenerate training sets (a variable pinned by a
/// constraint) stay well-defined.
///
/// # Examples
///
/// ```
/// use rfkit_num::lstsq::Normalizer;
/// // Volts next to farads: raw values differ by 12 orders of magnitude.
/// let norm = Normalizer::from_bounds(&[1.5, 0.3e-12], &[4.0, 12.0e-12]);
/// let u = norm.normalize(&[1.5, 12.0e-12]);
/// assert!((u[0] + 1.0).abs() < 1e-12);
/// assert!((u[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    center: Vec<f64>,
    half_span: Vec<f64>,
}

impl Normalizer {
    /// Builds the map from explicit per-dimension box bounds.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn from_bounds(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound slices must match");
        assert!(!lo.is_empty(), "need at least one dimension");
        let center = lo.iter().zip(hi).map(|(&a, &b)| 0.5 * (a + b)).collect();
        let half_span = lo.iter().zip(hi).map(|(&a, &b)| 0.5 * (b - a)).collect();
        Normalizer { center, half_span }
    }

    /// Builds the map from the per-dimension min/max of observed samples.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or the rows have inconsistent lengths.
    pub fn from_samples(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "need at least one sample");
        let d = xs[0].len();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for x in xs {
            assert_eq!(x.len(), d, "sample rows must have equal length");
            for (k, &v) in x.iter().enumerate() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
        Normalizer::from_bounds(&lo, &hi)
    }

    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Maps a raw point into the normalized cube (allocating).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.normalize_into(x, &mut out);
        out
    }

    /// Maps a raw point into the normalized cube, writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differ from `self.dim()`.
    pub fn normalize_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        assert_eq!(out.len(), self.dim(), "output dimension mismatch");
        for (k, o) in out.iter_mut().enumerate() {
            let h = self.half_span[k];
            *o = if crate::is_exact_zero(h) {
                0.0
            } else {
                (x[k] - self.center[k]) / h
            };
        }
    }
}

/// Ridge-regularized least squares `min ‖A c − y‖² + λ·s·‖c‖²` for one or
/// more right-hand sides sharing the design matrix `A`.
///
/// The Gram matrix `AᵀA + λ·s·I` is formed and LU-factored once; each
/// column of `ys` costs only a pair of triangular solves. The scale
/// `s = trace(AᵀA)/m` makes `ridge` dimensionless: `1e-6` means "damp
/// singular directions a millionth of the typical basis energy".
///
/// # Errors
///
/// Returns [`MatrixError::Singular`] when the regularized Gram matrix is
/// still singular (only possible with `ridge == 0` and a rank-deficient
/// basis).
///
/// # Panics
///
/// Panics if `ys` is empty, any right-hand side length differs from
/// `a.rows()`, or `ridge` is negative.
///
/// # Examples
///
/// ```
/// use rfkit_num::RMatrix;
/// use rfkit_num::lstsq::ridge_solve;
/// // Overdetermined line fit: y = 1 + 2x at x = 0..4.
/// let a = RMatrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
/// let y: Vec<f64> = (0..5).map(|i| 1.0 + 2.0 * i as f64).collect();
/// let c = ridge_solve(&a, &[y], 0.0)?;
/// assert!((c[0][0] - 1.0).abs() < 1e-9);
/// assert!((c[0][1] - 2.0).abs() < 1e-9);
/// # Ok::<(), rfkit_num::MatrixError>(())
/// ```
pub fn ridge_solve(a: &RMatrix, ys: &[Vec<f64>], ridge: f64) -> Result<Vec<Vec<f64>>, MatrixError> {
    assert!(!ys.is_empty(), "need at least one right-hand side");
    assert!(ridge >= 0.0, "ridge weight must be non-negative");
    let (n, m) = (a.rows(), a.cols());
    for y in ys {
        assert_eq!(y.len(), n, "rhs length must match design-matrix rows");
    }
    let mut gram = RMatrix::zeros(m, m);
    for r in 0..n {
        let row = a.row(r);
        for i in 0..m {
            for j in 0..m {
                gram[(i, j)] += row[i] * row[j];
            }
        }
    }
    if ridge > 0.0 {
        let mut trace = 0.0;
        for i in 0..m {
            trace += gram[(i, i)];
        }
        let scale = if crate::is_exact_zero(trace) {
            1.0
        } else {
            trace / m as f64
        };
        for i in 0..m {
            gram[(i, i)] += ridge * scale;
        }
    }
    let lu = gram.lu()?;
    let mut out = Vec::with_capacity(ys.len());
    for y in ys {
        let mut aty = vec![0.0; m];
        for (r, &yr) in y.iter().enumerate() {
            let row = a.row(r);
            for (ci, rv) in aty.iter_mut().zip(row) {
                *ci += rv * yr;
            }
        }
        out.push(lu.solve(&aty));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cubic-in-two-variables basis row (10 terms).
    fn cubic_row(v: f64, c: f64) -> [f64; 10] {
        [
            1.0,
            v,
            c,
            v * v,
            v * c,
            c * c,
            v * v * v,
            v * v * c,
            v * c * c,
            c * c * c,
        ]
    }

    const TRUTH: [f64; 10] = [1.2, 0.3, 0.8, -0.1, 0.2, -0.4, 0.15, -0.25, 0.1, 0.3];

    fn truth_at(u: &[f64]) -> f64 {
        cubic_row(u[0], u[1])
            .iter()
            .zip(&TRUTH)
            .map(|(t, c)| t * c)
            .sum()
    }

    /// The conditioning regression this module exists for: a refinement
    /// study in a ±1% trust region around an operating point, with a
    /// bias voltage in volts next to a capacitance in farads. The raw
    /// normal equations see columns that are both graded by ~10^12 in
    /// scale and nearly collinear (uncentered narrow ranges), and lose
    /// seven orders of magnitude of accuracy; the normalized + ridge
    /// path reproduces the data to ~1e-9.
    #[test]
    fn volts_vs_farads_trust_region_conditioning() {
        let mut pts = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                pts.push(vec![3.0 + 0.01 * i as f64, (2.0 + 0.01 * j as f64) * 1e-12]);
            }
        }
        // Truth evaluated in normalized coordinates so both paths chase
        // the same well-scaled target values.
        let norm = Normalizer::from_samples(&pts);
        let y: Vec<f64> = pts.iter().map(|p| truth_at(&norm.normalize(p))).collect();

        // Raw path: basis expanded on the physical values.
        let raw = RMatrix::from_fn(pts.len(), 10, |i, j| cubic_row(pts[i][0], pts[i][1])[j]);
        let raw_worst = match ridge_solve(&raw, std::slice::from_ref(&y), 0.0) {
            Err(_) => f64::INFINITY, // singular pivot: also a valid failure
            Ok(c) => pts
                .iter()
                .zip(&y)
                .map(|(p, &yi)| {
                    let b = cubic_row(p[0], p[1]);
                    let pred: f64 = b.iter().zip(&c[0]).map(|(bi, ci)| bi * ci).sum();
                    (pred - yi).abs()
                })
                .fold(0.0_f64, f64::max),
        };
        assert!(
            raw_worst > 1e-4,
            "raw normal equations unexpectedly survived ill-conditioning ({raw_worst:.3e})"
        );

        // Normalized + ridge path: same data, same basis, scaled inputs.
        let scaled = RMatrix::from_fn(pts.len(), 10, |i, j| {
            let u = norm.normalize(&pts[i]);
            cubic_row(u[0], u[1])[j]
        });
        let c = ridge_solve(&scaled, std::slice::from_ref(&y), 1e-10).expect("normalized fit");
        let worst = pts
            .iter()
            .zip(&y)
            .map(|(p, &yi)| {
                let u = norm.normalize(p);
                let b = cubic_row(u[0], u[1]);
                let pred: f64 = b.iter().zip(&c[0]).map(|(bi, ci)| bi * ci).sum();
                (pred - yi).abs()
            })
            .fold(0.0_f64, f64::max);
        assert!(worst < 1e-6, "normalized fit residual {worst:.3e}");
    }

    #[test]
    fn shared_factorization_matches_per_rhs_solves() {
        let a = RMatrix::from_fn(8, 3, |i, j| ((i + 1) as f64).powi(j as i32));
        let y1: Vec<f64> = (0..8).map(|i| 2.0 + 0.5 * i as f64).collect();
        let y2: Vec<f64> = (0..8).map(|i| -1.0 + 0.25 * (i * i) as f64).collect();
        let joint = ridge_solve(&a, &[y1.clone(), y2.clone()], 1e-9).unwrap();
        let solo1 = ridge_solve(&a, &[y1], 1e-9).unwrap();
        let solo2 = ridge_solve(&a, &[y2], 1e-9).unwrap();
        assert_eq!(joint[0], solo1[0]);
        assert_eq!(joint[1], solo2[0]);
    }

    #[test]
    fn ridge_shrinks_rank_deficient_fit_instead_of_failing() {
        // Two identical columns: rank deficient, singular at ridge = 0.
        let a = RMatrix::from_fn(4, 2, |i, _| i as f64 + 1.0);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!(ridge_solve(&a, std::slice::from_ref(&y), 0.0).is_err());
        let c = ridge_solve(&a, &[y], 1e-6).expect("ridge regularizes");
        // Symmetry: the two indistinguishable columns share the weight.
        assert!((c[0][0] - c[0][1]).abs() < 1e-9);
    }

    #[test]
    fn normalizer_degenerate_dimension_maps_to_zero() {
        let norm = Normalizer::from_samples(&[vec![3.0, 1.0], vec![3.0, 2.0]]);
        let u = norm.normalize(&[3.0, 1.5]);
        assert!(crate::is_exact_zero(u[0]));
        assert!(crate::is_exact_zero(u[1]));
    }
}
