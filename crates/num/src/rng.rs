//! Seeded pseudo-random numbers without external dependencies.
//!
//! The workspace must build in offline environments, so the `rand` crate is
//! replaced by this module: a [`SplitMix64`] stream (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) seeding a
//! xoshiro256++ generator (Blackman & Vigna 2019). Both are tiny, fast,
//! pass BigCrush-scale batteries and — critically for the reproduction —
//! are *fully specified*, so a fixed seed yields bit-identical streams on
//! every platform and toolchain.
//!
//! All optimizer, measurement-noise and Monte-Carlo draws in the workspace
//! flow through [`Rng64`]; the parallel evaluation engine (`rfkit-par`)
//! never touches an RNG, which is what makes fixed-seed runs reproducible
//! at any thread count.

/// The SplitMix64 stream: the standard seeding primitive.
///
/// # Examples
///
/// ```
/// use rfkit_num::rng::SplitMix64;
/// let mut s = SplitMix64::new(0);
/// // First output of the reference implementation for seed 0.
/// assert_eq!(s.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace's general-purpose seeded generator: xoshiro256++ seeded
/// via SplitMix64.
///
/// # Examples
///
/// ```
/// use rfkit_num::rng::Rng64;
/// let mut rng = Rng64::new(42);
/// let x = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// let mut again = Rng64::new(42);
/// assert_eq!(again.uniform(0.0, 1.0), x); // fixed seed → fixed stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must satisfy lo < hi: [{lo}, {hi})");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "uniform bounds must be finite"
        );
        let v = lo + (hi - lo) * self.next_f64();
        // Floating rounding can land exactly on hi for tiny ranges; fold it
        // back so the half-open contract holds.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform index in `0..n` (Lemire's widening-multiply rejection
    /// method: unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Standard normal draw (Marsaglia polar method).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs from the public-domain C implementation.
        let mut s = SplitMix64::new(1234567);
        assert_eq!(s.next_u64(), 6457827717110365317);
        assert_eq!(s.next_u64(), 3203168211198807973);
    }

    #[test]
    fn fixed_seed_reproduces_stream() {
        let mut a = Rng64::new(0xdead_beef);
        let mut b = Rng64::new(0xdead_beef);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_stays_in_half_open_range() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let v = rng.uniform(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Rng64::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn index_covers_all_values_without_bias() {
        let mut rng = Rng64::new(3);
        let mut counts = [0usize; 5];
        let draws = 50_000;
        for _ in 0..draws {
            counts[rng.index(5)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let frac = c as f64 / draws as f64;
            assert!((frac - 0.2).abs() < 0.02, "bucket {k}: {frac}");
        }
    }

    #[test]
    fn chance_edge_cases_and_rate() {
        let mut rng = Rng64::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(13);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_empty_range() {
        Rng64::new(0).uniform(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_rejects_zero() {
        Rng64::new(0).index(0);
    }
}
