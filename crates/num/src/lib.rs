//! # rfkit-num
//!
//! Numerics substrate for the rfkit RF design suite: complex arithmetic,
//! dense real/complex linear algebra with LU factorization, a radix-2 FFT,
//! polynomial fitting, 1-D interpolation, statistics, finite-difference
//! derivatives and RF unit conversions.
//!
//! Everything is written from scratch on top of `std` so the rest of the
//! suite has a single, well-tested numerical foundation.
//!
//! ## Example
//!
//! ```
//! use rfkit_num::{Complex, CMatrix};
//!
//! // Solve a small complex system, the core operation of AC circuit analysis.
//! let a = CMatrix::from_rows(&[
//!     &[Complex::new(2.0, 1.0), Complex::new(0.0, -1.0)],
//!     &[Complex::new(1.0, 0.0), Complex::new(3.0, 2.0)],
//! ]);
//! let b = [Complex::ONE, Complex::I];
//! let x = a.solve(&b)?;
//! let r = a.matvec(&x);
//! assert!((r[0] - b[0]).abs() < 1e-12);
//! # Ok::<(), rfkit_num::MatrixError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod banded;
mod complex;
pub mod diff;
pub mod fft;
pub mod interp;
pub mod lstsq;
mod matrix;
#[cfg(feature = "numsan")]
pub mod numsan;
mod poly;
pub mod rng;
pub mod sketch;
pub mod soa;
pub mod stats;
pub mod units;

pub use banded::{BandedError, BandedLu, BorderedLu};
pub use complex::Complex;
pub use lstsq::{ridge_solve, Normalizer};
pub use matrix::{CMatrix, Lu, LuWorkspace, Matrix, MatrixError, RMatrix, Scalar};
pub use poly::{line_intersection, Polynomial};
pub use sketch::QuantileSketch;

/// Total-order comparator for `f64`, for use as a sort/search comparator.
///
/// Wraps [`f64::total_cmp`]: every pair of values — including NaNs and
/// signed zeros — has a defined, deterministic ordering (−NaN < −∞ < … <
/// −0.0 < +0.0 < … < +∞ < +NaN), so `sort_by(total_cmp_f64)` can never
/// panic or produce an ordering that depends on input permutation the way
/// `partial_cmp().unwrap()` does. This is the comparator the
/// `nan-unsafe-sort` lint in `rfkit-analyze` asks for.
///
/// # Examples
///
/// ```
/// let mut v = vec![3.0, f64::NAN, 1.0];
/// v.sort_by(rfkit_num::total_cmp_f64);
/// assert_eq!(v[0], 1.0);
/// assert_eq!(v[1], 3.0);
/// assert!(v[2].is_nan()); // NaN sorts last, deterministically
/// ```
#[inline]
pub fn total_cmp_f64(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// True iff `x` is exactly `+0.0` or `-0.0`, tested at the bit level.
///
/// Use this instead of `x == 0.0` for intentional exact-zero guards
/// (singular pivots, open-circuit branches): it states the intent, never
/// matches NaN, and keeps the `float-eq` lint quiet without a suppression.
///
/// # Examples
///
/// ```
/// assert!(rfkit_num::is_exact_zero(0.0));
/// assert!(rfkit_num::is_exact_zero(-0.0));
/// assert!(!rfkit_num::is_exact_zero(f64::MIN_POSITIVE));
/// assert!(!rfkit_num::is_exact_zero(f64::NAN));
/// ```
#[inline]
pub fn is_exact_zero(x: f64) -> bool {
    x.abs().to_bits() == 0
}

/// Linearly spaced grid of `n` points from `start` to `stop` inclusive.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let g = rfkit_num::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace requires at least one point");
    if n == 1 {
        return vec![start];
    }
    let step = (stop - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// Logarithmically spaced grid of `n` points from `start` to `stop`
/// inclusive (both must be positive).
///
/// # Panics
///
/// Panics if `n == 0` or either bound is non-positive.
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace bounds must be positive"
    );
    linspace(start.ln(), stop.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(1.0, 2.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 1.0);
        assert_eq!(g[10], 2.0);
        assert!((g[1] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1.0, 100.0, 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logspace_rejects_zero() {
        logspace(0.0, 1.0, 3);
    }

    #[test]
    fn total_cmp_orders_nan_and_zeros_deterministically() {
        let mut v = [f64::NAN, 1.0, -f64::INFINITY, 0.0, -0.0, -1.0];
        v.sort_by(total_cmp_f64);
        assert_eq!(v[0], -f64::INFINITY);
        assert_eq!(v[1], -1.0);
        assert!(v[2].is_sign_negative() && is_exact_zero(v[2])); // -0.0 before +0.0
        assert!(v[3].is_sign_positive() && is_exact_zero(v[3]));
        assert_eq!(v[4], 1.0);
        assert!(v[5].is_nan());
    }

    #[test]
    fn exact_zero_is_bitwise() {
        assert!(is_exact_zero(0.0));
        assert!(is_exact_zero(-0.0));
        assert!(!is_exact_zero(5e-324)); // smallest subnormal
        assert!(!is_exact_zero(f64::NAN));
        assert!(!is_exact_zero(f64::INFINITY));
    }
}
