//! # rfkit-num
//!
//! Numerics substrate for the rfkit RF design suite: complex arithmetic,
//! dense real/complex linear algebra with LU factorization, a radix-2 FFT,
//! polynomial fitting, 1-D interpolation, statistics, finite-difference
//! derivatives and RF unit conversions.
//!
//! Everything is written from scratch on top of `std` so the rest of the
//! suite has a single, well-tested numerical foundation.
//!
//! ## Example
//!
//! ```
//! use rfkit_num::{Complex, CMatrix};
//!
//! // Solve a small complex system, the core operation of AC circuit analysis.
//! let a = CMatrix::from_rows(&[
//!     &[Complex::new(2.0, 1.0), Complex::new(0.0, -1.0)],
//!     &[Complex::new(1.0, 0.0), Complex::new(3.0, 2.0)],
//! ]);
//! let b = [Complex::ONE, Complex::I];
//! let x = a.solve(&b)?;
//! let r = a.matvec(&x);
//! assert!((r[0] - b[0]).abs() < 1e-12);
//! # Ok::<(), rfkit_num::MatrixError>(())
//! ```

#![warn(missing_docs)]

mod complex;
pub mod diff;
pub mod fft;
pub mod interp;
mod matrix;
mod poly;
pub mod rng;
pub mod stats;
pub mod units;

pub use complex::Complex;
pub use matrix::{CMatrix, Lu, Matrix, MatrixError, RMatrix, Scalar};
pub use poly::{line_intersection, Polynomial};

/// Linearly spaced grid of `n` points from `start` to `stop` inclusive.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let g = rfkit_num::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace requires at least one point");
    if n == 1 {
        return vec![start];
    }
    let step = (stop - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// Logarithmically spaced grid of `n` points from `start` to `stop`
/// inclusive (both must be positive).
///
/// # Panics
///
/// Panics if `n == 0` or either bound is non-positive.
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace bounds must be positive"
    );
    linspace(start.ln(), stop.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(1.0, 2.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 1.0);
        assert_eq!(g[10], 2.0);
        assert!((g[1] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1.0, 100.0, 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logspace_rejects_zero() {
        logspace(0.0, 1.0, 3);
    }
}
