//! Structure-aware LU kernels: banded factorization and bordered-block
//! Schur solves.
//!
//! MNA matrices of ladder-style RF networks are nearly tridiagonal once
//! the nodes are ordered along the signal path, and multi-stage
//! amplifiers add only a handful of "hub" rows (shared bias rails,
//! splitter junctions) that break the band. Dense LU treats both as a
//! full `O(n³)` problem; the kernels here solve them in `O(n·b²)`:
//!
//! * [`BandedLu`] — LU of a matrix with lower/upper bandwidth `(bl, bu)`
//!   in LAPACK-style band storage, factored **without pivoting** under an
//!   explicit multiplier-growth guard. Row swaps would widen the band, so
//!   instead of pivoting the factorization *rejects* any column whose
//!   elimination multiplier exceeds [`GROWTH_LIMIT`] and the caller falls
//!   back to dense pivoted LU. Diagonally-dominant-ish MNA matrices
//!   essentially never trip the guard; pathological ones stay correct at
//!   dense-path cost.
//! * [`BorderedLu`] — block solve of `[[B, C], [D, E]]` where `B` is
//!   banded and the border (`C`/`D`/`E`) has a small rank `k`: factor `B`
//!   banded, form the `k×k` Schur complement `S = E − D·B⁻¹·C` and factor
//!   it densely (with pivoting — it is tiny), then back-substitute. Cost
//!   is `O(n·b² + n·b·k + k³)` per factorization.
//!
//! Neither kernel is bit-identical to dense pivoted LU (the elimination
//! order differs); callers that advertise equivalence against the dense
//! path own the documented tolerance contract (see
//! `rfkit-circuit::sweep`). Both kernels are allocation-free after the
//! first factorization at a given shape: all storage lives in the
//! workspace structs and is reused across refactorizations.

use crate::matrix::{LuWorkspace, Matrix, MatrixError, Scalar};

/// Largest elimination multiplier the unpivoted banded factorization
/// accepts. With partial pivoting every multiplier is ≤ 1; a fixed
/// elimination order can exceed that, and bounded multipliers bound the
/// element growth (and therefore the backward error) of the
/// factorization.
///
/// The budget: one multiplier of magnitude `L` amplifies local roundoff
/// by ~`L`, and `k` consecutive oversized multipliers along one band
/// column compound to ~`Lᵏ`. At `L = 256`, even three consecutive
/// guard-limit multipliers give `256³·ε ≈ 3e-9` relative error — inside
/// the `1e-8` sweep tolerance contract — and reactive MNA matrices hit
/// oversized multipliers only at isolated node resonances, not in runs.
/// Anything beyond the guard falls back to fully pivoted dense LU.
pub const GROWTH_LIMIT: f64 = 256.0;

const GROWTH_LIMIT_SQ: f64 = GROWTH_LIMIT * GROWTH_LIMIT;

/// Why a structure-aware factorization was rejected. Either way the
/// caller should fall back to dense pivoted LU, which will separate a
/// genuinely singular system from one that merely needs pivoting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandedError {
    /// A pivot was exactly zero at the given elimination step.
    ZeroPivot(usize),
    /// An elimination multiplier exceeded [`GROWTH_LIMIT`] at the given
    /// step; the fixed elimination order is not numerically safe here.
    GrowthExceeded(usize),
}

impl std::fmt::Display for BandedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandedError::ZeroPivot(k) => write!(f, "zero pivot at banded elimination step {k}"),
            BandedError::GrowthExceeded(k) => {
                write!(f, "multiplier growth beyond {GROWTH_LIMIT} at step {k}")
            }
        }
    }
}

impl std::error::Error for BandedError {}

/// Banded LU workspace: band storage plus the factored state.
///
/// Storage is row-major with `bl + bu + 1` slots per row; entry `(i, j)`
/// lives at `row i, slot j - i + bl` for `|i - j|` inside the band.
/// Loading, factoring and solving all reuse the same allocation across
/// shape changes whenever capacity allows.
#[derive(Debug, Clone, Default)]
pub struct BandedLu<T: Scalar> {
    n: usize,
    bl: usize,
    bu: usize,
    data: Vec<T>,
    factored: bool,
}

impl<T: Scalar> BandedLu<T> {
    /// Creates an empty workspace; buffers grow on first load.
    pub fn new() -> Self {
        BandedLu {
            n: 0,
            bl: 0,
            bu: 0,
            data: Vec::new(),
            factored: false,
        }
    }

    /// Matrix dimension of the current load.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `(lower, upper)` bandwidth of the current load.
    pub fn bandwidths(&self) -> (usize, usize) {
        (self.bl, self.bu)
    }

    #[inline]
    fn width(&self) -> usize {
        self.bl + self.bu + 1
    }

    #[inline]
    fn slot(&self, i: usize, j: usize) -> usize {
        i * self.width() + (j + self.bl - i)
    }

    /// Loads an `n × n` matrix with bandwidths `(bl, bu)` from `get(i, j)`
    /// (called only inside the band), zeroing any stale contents. The
    /// previous factorization is discarded.
    pub fn load(&mut self, n: usize, bl: usize, bu: usize, mut get: impl FnMut(usize, usize) -> T) {
        self.n = n;
        self.bl = bl.min(n.saturating_sub(1));
        self.bu = bu.min(n.saturating_sub(1));
        self.factored = false;
        let width = self.width();
        let bl = self.bl;
        self.data.clear();
        self.data.resize(n * width, T::ZERO);
        for i in 0..n {
            let lo = i.saturating_sub(self.bl);
            let hi = (i + self.bu).min(n.saturating_sub(1));
            for j in lo..=hi {
                self.data[i * width + (j + bl - i)] = get(i, j);
            }
        }
    }

    /// Factors the loaded band in place without pivoting, guarding every
    /// elimination multiplier against [`GROWTH_LIMIT`].
    ///
    /// # Errors
    ///
    /// [`BandedError::ZeroPivot`] on an exactly-zero pivot,
    /// [`BandedError::GrowthExceeded`] when a multiplier leaves the safe
    /// range (including non-finite pivots). On `Err` the load is consumed;
    /// reload before retrying.
    pub fn factor(&mut self) -> Result<(), BandedError> {
        let n = self.n;
        let width = self.width();
        let bl = self.bl;
        let idx = |i: usize, j: usize| i * width + (j + bl - i);
        for k in 0..n {
            let pivot = self.data[idx(k, k)];
            if pivot == T::ZERO {
                self.factored = false;
                return Err(BandedError::ZeroPivot(k));
            }
            let hi_row = (k + self.bl).min(n.saturating_sub(1));
            let hi_col = (k + self.bu).min(n.saturating_sub(1));
            for i in (k + 1)..=hi_row {
                let factor = self.data[idx(i, k)] / pivot;
                let growth = factor.modulus_sq();
                // NaN growth (non-finite pivot ratio) must also trip.
                if growth > GROWTH_LIMIT_SQ || growth.is_nan() {
                    self.factored = false;
                    return Err(BandedError::GrowthExceeded(k));
                }
                self.data[idx(i, k)] = factor;
                for j in (k + 1)..=hi_col {
                    let u = self.data[idx(k, j)];
                    let x = self.data[idx(i, j)];
                    self.data[idx(i, j)] = x - factor * u;
                }
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` in place against the banded factorization.
    ///
    /// # Panics
    ///
    /// Panics if the band has not been successfully factored or
    /// `x.len() != n`.
    pub fn solve_in_place(&self, x: &mut [T]) {
        assert!(self.factored, "banded solve before a successful factor");
        assert_eq!(x.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Forward substitution with the unit-lower band.
        for i in 0..n {
            let lo = i.saturating_sub(self.bl);
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i).skip(lo) {
                acc = acc - self.data[self.slot(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution with the upper band.
        for i in (0..n).rev() {
            let hi = (i + self.bu).min(n.saturating_sub(1));
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(hi + 1).skip(i + 1) {
                acc = acc - self.data[self.slot(i, j)] * xj;
            }
            x[i] = acc / self.data[self.slot(i, i)];
        }
    }
}

/// Bordered-block Schur workspace: `[[B, C], [D, E]]` with `B` banded
/// (`nb × nb`) and a dense border of rank `k`.
///
/// Load order is [`BorderedLu::begin`], the four block loaders (any
/// order), then [`BorderedLu::factor`] and [`BorderedLu::solve_in_place`]
/// on vectors laid out as `[band part (nb) | border part (k)]`.
#[derive(Debug, Clone, Default)]
pub struct BorderedLu<T: Scalar> {
    nb: usize,
    k: usize,
    band: BandedLu<T>,
    /// `nb × k` coupling block `C`.
    c: Matrix<T>,
    /// `k × nb` coupling block `D`.
    d: Matrix<T>,
    /// `k × k` corner `E`, later overwritten by the Schur complement.
    schur: Matrix<T>,
    /// `B⁻¹·C`, column-solved through the banded factor.
    w: Matrix<T>,
    schur_lu: LuWorkspace<T>,
    col: Vec<T>,
    col2: Vec<T>,
    factored: bool,
}

impl<T: Scalar> BorderedLu<T> {
    /// Creates an empty workspace; buffers grow on first load.
    pub fn new() -> Self {
        BorderedLu::default()
    }

    /// Dimension of the full system (`nb + k`).
    pub fn dim(&self) -> usize {
        self.nb + self.k
    }

    /// Border rank `k`.
    pub fn border(&self) -> usize {
        self.k
    }

    /// Starts a load: `nb` banded rows with bandwidths `(bl, bu)`, plus a
    /// `k`-row border. `get` supplies entries of the **full** `(nb+k)²`
    /// matrix in bordered order (band rows first, border rows last); only
    /// the in-band and border slots are read.
    pub fn load(
        &mut self,
        nb: usize,
        k: usize,
        bl: usize,
        bu: usize,
        mut get: impl FnMut(usize, usize) -> T,
    ) {
        self.nb = nb;
        self.k = k;
        self.factored = false;
        self.band.load(nb, bl, bu, &mut get);
        self.c.reset(nb, k);
        for i in 0..nb {
            for j in 0..k {
                self.c[(i, j)] = get(i, nb + j);
            }
        }
        self.d.reset(k, nb);
        self.schur.reset(k, k);
        for i in 0..k {
            for j in 0..nb {
                self.d[(i, j)] = get(nb + i, j);
            }
            for j in 0..k {
                self.schur[(i, j)] = get(nb + i, nb + j);
            }
        }
    }

    /// Factors the bordered system: banded LU of `B`, then the dense
    /// (pivoted) LU of the Schur complement `S = E − D·B⁻¹·C`.
    ///
    /// # Errors
    ///
    /// Propagates [`BandedError`] from the band; a singular Schur
    /// complement surfaces as [`BandedError::ZeroPivot`] with step
    /// `nb + pivot`.
    pub fn factor(&mut self) -> Result<(), BandedError> {
        self.band.factor()?;
        // W = B⁻¹ C, one banded solve per border column.
        self.w.reset(self.nb, self.k);
        for j in 0..self.k {
            self.col.clear();
            self.col.extend((0..self.nb).map(|i| self.c[(i, j)]));
            self.band.solve_in_place(&mut self.col);
            for (i, &v) in self.col.iter().enumerate() {
                self.w[(i, j)] = v;
            }
        }
        // S = E − D·W, formed in place on the stored corner.
        for i in 0..self.k {
            for j in 0..self.k {
                let mut acc = T::ZERO;
                for l in 0..self.nb {
                    acc = acc + self.d[(i, l)] * self.w[(l, j)];
                }
                self.schur[(i, j)] = self.schur[(i, j)] - acc;
            }
        }
        match self.schur.lu_into(&mut self.schur_lu) {
            Ok(()) => {
                self.factored = true;
                Ok(())
            }
            Err(MatrixError::Singular { pivot }) => Err(BandedError::ZeroPivot(self.nb + pivot)),
            Err(_) => unreachable!("schur block is square by construction"),
        }
    }

    /// Solves `A x = b` in place; `x` is `[band rows | border rows]`.
    ///
    /// # Panics
    ///
    /// Panics if the system has not been successfully factored or
    /// `x.len() != nb + k`.
    pub fn solve_in_place(&mut self, x: &mut [T]) {
        assert!(self.factored, "bordered solve before a successful factor");
        assert_eq!(x.len(), self.nb + self.k, "rhs length mismatch");
        let (f, g) = x.split_at_mut(self.nb);
        // y = B⁻¹ f.
        self.band.solve_in_place(f);
        // g ← g − D·y, then solve the border through the Schur factor.
        for (i, g_i) in g.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (l, &f_l) in f.iter().enumerate() {
                acc = acc + self.d[(i, l)] * f_l;
            }
            *g_i = *g_i - acc;
        }
        self.col.clear();
        self.col.extend_from_slice(g);
        self.schur_lu.solve_into(&self.col, &mut self.col2);
        // x₁ = y − W·x₂.
        for (i, f_i) in f.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (j, b_j) in self.col2.iter().enumerate() {
                acc = acc + self.w[(i, j)] * *b_j;
            }
            *f_i = *f_i - acc;
        }
        g.copy_from_slice(&self.col2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::matrix::CMatrix;
    use crate::rng::Rng64;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Random diagonally-dominant banded complex matrix.
    fn random_banded(rng: &mut Rng64, n: usize, bl: usize, bu: usize) -> CMatrix {
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(bl);
            let hi = (i + bu).min(n - 1);
            let mut row_sum = 0.0;
            for j in lo..=hi {
                if i != j {
                    let v = cx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            // Dominant diagonal keeps the unpivoted factorization stable.
            a[(i, i)] = cx(row_sum + rng.uniform(0.5, 2.0), rng.uniform(-0.5, 0.5));
        }
        a
    }

    fn max_abs_diff(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn banded_matches_dense_solve() {
        let mut rng = Rng64::new(0x00ba_9ded);
        for &(n, bl, bu) in &[(1usize, 0usize, 0usize), (5, 1, 1), (12, 2, 1), (30, 3, 3)] {
            let a = random_banded(&mut rng, n, bl, bu);
            let b: Vec<Complex> = (0..n)
                .map(|_| cx(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)))
                .collect();
            let dense = a.solve(&b).unwrap();
            let mut band = BandedLu::new();
            band.load(n, bl, bu, |i, j| a[(i, j)]);
            band.factor().unwrap();
            let mut x = b.clone();
            band.solve_in_place(&mut x);
            assert!(
                max_abs_diff(&dense, &x) < 1e-10,
                "n={n} bl={bl} bu={bu}: diff {}",
                max_abs_diff(&dense, &x)
            );
        }
    }

    #[test]
    fn banded_reload_reuses_allocation() {
        let mut rng = Rng64::new(7);
        let a = random_banded(&mut rng, 20, 2, 2);
        let mut band = BandedLu::new();
        band.load(20, 2, 2, |i, j| a[(i, j)]);
        band.factor().unwrap();
        let cap = band.data.capacity();
        for _ in 0..3 {
            band.load(20, 2, 2, |i, j| a[(i, j)]);
            band.factor().unwrap();
        }
        assert_eq!(band.data.capacity(), cap);
        assert_eq!(band.dim(), 20);
        assert_eq!(band.bandwidths(), (2, 2));
    }

    #[test]
    fn zero_pivot_is_rejected() {
        let mut band = BandedLu::new();
        // Leading zero with no pivoting available: must refuse, not NaN.
        let a = CMatrix::from_rows(&[&[cx(0.0, 0.0), cx(1.0, 0.0)], &[cx(1.0, 0.0), cx(1.0, 0.0)]]);
        band.load(2, 1, 1, |i, j| a[(i, j)]);
        assert_eq!(band.factor(), Err(BandedError::ZeroPivot(0)));
    }

    #[test]
    fn growth_guard_trips_on_tiny_pivot() {
        let mut band = BandedLu::new();
        // Pivot 1e-9 against a unit subdiagonal: multiplier 1e9 ≫ limit.
        let a = CMatrix::from_rows(&[
            &[cx(1e-9, 0.0), cx(1.0, 0.0)],
            &[cx(1.0, 0.0), cx(1.0, 0.0)],
        ]);
        band.load(2, 1, 1, |i, j| a[(i, j)]);
        assert_eq!(band.factor(), Err(BandedError::GrowthExceeded(0)));
        let e = BandedError::GrowthExceeded(0).to_string();
        assert!(e.contains("growth"), "{e}");
    }

    #[test]
    fn bordered_matches_dense_solve() {
        let mut rng = Rng64::new(0xb0d3);
        for &(nb, k, bw) in &[(8usize, 1usize, 1usize), (20, 2, 2), (40, 3, 2)] {
            let n = nb + k;
            let mut a = CMatrix::zeros(n, n);
            let band_part = random_banded(&mut rng, nb, bw, bw);
            for i in 0..nb {
                for j in 0..nb {
                    a[(i, j)] = band_part[(i, j)];
                }
            }
            for i in 0..n {
                for j in nb..n {
                    if i != j {
                        a[(i, j)] = cx(rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5));
                        a[(j, i)] = cx(rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5));
                    }
                }
            }
            for j in nb..n {
                a[(j, j)] = cx(rng.uniform(4.0, 8.0), rng.uniform(-1.0, 1.0));
            }
            let b: Vec<Complex> = (0..n)
                .map(|_| cx(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)))
                .collect();
            let dense = a.solve(&b).unwrap();
            let mut bord = BorderedLu::new();
            bord.load(nb, k, bw, bw, |i, j| a[(i, j)]);
            bord.factor().unwrap();
            let mut x = b.clone();
            bord.solve_in_place(&mut x);
            assert!(
                max_abs_diff(&dense, &x) < 1e-9,
                "nb={nb} k={k}: diff {}",
                max_abs_diff(&dense, &x)
            );
        }
    }

    #[test]
    fn bordered_singular_schur_is_reported() {
        // B = I (2×2), border row/col arranged so S = E − D·B⁻¹·C = 0.
        let mut bord = BorderedLu::new();
        let a = CMatrix::from_rows(&[
            &[cx(1.0, 0.0), cx(0.0, 0.0), cx(1.0, 0.0)],
            &[cx(0.0, 0.0), cx(1.0, 0.0), cx(0.0, 0.0)],
            &[cx(1.0, 0.0), cx(0.0, 0.0), cx(1.0, 0.0)],
        ]);
        bord.load(2, 1, 0, 0, |i, j| a[(i, j)]);
        assert_eq!(bord.factor(), Err(BandedError::ZeroPivot(2)));
    }
}
