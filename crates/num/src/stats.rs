//! Small statistics helpers used by fitting, tolerance analysis and the
//! benchmark harness (medians across optimizer seeds, RMS errors, etc.).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square of the values. Returns 0 for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square error between two equally long sequences.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal lengths");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    rms(&diffs)
}

/// `p`-th percentile (0..=100) by linear interpolation between order
/// statistics. Returns NaN for an empty slice. NaN inputs sort after +∞
/// (total order), so they deterministically influence only the top
/// percentiles instead of panicking.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(crate::total_cmp_f64);
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Minimum of a slice, ignoring NaN. Returns +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice, ignoring NaN. Returns -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn rms_of_sine_samples() {
        let n = 1000;
        let xs: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        assert!((rms(&xs) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        let b = [2.0, 3.0, 4.0];
        assert!((rmse(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [3.0, 1.0, 2.0, 4.0]; // unsorted on purpose
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [f64::NAN, 2.0, -1.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 2.0);
    }
}
