//! Structure-of-arrays storage for complex grids.
//!
//! Batched AC sweeps produce one complex number per (frequency point,
//! matrix entry). Storing the grid as `Vec<Complex>` interleaves real
//! and imaginary parts; splitting them into two parallel `f64` buffers
//! keeps each stream contiguous, which is what the auto-vectorizer
//! wants for the component-wise inner loops of the sweep engine, and is
//! the layout the batched engine hands back to plotting / JSON export
//! without any further copying.

use crate::complex::Complex;

/// A growable complex buffer held as split re/im (structure-of-arrays)
/// storage.
///
/// # Examples
///
/// ```
/// use rfkit_num::{soa::SoaComplex, Complex};
///
/// let mut buf = SoaComplex::new();
/// buf.push(Complex::new(1.0, -2.0));
/// buf.push(Complex::I);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.get(0), Complex::new(1.0, -2.0));
/// let (re, im) = buf.as_slices();
/// assert_eq!(re, &[1.0, 0.0]);
/// assert_eq!(im, &[-2.0, 1.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaComplex {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SoaComplex {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SoaComplex::default()
    }

    /// Creates an empty buffer with room for `n` values in both streams.
    pub fn with_capacity(n: usize) -> Self {
        SoaComplex {
            re: Vec::with_capacity(n),
            im: Vec::with_capacity(n),
        }
    }

    /// Number of complex values stored.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Clears both streams, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        self.re.clear();
        self.im.clear();
    }

    /// Ensures room for `n` additional values without reallocation.
    pub fn reserve(&mut self, n: usize) {
        self.re.reserve(n);
        self.im.reserve(n);
    }

    /// Appends a value.
    #[inline]
    pub fn push(&mut self, z: Complex) {
        self.re.push(z.re);
        self.im.push(z.im);
    }

    /// Reads the value at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Complex {
        Complex::new(self.re[i], self.im[i])
    }

    /// Overwrites the value at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, z: Complex) {
        self.re[i] = z.re;
        self.im[i] = z.im;
    }

    /// Grows (or shrinks) to exactly `n` values, filling new slots with
    /// zero.
    pub fn resize_zeroed(&mut self, n: usize) {
        self.re.resize(n, 0.0);
        self.im.resize(n, 0.0);
    }

    /// Borrows the parallel `(re, im)` streams.
    pub fn as_slices(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Copies the buffer out as interleaved complex values.
    pub fn to_vec(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect()
    }
}

impl FromIterator<Complex> for SoaComplex {
    fn from_iter<I: IntoIterator<Item = Complex>>(iter: I) -> Self {
        let mut buf = SoaComplex::new();
        for z in iter {
            buf.push(z);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut buf = SoaComplex::with_capacity(4);
        assert!(buf.is_empty());
        for i in 0..4 {
            buf.push(Complex::new(i as f64, -(i as f64)));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.get(2), Complex::new(2.0, -2.0));
        buf.set(2, Complex::I);
        assert_eq!(buf.get(2), Complex::I);
        assert_eq!(buf.to_vec()[3], Complex::new(3.0, -3.0));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf: SoaComplex = (0..100).map(|i| Complex::real(i as f64)).collect();
        let cap = buf.re.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.re.capacity(), cap);
        buf.reserve(50);
        assert!(buf.re.capacity() >= 50);
    }

    #[test]
    fn resize_zeroed_fills_with_zero() {
        let mut buf = SoaComplex::new();
        buf.push(Complex::ONE);
        buf.resize_zeroed(3);
        assert_eq!(buf.len(), 3);
        assert!(buf.get(1).is_exact_zero());
        assert!(buf.get(2).is_exact_zero());
        buf.resize_zeroed(1);
        assert_eq!(buf.to_vec(), vec![Complex::ONE]);
    }

    #[test]
    fn slices_are_parallel() {
        let buf: SoaComplex = [Complex::new(1.0, 2.0), Complex::new(3.0, 4.0)]
            .into_iter()
            .collect();
        let (re, im) = buf.as_slices();
        assert_eq!(re, &[1.0, 3.0]);
        assert_eq!(im, &[2.0, 4.0]);
    }
}
