//! Double-precision complex arithmetic.
//!
//! The whole rfkit suite works in the complex domain (impedances, scattering
//! parameters, noise-correlation matrices), so this module provides a small,
//! dependency-free complex type with the transcendental functions RF work
//! needs: `exp`, `ln`, `sqrt`, hyperbolic functions for lossy transmission
//! lines, and polar-form helpers for reflection coefficients.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use rfkit_num::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Creates a complex number from polar form `r·exp(jθ)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfkit_num::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z| = sqrt(re² + im²)`, computed without overflow via `hypot`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`. Cheaper than `abs` when only comparisons or
    /// power quantities are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        let out = Complex::new(self.re / d, -self.im / d);
        #[cfg(feature = "numsan")]
        crate::numsan::check_complex(out, "Complex::recip", &[self], file!(), line!());
        out
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm, with branch cut on the negative real axis.
    #[inline]
    pub fn ln(self) -> Self {
        let out = Complex::new(self.abs().ln(), self.arg());
        #[cfg(feature = "numsan")]
        crate::numsan::check_complex(out, "Complex::ln", &[self], file!(), line!());
        out
    }

    /// Principal square root. The result lies in the right half-plane
    /// (`Re ≥ 0`), which is the root RF work wants for propagation constants.
    pub fn sqrt(self) -> Self {
        if self.is_exact_zero() {
            return Complex::ZERO;
        }
        let r = self.abs();
        // Stable half-angle formulation.
        let re = ((r + self.re) * 0.5).sqrt();
        let im = ((r - self.re) * 0.5).sqrt();
        let out = Complex::new(re, if self.im >= 0.0 { im } else { -im });
        #[cfg(feature = "numsan")]
        crate::numsan::check_complex(out, "Complex::sqrt", &[self], file!(), line!());
        out
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Raises to a real power via the principal logarithm.
    pub fn powf(self, p: f64) -> Self {
        if self.is_exact_zero() {
            return Complex::ZERO;
        }
        (self.ln() * Complex::real(p)).exp()
    }

    /// Hyperbolic cosine, used by lossy transmission-line ABCD matrices.
    pub fn cosh(self) -> Self {
        Complex::new(
            self.re.cosh() * self.im.cos(),
            self.re.sinh() * self.im.sin(),
        )
    }

    /// Hyperbolic sine, used by lossy transmission-line ABCD matrices.
    pub fn sinh(self) -> Self {
        Complex::new(
            self.re.sinh() * self.im.cos(),
            self.re.cosh() * self.im.sin(),
        )
    }

    /// Hyperbolic tangent `sinh(z)/cosh(z)` (stable for moderate arguments).
    pub fn tanh(self) -> Self {
        self.sinh() / self.cosh()
    }

    /// Cosine.
    pub fn cos(self) -> Self {
        Complex::new(
            self.re.cos() * self.im.cosh(),
            -self.re.sin() * self.im.sinh(),
        )
    }

    /// Sine.
    pub fn sin(self) -> Self {
        Complex::new(
            self.re.sin() * self.im.cosh(),
            self.re.cos() * self.im.sinh(),
        )
    }

    /// Tangent.
    pub fn tan(self) -> Self {
        self.sin() / self.cos()
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` iff both components are exactly ±0.0 (bit-level test; never
    /// true when a component is NaN). See [`crate::is_exact_zero`].
    #[inline]
    pub fn is_exact_zero(self) -> bool {
        crate::is_exact_zero(self.re) && crate::is_exact_zero(self.im)
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm for improved robustness against overflow.
        let out = if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        };
        #[cfg(feature = "numsan")]
        crate::numsan::check_complex(out, "Complex::div", &[self, rhs], file!(), line!());
        out
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Complex {
            #[inline]
            fn $method(&mut self, rhs: Complex) {
                *self = *self $op rhs;
            }
        }
        impl $trait<f64> for Complex {
            #[inline]
            fn $method(&mut self, rhs: f64) {
                *self = *self $op Complex::real(rhs);
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

macro_rules! impl_mixed {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<f64> for Complex {
            type Output = Complex;
            #[inline]
            fn $method(self, rhs: f64) -> Complex {
                self $op Complex::real(rhs)
            }
        }
        impl $trait<Complex> for f64 {
            type Output = Complex;
            #[inline]
            fn $method(self, rhs: Complex) -> Complex {
                Complex::real(self) $op rhs
            }
        }
    };
}

impl_mixed!(Add, add, +);
impl_mixed!(Sub, sub, -);
impl_mixed!(Mul, mul, *);
impl_mixed!(Div, div, /);

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::imag(3.0), Complex::new(0.0, 3.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.25);
        let w = Complex::new(-0.5, 4.0);
        assert!(close(z + w - w, z, 1e-15));
        assert!(close(z * w / w, z, 1e-14));
        assert!(close(z * z.recip(), Complex::ONE, 1e-14));
        assert!(close(-(-z), z, 0.0));
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex::new(2.0, 3.0);
        assert_eq!(z * 2.0, Complex::new(4.0, 6.0));
        assert_eq!(2.0 * z, Complex::new(4.0, 6.0));
        assert_eq!(1.0 + z, Complex::new(3.0, 3.0));
        assert_eq!(z - 1.0, Complex::new(1.0, 3.0));
        assert!(close(
            6.0 / Complex::new(0.0, 2.0),
            Complex::new(0.0, -3.0),
            1e-15
        ));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        z -= Complex::I;
        z *= 2.0;
        z /= Complex::new(2.0, 0.0);
        assert!(close(z, Complex::new(2.0, 0.0), 1e-15));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(3.0, PI / 3.0);
        assert!((z.abs() - 3.0).abs() < 1e-15);
        assert!((z.arg() - PI / 3.0).abs() < 1e-15);
    }

    #[test]
    fn division_is_overflow_robust() {
        let big = Complex::new(1e300, 1e300);
        let q = big / big;
        assert!(close(q, Complex::ONE, 1e-12));
    }

    #[test]
    fn sqrt_principal_branch() {
        // sqrt of a negative real number is +j·sqrt(|x|)
        let z = Complex::real(-4.0).sqrt();
        assert!(close(z, Complex::new(0.0, 2.0), 1e-15));
        // sqrt of conjugate is conjugate of sqrt (branch-cut symmetric)
        let w = Complex::new(-1.0, -1.0);
        assert!(close(w.sqrt(), w.conj().sqrt().conj(), 1e-15));
        // result is in the right half plane
        assert!(Complex::new(-3.0, 0.5).sqrt().re >= 0.0);
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-14));
        assert!(close(Complex::ZERO.exp(), Complex::ONE, 0.0));
        // Euler's identity
        assert!(close(Complex::imag(PI).exp(), -Complex::ONE, 1e-15));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.1, -0.4);
        assert!(close(z.powi(3), z * z * z, 1e-13));
        assert!(close(z.powi(0), Complex::ONE, 0.0));
        assert!(close(z.powi(-2), (z * z).recip(), 1e-13));
    }

    #[test]
    fn powf_agrees_with_powi() {
        let z = Complex::new(0.8, 0.6);
        assert!(close(z.powf(2.0), z.powi(2), 1e-13));
        assert!(close(z.powf(0.5), z.sqrt(), 1e-13));
    }

    #[test]
    fn hyperbolic_identity() {
        // cosh² − sinh² = 1
        let z = Complex::new(0.7, -0.9);
        let c = z.cosh();
        let s = z.sinh();
        assert!(close(c * c - s * s, Complex::ONE, 1e-13));
        assert!(close(z.tanh(), s / c, 1e-14));
    }

    #[test]
    fn trig_identity() {
        let z = Complex::new(-0.4, 0.3);
        let c = z.cos();
        let s = z.sin();
        assert!(close(c * c + s * s, Complex::ONE, 1e-13));
        assert!(close(z.tan(), s / c, 1e-14));
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::ONE.is_nan());
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn sum_and_product() {
        let v = [Complex::ONE, Complex::I, Complex::new(2.0, 0.0)];
        let s: Complex = v.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 1.0));
        let p: Complex = v.iter().copied().product();
        assert_eq!(p, Complex::new(0.0, 2.0));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
