//! Runtime numeric sanitizer (enabled by the `numsan` cargo feature).
//!
//! A NaN born deep inside a matrix factorization or a complex division
//! poisons everything downstream silently — by the time an optimizer or a
//! yield Monte-Carlo notices, the origin is long gone. With `numsan`
//! enabled, the instrumented operations in this crate (LU factorization
//! and solves, complex `/`, `recip`, `ln`, `sqrt`, interpolation
//! evaluation) detect the *creation* of a NaN — a NaN output from non-NaN
//! inputs — and panic at that operation with origin context
//! (`operation`, the offending inputs, `file:line`).
//!
//! Policy: NaN creation is always flagged; infinities are not, because
//! IEEE-intended infinities are legitimate in RF formulas (open circuits,
//! `1/0` reflection denominators, `ln(0)` in dB conversions). The
//! stricter [`check_finite_f64`] is available for call sites where an
//! infinity is also always a bug (e.g. interpolation inside a finite
//! table).
//!
//! In default builds (feature off) this module does not exist and the
//! call sites compile to nothing: zero cost.
//!
//! Run the suite under the sanitizer with:
//!
//! ```text
//! cargo test -p rfkit-num --features numsan
//! ```

use crate::Complex;

/// Panics if `result` is NaN while every input was non-NaN: the calling
/// operation is the one that created the NaN.
#[inline]
pub fn check_f64(result: f64, op: &str, inputs: &[f64], file: &str, line: u32) {
    if result.is_nan() && inputs.iter().all(|x| !x.is_nan()) {
        fail(op, "NaN", inputs, file, line);
    }
}

/// Strict variant: panics if `result` is NaN *or* ±∞ while every input
/// was finite. For operations where an infinity can only mean a bug.
#[inline]
pub fn check_finite_f64(result: f64, op: &str, inputs: &[f64], file: &str, line: u32) {
    if !result.is_finite() && inputs.iter().all(|x| x.is_finite()) {
        fail(
            op,
            if result.is_nan() { "NaN" } else { "Inf" },
            inputs,
            file,
            line,
        );
    }
}

/// Complex-valued [`check_f64`]: flags a NaN in either component of
/// `result` when no input component was NaN.
#[inline]
pub fn check_complex(result: Complex, op: &str, inputs: &[Complex], file: &str, line: u32) {
    if (result.re.is_nan() || result.im.is_nan())
        && inputs.iter().all(|z| !z.re.is_nan() && !z.im.is_nan())
    {
        let flat: Vec<f64> = inputs.iter().flat_map(|z| [z.re, z.im]).collect();
        fail(op, "NaN", &flat, file, line);
    }
}

/// Reports a sanitizer hit and panics. Public so instrumented code in
/// this crate (e.g. the generic matrix solver) can report directly.
#[cold]
pub fn fail(op: &str, what: &str, inputs: &[f64], file: &str, line: u32) -> ! {
    panic!("numsan: {op} produced {what} from clean inputs {inputs:?} at {file}:{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_results_pass() {
        check_f64(1.5, "test-op", &[1.0, 0.5], "here.rs", 1);
        check_finite_f64(2.0, "test-op", &[4.0], "here.rs", 2);
        check_complex(Complex::ONE, "test-op", &[Complex::I], "here.rs", 3);
    }

    #[test]
    fn nan_from_nan_inputs_is_not_a_creation() {
        // The NaN already existed upstream; this op just propagated it.
        check_f64(f64::NAN, "test-op", &[f64::NAN, 1.0], "here.rs", 1);
        check_complex(
            Complex::new(f64::NAN, 0.0),
            "test-op",
            &[Complex::new(0.0, f64::NAN)],
            "here.rs",
            2,
        );
    }

    #[test]
    fn infinity_is_allowed_by_default() {
        check_f64(f64::INFINITY, "test-op", &[1.0, 0.0], "here.rs", 1);
    }

    #[test]
    #[should_panic(expected = "numsan: test-op produced NaN")]
    fn nan_creation_panics_with_origin() {
        check_f64(f64::NAN, "test-op", &[0.0, 0.0], "origin.rs", 42);
    }

    #[test]
    #[should_panic(expected = "produced Inf")]
    fn strict_check_rejects_infinity() {
        check_finite_f64(f64::INFINITY, "test-op", &[1.0], "origin.rs", 7);
    }

    #[test]
    #[should_panic(expected = "numsan")]
    fn complex_nan_creation_panics() {
        check_complex(
            Complex::new(0.0, f64::NAN),
            "test-op",
            &[Complex::ZERO],
            "origin.rs",
            9,
        );
    }
}
