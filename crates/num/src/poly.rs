//! Real polynomials: evaluation, fitting and calculus.
//!
//! Used for intercept-point extrapolation (fitting the 1:1 and 3:1 slopes of
//! a two-tone sweep) and for smoothing extracted dispersion data.

use crate::matrix::{MatrixError, RMatrix};

/// A real polynomial stored as coefficients in ascending power order:
/// `c[0] + c[1] x + c[2] x² + …`.
///
/// # Examples
///
/// ```
/// use rfkit_num::Polynomial;
/// let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // 1 + x²
/// assert_eq!(p.eval(2.0), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-order coefficients.
    /// Trailing zeros are trimmed so `degree` is meaningful.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// Ascending-order coefficient slice.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Least-squares fit of a degree-`deg` polynomial to `(x, y)` samples,
    /// solved through the normal equations.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when the Vandermonde system is rank
    /// deficient (e.g. fewer distinct abscissae than `deg + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len()` or if `x.len() < deg + 1`.
    pub fn fit(x: &[f64], y: &[f64], deg: usize) -> Result<Polynomial, MatrixError> {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        assert!(x.len() > deg, "need at least deg+1 samples");
        let m = deg + 1;
        // Normal equations A^T A c = A^T y with A the Vandermonde matrix.
        let mut ata = RMatrix::zeros(m, m);
        let mut aty = vec![0.0; m];
        for (&xi, &yi) in x.iter().zip(y) {
            let mut powers = vec![1.0; m];
            for k in 1..m {
                powers[k] = powers[k - 1] * xi;
            }
            for i in 0..m {
                aty[i] += powers[i] * yi;
                for j in 0..m {
                    ata[(i, j)] += powers[i] * powers[j];
                }
            }
        }
        let c = ata.solve(&aty)?;
        Ok(Polynomial::new(c))
    }

    /// Straight-line fit returning `(intercept, slope)`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when all abscissae coincide.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have mismatched lengths or fewer than 2 samples.
    pub fn fit_line(x: &[f64], y: &[f64]) -> Result<(f64, f64), MatrixError> {
        let p = Polynomial::fit(x, y, 1)?;
        let slope = p.coeffs.get(1).copied().unwrap_or(0.0);
        Ok((p.coeffs[0], slope))
    }
}

/// Intersection abscissa of two straight lines `a0 + a1·x` and `b0 + b1·x`.
///
/// Returns `None` when the lines are parallel. Used to find intercept points
/// (IP3) from fundamental and IM3 power sweeps.
pub fn line_intersection(a: (f64, f64), b: (f64, f64)) -> Option<f64> {
    let denom = a.1 - b.1;
    if denom.abs() < 1e-300 {
        None
    } else {
        Some((b.0 - a.0) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]); // 2 - 3x + x²
        assert_eq!(p.eval(0.0), 2.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 0.0);
        assert_eq!(p.eval(3.0), 2.0);
    }

    #[test]
    fn trailing_zero_trim() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(5.0), 0.0);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0]);
        let c = Polynomial::new(vec![7.0]);
        assert_eq!(c.derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn exact_fit_recovers_coefficients() {
        let truth = Polynomial::new(vec![0.5, -1.5, 2.0, 0.25]);
        let x: Vec<f64> = (0..12).map(|i| -1.0 + 0.2 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| truth.eval(xi)).collect();
        let fit = Polynomial::fit(&x, &y, 3).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn least_squares_averages_noise() {
        // y = 3 + 2x with symmetric "noise" that a LS fit must cancel.
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [3.1, 4.9, 7.1, 8.9];
        let (b, m) = Polynomial::fit_line(&x, &y).unwrap();
        assert!((m - 2.0).abs() < 0.05);
        assert!((b - 3.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_fit_is_singular() {
        let x = [1.0, 1.0, 1.0];
        let y = [0.0, 1.0, 2.0];
        assert!(Polynomial::fit(&x, &y, 2).is_err());
    }

    #[test]
    fn line_intersection_basic() {
        // y = x and y = 2 - x intersect at x = 1.
        assert_eq!(line_intersection((0.0, 1.0), (2.0, -1.0)), Some(1.0));
        assert_eq!(line_intersection((0.0, 1.0), (5.0, 1.0)), None);
    }

    #[test]
    fn ip3_style_intersection() {
        // Fundamental: Pout = Pin + 10 (gain 10 dB, slope 1)
        // IM3: Pim3 = 3·Pin - 40 (slope 3)
        // Intercept input power: Pin where equal → Pin + 10 = 3 Pin - 40 → Pin = 25.
        let x = line_intersection((10.0, 1.0), (-40.0, 3.0)).unwrap();
        assert!((x - 25.0).abs() < 1e-12);
    }
}
