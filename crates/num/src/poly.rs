//! Real polynomials: evaluation, fitting and calculus.
//!
//! Used for intercept-point extrapolation (fitting the 1:1 and 3:1 slopes of
//! a two-tone sweep) and for smoothing extracted dispersion data.

use crate::matrix::{MatrixError, RMatrix};

/// A real polynomial stored as coefficients in ascending power order:
/// `c[0] + c[1] x + c[2] x² + …`.
///
/// # Examples
///
/// ```
/// use rfkit_num::Polynomial;
/// let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // 1 + x²
/// assert_eq!(p.eval(2.0), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-order coefficients.
    /// Trailing zeros are trimmed so `degree` is meaningful.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// Ascending-order coefficient slice.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Least-squares fit of a degree-`deg` polynomial to `(x, y)` samples,
    /// solved through the normal equations.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when the Vandermonde system is rank
    /// deficient (e.g. fewer distinct abscissae than `deg + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len()` or if `x.len() < deg + 1`.
    pub fn fit(x: &[f64], y: &[f64], deg: usize) -> Result<Polynomial, MatrixError> {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        assert!(x.len() > deg, "need at least deg+1 samples");
        let m = deg + 1;
        // Normal equations A^T A c = A^T y with A the Vandermonde matrix.
        let mut ata = RMatrix::zeros(m, m);
        let mut aty = vec![0.0; m];
        for (&xi, &yi) in x.iter().zip(y) {
            let mut powers = vec![1.0; m];
            for k in 1..m {
                powers[k] = powers[k - 1] * xi;
            }
            for i in 0..m {
                aty[i] += powers[i] * yi;
                for j in 0..m {
                    ata[(i, j)] += powers[i] * powers[j];
                }
            }
        }
        let c = ata.solve(&aty)?;
        Ok(Polynomial::new(c))
    }

    /// Least-squares fit like [`Polynomial::fit`], but through the
    /// conditioning-safe path: abscissae are affinely mapped onto
    /// `[-1, 1]` before the Vandermonde expansion, the normal equations
    /// are ridge-regularized by `ridge` (dimensionless; `0.0` disables),
    /// and the fitted coefficients are composed back through the affine
    /// map so the returned polynomial evaluates in the original `x`
    /// units.
    ///
    /// Use this whenever the abscissae are far from order 1 — e.g.
    /// fitting against capacitance in farads, where the raw normal
    /// equations of even a quadratic underflow to a singular Gram
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when the (regularized) system
    /// is rank deficient.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len()`, `x.len() < deg + 1`, or `ridge`
    /// is negative.
    pub fn fit_scaled(
        x: &[f64],
        y: &[f64],
        deg: usize,
        ridge: f64,
    ) -> Result<Polynomial, MatrixError> {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        assert!(x.len() > deg, "need at least deg+1 samples");
        let pts: Vec<Vec<f64>> = x.iter().map(|&xi| vec![xi]).collect();
        let norm = crate::lstsq::Normalizer::from_samples(&pts);
        let u: Vec<f64> = pts.iter().map(|p| norm.normalize(p)[0]).collect();
        let m = deg + 1;
        let a = RMatrix::from_fn(u.len(), m, |i, j| u[i].powi(j as i32));
        let c = crate::lstsq::ridge_solve(&a, &[y.to_vec()], ridge)?;
        // Compose p(u) with u = alpha·x + beta back into the x basis via
        // Horner with polynomial coefficients: acc ← acc·(alpha·x+beta) + cₖ.
        let (alpha, beta) = {
            let probe0 = norm.normalize(&[0.0])[0];
            let probe1 = norm.normalize(&[1.0])[0];
            (probe1 - probe0, probe0)
        };
        let mut acc = vec![0.0; 1];
        for &ck in c[0].iter().rev() {
            let mut next = vec![0.0; acc.len() + 1];
            for (k, &ak) in acc.iter().enumerate() {
                next[k] += beta * ak;
                next[k + 1] += alpha * ak;
            }
            next[0] += ck;
            acc = next;
        }
        acc.truncate(m);
        Ok(Polynomial::new(acc))
    }

    /// Straight-line fit returning `(intercept, slope)`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] when all abscissae coincide.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have mismatched lengths or fewer than 2 samples.
    pub fn fit_line(x: &[f64], y: &[f64]) -> Result<(f64, f64), MatrixError> {
        let p = Polynomial::fit(x, y, 1)?;
        let slope = p.coeffs.get(1).copied().unwrap_or(0.0);
        Ok((p.coeffs[0], slope))
    }
}

/// Intersection abscissa of two straight lines `a0 + a1·x` and `b0 + b1·x`.
///
/// Returns `None` when the lines are parallel. Used to find intercept points
/// (IP3) from fundamental and IM3 power sweeps.
pub fn line_intersection(a: (f64, f64), b: (f64, f64)) -> Option<f64> {
    let denom = a.1 - b.1;
    if denom.abs() < 1e-300 {
        None
    } else {
        Some((b.0 - a.0) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]); // 2 - 3x + x²
        assert_eq!(p.eval(0.0), 2.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 0.0);
        assert_eq!(p.eval(3.0), 2.0);
    }

    #[test]
    fn trailing_zero_trim() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(5.0), 0.0);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0]);
        let c = Polynomial::new(vec![7.0]);
        assert_eq!(c.derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn exact_fit_recovers_coefficients() {
        let truth = Polynomial::new(vec![0.5, -1.5, 2.0, 0.25]);
        let x: Vec<f64> = (0..12).map(|i| -1.0 + 0.2 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| truth.eval(xi)).collect();
        let fit = Polynomial::fit(&x, &y, 3).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn least_squares_averages_noise() {
        // y = 3 + 2x with symmetric "noise" that a LS fit must cancel.
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [3.1, 4.9, 7.1, 8.9];
        let (b, m) = Polynomial::fit_line(&x, &y).unwrap();
        assert!((m - 2.0).abs() < 0.05);
        assert!((b - 3.0).abs() < 0.1);
    }

    /// Conditioning regression: a degree-6 fit over picofarad-scale
    /// abscissae in a narrow (±10%) range. The raw normal equations see
    /// nearly collinear uncentered monomial columns graded by 10^72 and
    /// lose ~7 orders of magnitude of accuracy; the scaled path keeps
    /// the fit at ~1e-10.
    #[test]
    fn farad_scale_fit_needs_scaling() {
        let x: Vec<f64> = (0..12)
            .map(|i| (2.0 + 0.4 * i as f64 / 11.0) * 1e-12)
            .collect();
        // Order-1 values with genuine degree-6 structure on the window.
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| {
                let t = (xi / 1e-12 - 2.2) / 0.2;
                2.0 - 3.0 * t + t * t + 0.7 * t.powi(3) - 0.4 * t.powi(4)
                    + 0.3 * t.powi(5)
                    + 0.2 * t.powi(6)
            })
            .collect();
        let raw_worst = match Polynomial::fit(&x, &y, 6) {
            Err(_) => f64::INFINITY,
            Ok(p) => x
                .iter()
                .zip(&y)
                .map(|(&xi, &yi)| (p.eval(xi) - yi).abs())
                .fold(0.0_f64, f64::max),
        };
        assert!(
            raw_worst > 1e-4,
            "raw normal equations unexpectedly survived ill-conditioning ({raw_worst:.3e})"
        );
        let p = Polynomial::fit_scaled(&x, &y, 6, 1e-12).expect("scaled fit");
        for (&xi, &yi) in x.iter().zip(&y) {
            assert!(
                (p.eval(xi) - yi).abs() < 1e-6,
                "{xi}: {} vs {yi}",
                p.eval(xi)
            );
        }
    }

    #[test]
    fn fit_scaled_matches_fit_on_well_scaled_data() {
        let truth = Polynomial::new(vec![0.5, -1.5, 2.0]);
        let x: Vec<f64> = (0..10).map(|i| -1.0 + 0.22 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| truth.eval(xi)).collect();
        let a = Polynomial::fit(&x, &y, 2).unwrap();
        let b = Polynomial::fit_scaled(&x, &y, 2, 0.0).unwrap();
        for (ca, cb) in a.coeffs().iter().zip(b.coeffs()) {
            assert!((ca - cb).abs() < 1e-8, "{ca} vs {cb}");
        }
    }

    #[test]
    fn degenerate_fit_is_singular() {
        let x = [1.0, 1.0, 1.0];
        let y = [0.0, 1.0, 2.0];
        assert!(Polynomial::fit(&x, &y, 2).is_err());
    }

    #[test]
    fn line_intersection_basic() {
        // y = x and y = 2 - x intersect at x = 1.
        assert_eq!(line_intersection((0.0, 1.0), (2.0, -1.0)), Some(1.0));
        assert_eq!(line_intersection((0.0, 1.0), (5.0, 1.0)), None);
    }

    #[test]
    fn ip3_style_intersection() {
        // Fundamental: Pout = Pin + 10 (gain 10 dB, slope 1)
        // IM3: Pim3 = 3·Pin - 40 (slope 3)
        // Intercept input power: Pin where equal → Pin + 10 = 3 Pin - 40 → Pin = 25.
        let x = line_intersection((10.0, 1.0), (-40.0, 3.0)).unwrap();
        assert!((x - 25.0).abs() < 1e-12);
    }
}
