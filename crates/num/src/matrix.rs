//! Dense matrices over `f64` and [`Complex`], with LU factorization.
//!
//! Circuit analysis in rfkit boils down to solving moderately sized dense
//! complex linear systems (MNA matrices of a few dozen nodes) and real
//! least-squares problems (model fitting). This module implements exactly
//! that: row-major dense storage, Gaussian elimination with partial
//! pivoting, determinants, inverses and multi-RHS solves.

use crate::complex::Complex;
use crate::is_exact_zero;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Error raised by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix (or the system) is singular to working precision.
    Singular,
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Dimensions of the left/first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right/second operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular to working precision"),
            MatrixError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::NotSquare => write!(f, "operation requires a square matrix"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Abstraction over the scalar field so [`Matrix`] works for `f64` and
/// [`Complex`] with one implementation.
///
/// This trait is sealed in spirit: it is implemented exactly for the two
/// scalar types the suite uses and is not meant for downstream impls.
pub trait Scalar:
    Copy
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + fmt::Debug
    + fmt::Display
    + Default
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Magnitude used for pivot selection.
    fn modulus(self) -> f64;
    /// Conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn conj(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    const ONE: Complex = Complex::ONE;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn conj(self) -> Complex {
        Complex::conj(self)
    }
    #[inline]
    fn from_f64(x: f64) -> Complex {
        Complex::real(x)
    }
}

/// A dense row-major matrix over scalar type `T`.
///
/// # Examples
///
/// ```
/// use rfkit_num::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Complex-valued matrix alias used throughout circuit analysis.
pub type CMatrix = Matrix<Complex>;
/// Real-valued matrix alias used in fitting and statistics.
pub type RMatrix = Matrix<f64>;

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (Hermitian adjoint); equals [`Matrix::transpose`]
    /// for real matrices.
    pub fn adjoint(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == T::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] = out[(i, j)] + aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = T::ZERO;
                for j in 0..self.cols {
                    acc = acc + self[(i, j)] * v[j];
                }
                acc
            })
            .collect()
    }

    /// Scales every entry by `k`.
    pub fn scaled(&self, k: T) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Congruence transform `T · self · T†`, the fundamental operation on
    /// noise-correlation matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when shapes do not chain.
    pub fn congruence(&self, t: &Self) -> Result<Self, MatrixError> {
        t.matmul(self)?.matmul(&t.adjoint())
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square input and
    /// [`MatrixError::Singular`] when a pivot underflows.
    pub fn lu(&self) -> Result<Lu<T>, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1i32;
        // Scale factors for implicit scaled pivoting keep badly scaled MNA
        // matrices (ohms next to farads) well conditioned.
        let mut scale = vec![0.0f64; n];
        for i in 0..n {
            let mut big = 0.0f64;
            for j in 0..n {
                big = big.max(lu[(i, j)].modulus());
            }
            if is_exact_zero(big) {
                return Err(MatrixError::Singular);
            }
            scale[i] = 1.0 / big;
        }
        for k in 0..n {
            // Find pivot.
            let mut pivot_row = k;
            let mut best = 0.0;
            for i in k..n {
                let m = lu[(i, k)].modulus() * scale[i];
                if m > best {
                    best = m;
                    pivot_row = i;
                }
            }
            if is_exact_zero(lu[(pivot_row, k)].modulus()) {
                return Err(MatrixError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                scale.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    lu[(i, j)] = lu[(i, j)] - factor * lu[(k, j)];
                }
            }
        }
        #[cfg(feature = "numsan")]
        if self.as_slice().iter().all(|v| !v.modulus().is_nan())
            && lu.as_slice().iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("Matrix::lu", "NaN", &[], file!(), line!());
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; also returns
    /// [`MatrixError::DimensionMismatch`] when `b.len() != n`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, MatrixError> {
        if b.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        Ok(self.lu()?.solve(b))
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; also returns
    /// [`MatrixError::DimensionMismatch`] when row counts differ.
    pub fn solve_matrix(&self, b: &Self) -> Result<Self, MatrixError> {
        if b.rows != self.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        let lu = self.lu()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        let mut col = vec![T::ZERO; b.rows];
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b[(i, j)];
            }
            let x = lu.solve(&col);
            for i in 0..b.rows {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] / [`MatrixError::NotSquare`] like
    /// [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Self, MatrixError> {
        self.solve_matrix(&Matrix::identity(self.rows))
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square matrices. A singular
    /// matrix yields `Ok(0)`.
    pub fn det(&self) -> Result<T, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        match self.lu() {
            Ok(lu) => {
                let mut d = if lu.sign > 0 { T::ONE } else { -T::ONE };
                for i in 0..self.rows {
                    d = d * lu.lu[(i, i)];
                }
                Ok(d)
            }
            Err(MatrixError::Singular) => Ok(T::ZERO),
            Err(e) => Err(e),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| {
                let m = x.modulus();
                m * m
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Extracts the square submatrix keeping the listed row/col indices —
    /// used for Schur-complement port reduction in MNA.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Self {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// LU factorization produced by [`Matrix::lu`]; solves against many RHS
/// without refactorizing.
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    sign: i32,
}

impl<T: Scalar> Lu<T> {
    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    #[allow(clippy::needless_range_loop)] // triangular substitution reads clearer indexed
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation then forward/back substitution.
        let mut x: Vec<T> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc = acc - self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc = acc - self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        #[cfg(feature = "numsan")]
        if self.lu.as_slice().iter().all(|v| !v.modulus().is_nan())
            && b.iter().all(|v| !v.modulus().is_nan())
            && x.iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("Lu::solve", "NaN", &[], file!(), line!());
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = RMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = RMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, RMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_real_system() {
        let a = RMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_complex_system() {
        let a = CMatrix::from_rows(&[
            &[cx(2.0, 1.0), cx(0.0, -1.0)],
            &[cx(1.0, 0.0), cx(3.0, 2.0)],
        ]);
        let x_true = vec![cx(1.0, 1.0), cx(-2.0, 0.5)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detection() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 1.0]), Err(MatrixError::Singular));
        assert_eq!(a.det().unwrap(), 0.0);
        let z = RMatrix::zeros(2, 2);
        assert_eq!(z.lu().unwrap_err(), MatrixError::Singular);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = CMatrix::from_rows(&[
            &[cx(1.0, 0.5), cx(2.0, -1.0)],
            &[cx(0.0, 1.0), cx(1.0, 1.0)],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = CMatrix::identity(2);
        assert!((&prod - &id).frobenius_norm() < 1e-12);
    }

    #[test]
    fn det_of_triangular_is_diagonal_product() {
        let a = RMatrix::from_rows(&[&[2.0, 5.0, 1.0], &[0.0, 3.0, 7.0], &[0.0, 0.0, -4.0]]);
        assert!((a.det().unwrap() - (-24.0)).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // Swapping two rows of identity gives det = -1.
        let a = RMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.det().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjoint_conjugates() {
        let a = CMatrix::from_rows(&[&[cx(1.0, 2.0), cx(3.0, -4.0)]]);
        let h = a.adjoint();
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 1);
        assert_eq!(h[(0, 0)], cx(1.0, -2.0));
        assert_eq!(h[(1, 0)], cx(3.0, 4.0));
    }

    #[test]
    fn congruence_preserves_hermitian() {
        let c = CMatrix::from_rows(&[
            &[cx(2.0, 0.0), cx(0.5, 0.3)],
            &[cx(0.5, -0.3), cx(1.0, 0.0)],
        ]);
        let t = CMatrix::from_rows(&[
            &[cx(1.0, 1.0), cx(0.0, 0.0)],
            &[cx(0.2, -0.1), cx(2.0, 0.0)],
        ]);
        let out = c.congruence(&t).unwrap();
        // result must be Hermitian
        assert!((out[(0, 1)] - out[(1, 0)].conj()).abs() < 1e-13);
        assert!(out[(0, 0)].im.abs() < 1e-13);
        assert!(out[(1, 1)].im.abs() < 1e-13);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = RMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        let x1 = lu.solve(&[4.0, 3.0]);
        let x2 = lu.solve(&[1.0, 0.0]);
        assert!((x1[0] - 1.0).abs() < 1e-12 && (x1[1] - 1.0).abs() < 1e-12);
        let r = a.matvec(&x2);
        assert!((r[0] - 1.0).abs() < 1e-12 && r[1].abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = RMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = RMatrix::from_rows(&[&[2.0, 4.0], &[8.0, 12.0]]);
        let x = a.solve_matrix(&b).unwrap();
        assert_eq!(x, RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]));
    }

    #[test]
    fn submatrix_extraction() {
        let a = RMatrix::from_fn(3, 3, |i, j| (3 * i + j) as f64);
        let s = a.submatrix(&[0, 2], &[1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 1);
        assert_eq!(s[(0, 0)], 1.0);
        assert_eq!(s[(1, 0)], 7.0);
    }

    #[test]
    fn badly_scaled_system_solves() {
        // Entries spanning 12 orders of magnitude, as in MNA with pF and kΩ.
        let a = RMatrix::from_rows(&[&[1e-12, 1.0], &[1.0, 1e3]]);
        let x_true = [2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn frobenius_norm() {
        let a = CMatrix::from_rows(&[&[cx(3.0, 4.0)]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-14);
    }
}
