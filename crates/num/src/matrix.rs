//! Dense matrices over `f64` and [`Complex`], with LU factorization.
//!
//! Circuit analysis in rfkit boils down to solving moderately sized dense
//! complex linear systems (MNA matrices of a few dozen nodes) and real
//! least-squares problems (model fitting). This module implements exactly
//! that: row-major dense storage, Gaussian elimination with partial
//! pivoting, determinants, inverses and multi-RHS solves.

use crate::complex::Complex;
use crate::is_exact_zero;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Error raised by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix (or the system) is singular to working precision.
    Singular {
        /// Pivot index at which elimination broke down: the row whose
        /// scale vanished during setup, or the column whose pivot was
        /// exactly zero during elimination. Provenance for diagnostics —
        /// it names the MNA unknown (node/branch) that is unconstrained.
        pivot: usize,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Dimensions of the left/first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right/second operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            MatrixError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::NotSquare => write!(f, "operation requires a square matrix"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Abstraction over the scalar field so [`Matrix`] works for `f64` and
/// [`Complex`] with one implementation.
///
/// This trait is sealed in spirit: it is implemented exactly for the two
/// scalar types the suite uses and is not meant for downstream impls.
pub trait Scalar:
    Copy
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + fmt::Debug
    + fmt::Display
    + Default
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Magnitude used for pivot selection.
    fn modulus(self) -> f64;
    /// Squared magnitude — the cheap pivot metric: comparing `|z|²·s²`
    /// picks the same pivot as comparing `|z|·s` (squaring is monotone on
    /// non-negatives) without any square root per candidate.
    fn modulus_sq(self) -> f64;
    /// Conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn conj(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    const ONE: Complex = Complex::ONE;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sq(self) -> f64 {
        self.norm_sqr()
    }
    #[inline]
    fn conj(self) -> Complex {
        Complex::conj(self)
    }
    #[inline]
    fn from_f64(x: f64) -> Complex {
        Complex::real(x)
    }
}

/// A dense row-major matrix over scalar type `T`.
///
/// # Examples
///
/// ```
/// use rfkit_num::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// Complex-valued matrix alias used throughout circuit analysis.
pub type CMatrix = Matrix<Complex>;
/// Real-valued matrix alias used in fitting and statistics.
pub type RMatrix = Matrix<f64>;

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (Hermitian adjoint); equals [`Matrix::transpose`]
    /// for real matrices.
    pub fn adjoint(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == T::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] = out[(i, j)] + aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = T::ZERO;
                for j in 0..self.cols {
                    acc = acc + self[(i, j)] * v[j];
                }
                acc
            })
            .collect()
    }

    /// Scales every entry by `k`.
    pub fn scaled(&self, k: T) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Congruence transform `T · self · T†`, the fundamental operation on
    /// noise-correlation matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when shapes do not chain.
    pub fn congruence(&self, t: &Self) -> Result<Self, MatrixError> {
        t.matmul(self)?.matmul(&t.adjoint())
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square input and
    /// [`MatrixError::Singular`] when a pivot underflows.
    pub fn lu(&self) -> Result<Lu<T>, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        let mut lu = self.clone();
        let mut perm = Vec::new();
        let mut scale = Vec::new();
        let sign = lu_factor_in_place(&mut lu, &mut perm, &mut scale)?;
        #[cfg(feature = "numsan")]
        if self.as_slice().iter().all(|v| !v.modulus().is_nan())
            && lu.as_slice().iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("Matrix::lu", "NaN", &[], file!(), line!());
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Factors `self` into a reusable [`LuWorkspace`], refactoring in the
    /// workspace's existing storage so repeated calls at the same dimension
    /// allocate nothing.
    ///
    /// The factorization (and everything solved through it) is bit-identical
    /// to [`Matrix::lu`]. On `Err` the workspace contents are unspecified and
    /// must be refilled by a successful call before solving.
    ///
    /// # Errors
    ///
    /// Same as [`Matrix::lu`].
    pub fn lu_into(&self, ws: &mut LuWorkspace<T>) -> Result<(), MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        ws.lu.copy_from(self);
        ws.sign = lu_factor_in_place(&mut ws.lu, &mut ws.perm, &mut ws.scale)?;
        #[cfg(feature = "numsan")]
        if self.as_slice().iter().all(|v| !v.modulus().is_nan())
            && ws.lu.as_slice().iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("Matrix::lu_into", "NaN", &[], file!(), line!());
        }
        Ok(())
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; also returns
    /// [`MatrixError::DimensionMismatch`] when `b.len() != n`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, MatrixError> {
        if b.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        Ok(self.lu()?.solve(b))
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; also returns
    /// [`MatrixError::DimensionMismatch`] when row counts differ.
    pub fn solve_matrix(&self, b: &Self) -> Result<Self, MatrixError> {
        if b.rows != self.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        let lu = self.lu()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        let mut col = vec![T::ZERO; b.rows];
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b[(i, j)];
            }
            let x = lu.solve(&col);
            for i in 0..b.rows {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Singular`] / [`MatrixError::NotSquare`] like
    /// [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Self, MatrixError> {
        self.solve_matrix(&Matrix::identity(self.rows))
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square matrices. A singular
    /// matrix yields `Ok(0)`.
    pub fn det(&self) -> Result<T, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        match self.lu() {
            Ok(lu) => {
                let mut d = if lu.sign > 0 { T::ONE } else { -T::ONE };
                for i in 0..self.rows {
                    d = d * lu.lu[(i, i)];
                }
                Ok(d)
            }
            Err(MatrixError::Singular { .. }) => Ok(T::ZERO),
            Err(e) => Err(e),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| {
                let m = x.modulus();
                m * m
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Extracts the square submatrix keeping the listed row/col indices —
    /// used for Schur-complement port reduction in MNA.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Self {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    // --- In-place variants for allocation-free hot loops -----------------
    //
    // Each method below produces bit-identical results to its allocating
    // counterpart (same kernels, same evaluation order) but writes into
    // caller-owned storage, reusing the existing heap allocation whenever
    // capacity allows. They exist for the AC fast path, where a band sweep
    // calls them thousands of times at fixed dimensions.

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, T::ZERO);
    }

    /// Reshapes to the `n × n` identity, reusing the allocation. In-place
    /// variant of [`Matrix::identity`].
    pub fn reset_identity(&mut self, n: usize) {
        self.reset(n, n);
        for i in 0..n {
            self[(i, i)] = T::ONE;
        }
    }

    /// Becomes a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Self) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// In-place variant of [`Matrix::submatrix`]: gathers the rows/columns
    /// of `src` listed in `row_idx`/`col_idx` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_from(&mut self, src: &Self, row_idx: &[usize], col_idx: &[usize]) {
        self.rows = row_idx.len();
        self.cols = col_idx.len();
        self.data.clear();
        for &r in row_idx {
            let src_row = &src.data[r * src.cols..(r + 1) * src.cols];
            self.data.extend(col_idx.iter().map(|&c| src_row[c]));
        }
    }

    /// In-place variant of [`Matrix::scaled`]: `out = self · k` entry-wise.
    pub fn scaled_into(&self, k: T, out: &mut Self) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&x| x * k));
    }

    /// In-place elementwise sum: `out = self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ (like `&a + &b`).
    pub fn add_into(&self, rhs: &Self, out: &mut Self) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b));
    }

    /// In-place elementwise difference: `out = self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ (like `&a - &b`).
    pub fn sub_into(&self, rhs: &Self, out: &mut Self) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b));
    }

    /// In-place variant of [`Matrix::matmul`]: `out = self · rhs`, same
    /// zero-skip kernel.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when inner dimensions
    /// differ.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) -> Result<(), MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        out.reset(self.rows, rhs.cols);
        let rc = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rc..(i + 1) * rc];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == T::ZERO {
                    continue;
                }
                let rhs_row = &rhs.data[k * rc..(k + 1) * rc];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o = *o + aik * r;
                }
            }
        }
        Ok(())
    }
}

/// Shared factorization kernel: factors `lu` in place with implicit scaled
/// partial pivoting, fills `perm`/`scale` (cleared first, allocations
/// reused) and returns the permutation sign. Scale factors keep badly
/// scaled MNA matrices (ohms next to farads) well conditioned.
///
/// Pivot selection compares **squared** magnitudes against squared row
/// scales — the same argmax as the textbook `|z|·s` metric (squaring is
/// monotone on non-negatives) without a square root per candidate, which
/// dominates small-matrix factorization cost. When any row's squared
/// magnitude leaves the representable range (entries beyond ~1e±154,
/// far outside circuit values), the whole factorization falls back to
/// the overflow-proof `modulus()` metric.
fn lu_factor_in_place<T: Scalar>(
    lu: &mut Matrix<T>,
    perm: &mut Vec<usize>,
    scale: &mut Vec<f64>,
) -> Result<i32, MatrixError> {
    debug_assert_eq!(lu.rows, lu.cols, "factorization kernel needs square input");
    let n = lu.rows;
    perm.clear();
    perm.extend(0..n);
    scale.clear();
    scale.resize(n, 0.0);
    for i in 0..n {
        let row = &lu.data[i * n..(i + 1) * n];
        let mut big2 = 0.0f64;
        for &v in row {
            big2 = big2.max(v.modulus_sq());
        }
        let squared_range_ok =
            big2.is_finite() && (!is_exact_zero(big2) || row.iter().all(|&v| v == T::ZERO));
        if !squared_range_ok {
            // Extreme magnitudes: redo every scale with the robust metric.
            for (r, (row, s)) in lu.data.chunks_exact(n).zip(scale.iter_mut()).enumerate() {
                let mut big = 0.0f64;
                for &v in row {
                    big = big.max(v.modulus());
                }
                if is_exact_zero(big) {
                    return Err(MatrixError::Singular { pivot: r });
                }
                *s = 1.0 / big;
            }
            return factor_core(&mut lu.data, n, perm, scale, T::modulus);
        }
        if is_exact_zero(big2) {
            return Err(MatrixError::Singular { pivot: i });
        }
        scale[i] = 1.0 / big2;
    }
    factor_core(&mut lu.data, n, perm, scale, T::modulus_sq)
}

/// Elimination core shared by both pivot metrics. `scale[i]` must be the
/// reciprocal of row `i`'s maximum under the same `metric`.
fn factor_core<T: Scalar>(
    data: &mut [T],
    n: usize,
    perm: &mut [usize],
    scale: &mut [f64],
    metric: impl Fn(T) -> f64,
) -> Result<i32, MatrixError> {
    let mut sign = 1i32;
    for k in 0..n {
        // Find pivot.
        let mut pivot_row = k;
        let mut best = 0.0;
        for i in k..n {
            let m = metric(data[i * n + k]) * scale[i];
            if m > best {
                best = m;
                pivot_row = i;
            }
        }
        if data[pivot_row * n + k] == T::ZERO {
            return Err(MatrixError::Singular { pivot: k });
        }
        if pivot_row != k {
            let (head, tail) = data.split_at_mut(pivot_row * n);
            head[k * n..(k + 1) * n].swap_with_slice(&mut tail[..n]);
            perm.swap(k, pivot_row);
            scale.swap(k, pivot_row);
            sign = -sign;
        }
        // Eliminate below the pivot, row by row over contiguous slices.
        let pivot = data[k * n + k];
        let (head, below) = data.split_at_mut((k + 1) * n);
        let row_k = &head[k * n + k + 1..(k + 1) * n];
        for row_i in below.chunks_exact_mut(n) {
            let factor = row_i[k] / pivot;
            row_i[k] = factor;
            for (x, &u) in row_i[k + 1..].iter_mut().zip(row_k) {
                *x = *x - factor * u;
            }
        }
    }
    Ok(sign)
}

/// Forward/back substitution against a factored matrix. `x` arrives
/// already permuted and leaves holding the solution.
fn lu_substitute_in_place<T: Scalar>(lu: &Matrix<T>, x: &mut [T]) {
    let n = lu.rows;
    for i in 1..n {
        let row = &lu.data[i * n..i * n + i];
        let mut acc = x[i];
        for (&l, &xj) in row.iter().zip(x.iter()) {
            acc = acc - l * xj;
        }
        x[i] = acc;
    }
    for i in (0..n).rev() {
        let row = &lu.data[i * n..(i + 1) * n];
        let mut acc = x[i];
        for (&l, &xj) in row[i + 1..].iter().zip(x[i + 1..].iter()) {
            acc = acc - l * xj;
        }
        x[i] = acc / row[i];
    }
}

impl<T: Scalar> Default for Matrix<T> {
    /// The empty `0 × 0` matrix — a placeholder for workspace buffers that
    /// are sized on first use via [`Matrix::reset`] / [`Matrix::copy_from`].
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// LU factorization produced by [`Matrix::lu`]; solves against many RHS
/// without refactorizing.
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    sign: i32,
}

impl<T: Scalar> Lu<T> {
    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation then forward/back substitution.
        let mut x: Vec<T> = self.perm.iter().map(|&p| b[p]).collect();
        lu_substitute_in_place(&self.lu, &mut x);
        #[cfg(feature = "numsan")]
        if self.lu.as_slice().iter().all(|v| !v.modulus().is_nan())
            && b.iter().all(|v| !v.modulus().is_nan())
            && x.iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("Lu::solve", "NaN", &[], file!(), line!());
        }
        x
    }
}

/// Reusable LU factorization workspace for [`Matrix::lu_into`].
///
/// Where [`Matrix::lu`] allocates a fresh [`Lu`] per factorization, this
/// workspace refactors into the same storage every call and solves into
/// caller-owned buffers, so a hot loop (e.g. one AC solve per frequency
/// point) performs zero heap allocations after the first factorization at
/// a given dimension. All results are bit-identical to the allocating
/// paths: the factor and substitution kernels are shared.
#[derive(Debug, Clone)]
pub struct LuWorkspace<T: Scalar> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    scale: Vec<f64>,
    sign: i32,
}

impl<T: Scalar> LuWorkspace<T> {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        LuWorkspace {
            lu: Matrix::zeros(0, 0),
            perm: Vec::new(),
            scale: Vec::new(),
            sign: 1,
        }
    }

    /// Dimension of the currently stored factorization.
    pub fn dim(&self) -> usize {
        self.lu.rows
    }

    /// Permutation sign of the stored factorization (for determinants).
    pub fn sign(&self) -> i32 {
        self.sign
    }

    /// Solves `A x = b` into `x`, reusing its allocation. Bit-identical to
    /// [`Lu::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        lu_substitute_in_place(&self.lu, x);
        #[cfg(feature = "numsan")]
        if self.lu.as_slice().iter().all(|v| !v.modulus().is_nan())
            && b.iter().all(|v| !v.modulus().is_nan())
            && x.iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail("LuWorkspace::solve_into", "NaN", &[], file!(), line!());
        }
    }

    /// Multi-RHS solve `A X = B` into `out`, with `x` as a reusable column
    /// scratch buffer. Bit-identical to [`Matrix::solve_matrix`] (and,
    /// with an identity `B`, to [`Matrix::inverse`]): each column is
    /// gathered through the row permutation and substituted in place —
    /// the same values the legacy per-column copy produced, without the
    /// staging pass.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when `b.rows()` differs
    /// from the factored dimension.
    pub fn solve_matrix_into(
        &self,
        b: &Matrix<T>,
        out: &mut Matrix<T>,
        x: &mut Vec<T>,
    ) -> Result<(), MatrixError> {
        let n = self.lu.rows;
        if b.rows != n {
            return Err(MatrixError::DimensionMismatch {
                left: (n, n),
                right: (b.rows, b.cols),
            });
        }
        out.reset(b.rows, b.cols);
        for j in 0..b.cols {
            x.clear();
            x.extend(self.perm.iter().map(|&p| b.data[p * b.cols + j]));
            lu_substitute_in_place(&self.lu, x);
            for (i, &v) in x.iter().enumerate() {
                out.data[i * out.cols + j] = v;
            }
        }
        #[cfg(feature = "numsan")]
        if self.lu.as_slice().iter().all(|v| !v.modulus().is_nan())
            && b.as_slice().iter().all(|v| !v.modulus().is_nan())
            && out.as_slice().iter().any(|v| v.modulus().is_nan())
        {
            crate::numsan::fail(
                "LuWorkspace::solve_matrix_into",
                "NaN",
                &[],
                file!(),
                line!(),
            );
        }
        Ok(())
    }
}

impl<T: Scalar> LuWorkspace<T> {
    /// Refactors a **new** matrix `a` through the pivot sequence of the
    /// previous factorization, skipping the pivot search and row swaps.
    ///
    /// This is the batched-sweep fast path: across a frequency grid the
    /// MNA matrix changes smoothly, so the permutation chosen at one
    /// point almost always remains a stable choice at the next. Rows of
    /// `a` are gathered through the stored permutation and eliminated in
    /// that fixed order, guarding every multiplier against
    /// [`crate::banded::GROWTH_LIMIT`].
    ///
    /// Returns `true` on success: the workspace then holds a valid
    /// factorization of `a` and every solve behaves exactly as after
    /// [`Matrix::lu_into`]. When the fixed order coincides with what
    /// fresh pivoting would pick, the factorization is **bit-identical**
    /// to `lu_into` (elimination updates depend only on the pivot row,
    /// not on row placement).
    ///
    /// Returns `false` — without touching the stored permutation — when
    /// the workspace is empty, dimensions differ, a pivot is exactly
    /// zero, or a multiplier trips the growth guard (including
    /// non-finite values). The factor storage is then invalid; the
    /// caller must run a full [`Matrix::lu_into`] before solving.
    pub fn try_refactor_with_current_perm(&mut self, a: &Matrix<T>) -> bool {
        let n = self.lu.rows;
        if n == 0 || a.rows != n || a.cols != n || self.perm.len() != n {
            return false;
        }
        // Gather rows of `a` into the physical order the stored pivot
        // sequence produced, exactly as progressive swapping would have.
        for (dst, &src) in self.perm.iter().enumerate() {
            let row = &a.data[src * n..(src + 1) * n];
            self.lu.data[dst * n..(dst + 1) * n].copy_from_slice(row);
        }
        let limit_sq = crate::banded::GROWTH_LIMIT * crate::banded::GROWTH_LIMIT;
        let data = &mut self.lu.data;
        for k in 0..n {
            let pivot = data[k * n + k];
            if pivot == T::ZERO {
                return false;
            }
            let (head, below) = data.split_at_mut((k + 1) * n);
            let row_k = &head[k * n + k + 1..(k + 1) * n];
            for row_i in below.chunks_exact_mut(n) {
                let factor = row_i[k] / pivot;
                let growth = factor.modulus_sq();
                // NaN growth (non-finite pivot ratio) must also bail out.
                if growth > limit_sq || growth.is_nan() {
                    return false;
                }
                row_i[k] = factor;
                for (x, &u) in row_i[k + 1..].iter_mut().zip(row_k) {
                    *x = *x - factor * u;
                }
            }
        }
        // Same permutation ⇒ same sign; `scale` is only used during pivot
        // selection and needs no update.
        true
    }
}

impl<T: Scalar> Default for LuWorkspace<T> {
    fn default() -> Self {
        LuWorkspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = RMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = RMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, RMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_real_system() {
        let a = RMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_complex_system() {
        let a = CMatrix::from_rows(&[
            &[cx(2.0, 1.0), cx(0.0, -1.0)],
            &[cx(1.0, 0.0), cx(3.0, 2.0)],
        ]);
        let x_true = vec![cx(1.0, 1.0), cx(-2.0, 0.5)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detection() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        // Rank-1: elimination breaks down at the second pivot column, and
        // the error says so.
        assert_eq!(
            a.solve(&[1.0, 1.0]),
            Err(MatrixError::Singular { pivot: 1 })
        );
        assert_eq!(a.det().unwrap(), 0.0);
        // All-zero: the very first row has no scale.
        let z = RMatrix::zeros(2, 2);
        assert_eq!(z.lu().unwrap_err(), MatrixError::Singular { pivot: 0 });
    }

    #[test]
    fn singular_pivot_provenance_names_the_broken_unknown() {
        // A 3x3 with an all-zero *last* row: the scale scan reports row 2.
        let a = RMatrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]);
        assert_eq!(a.lu().unwrap_err(), MatrixError::Singular { pivot: 2 });
        // Duplicated columns 1 and 2: rows all have scale, elimination
        // dies at pivot column 2.
        let b = RMatrix::from_rows(&[&[1.0, 2.0, 2.0], &[0.0, 1.0, 1.0], &[0.0, 3.0, 3.0]]);
        assert_eq!(b.lu().unwrap_err(), MatrixError::Singular { pivot: 2 });
        let msg = b.lu().unwrap_err().to_string();
        assert!(msg.contains("pivot 2"), "{msg}");
    }

    #[test]
    fn inverse_roundtrip() {
        let a = CMatrix::from_rows(&[
            &[cx(1.0, 0.5), cx(2.0, -1.0)],
            &[cx(0.0, 1.0), cx(1.0, 1.0)],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = CMatrix::identity(2);
        assert!((&prod - &id).frobenius_norm() < 1e-12);
    }

    #[test]
    fn det_of_triangular_is_diagonal_product() {
        let a = RMatrix::from_rows(&[&[2.0, 5.0, 1.0], &[0.0, 3.0, 7.0], &[0.0, 0.0, -4.0]]);
        assert!((a.det().unwrap() - (-24.0)).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // Swapping two rows of identity gives det = -1.
        let a = RMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.det().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjoint_conjugates() {
        let a = CMatrix::from_rows(&[&[cx(1.0, 2.0), cx(3.0, -4.0)]]);
        let h = a.adjoint();
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 1);
        assert_eq!(h[(0, 0)], cx(1.0, -2.0));
        assert_eq!(h[(1, 0)], cx(3.0, 4.0));
    }

    #[test]
    fn congruence_preserves_hermitian() {
        let c = CMatrix::from_rows(&[
            &[cx(2.0, 0.0), cx(0.5, 0.3)],
            &[cx(0.5, -0.3), cx(1.0, 0.0)],
        ]);
        let t = CMatrix::from_rows(&[
            &[cx(1.0, 1.0), cx(0.0, 0.0)],
            &[cx(0.2, -0.1), cx(2.0, 0.0)],
        ]);
        let out = c.congruence(&t).unwrap();
        // result must be Hermitian
        assert!((out[(0, 1)] - out[(1, 0)].conj()).abs() < 1e-13);
        assert!(out[(0, 0)].im.abs() < 1e-13);
        assert!(out[(1, 1)].im.abs() < 1e-13);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = RMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        let x1 = lu.solve(&[4.0, 3.0]);
        let x2 = lu.solve(&[1.0, 0.0]);
        assert!((x1[0] - 1.0).abs() < 1e-12 && (x1[1] - 1.0).abs() < 1e-12);
        let r = a.matvec(&x2);
        assert!((r[0] - 1.0).abs() < 1e-12 && r[1].abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = RMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = RMatrix::from_rows(&[&[2.0, 4.0], &[8.0, 12.0]]);
        let x = a.solve_matrix(&b).unwrap();
        assert_eq!(x, RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]));
    }

    #[test]
    fn submatrix_extraction() {
        let a = RMatrix::from_fn(3, 3, |i, j| (3 * i + j) as f64);
        let s = a.submatrix(&[0, 2], &[1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 1);
        assert_eq!(s[(0, 0)], 1.0);
        assert_eq!(s[(1, 0)], 7.0);
    }

    #[test]
    fn badly_scaled_system_solves() {
        // Entries spanning 12 orders of magnitude, as in MNA with pF and kΩ.
        let a = RMatrix::from_rows(&[&[1e-12, 1.0], &[1.0, 1e3]]);
        let x_true = [2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn frobenius_norm() {
        let a = CMatrix::from_rows(&[&[cx(3.0, 4.0)]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-14);
    }

    /// A complex 3×3 with mixed magnitudes that forces pivoting.
    fn pivoting_complex() -> CMatrix {
        CMatrix::from_rows(&[
            &[cx(1e-9, 2e-9), cx(1.0, -0.5), cx(0.0, 3.0)],
            &[cx(2.0, 1.0), cx(1e-6, 0.0), cx(-1.0, 0.25)],
            &[cx(0.5, -2.0), cx(4.0, 4.0), cx(1e3, -1e2)],
        ])
    }

    #[test]
    fn lu_into_bit_identical_to_lu() {
        let a = pivoting_complex();
        let lu = a.lu().unwrap();
        let mut ws = LuWorkspace::new();
        a.lu_into(&mut ws).unwrap();
        assert_eq!(ws.lu, lu.lu);
        assert_eq!(ws.perm, lu.perm);
        assert_eq!(ws.sign(), lu.sign);
        let b = vec![cx(1.0, -2.0), cx(0.5, 0.25), cx(-3.0, 1.0)];
        let mut x_ws = Vec::new();
        ws.solve_into(&b, &mut x_ws);
        assert_eq!(lu.solve(&b), x_ws);
    }

    #[test]
    fn solve_matrix_into_bit_identical_and_reuses_buffers() {
        let a = pivoting_complex();
        let b = CMatrix::from_fn(3, 2, |i, j| cx(i as f64 + 0.5, j as f64 - 1.0));
        let legacy = a.solve_matrix(&b).unwrap();
        let mut ws = LuWorkspace::new();
        let mut out = CMatrix::zeros(0, 0);
        let mut x = Vec::new();
        a.lu_into(&mut ws).unwrap();
        ws.solve_matrix_into(&b, &mut out, &mut x).unwrap();
        assert_eq!(legacy, out);
        // A second factor+solve round at the same dimension must not grow
        // any buffer: capacities are the allocation proxy.
        let caps = (out.data.capacity(), ws.lu.data.capacity(), x.capacity());
        a.lu_into(&mut ws).unwrap();
        ws.solve_matrix_into(&b, &mut out, &mut x).unwrap();
        assert_eq!(
            caps,
            (out.data.capacity(), ws.lu.data.capacity(), x.capacity())
        );
        assert_eq!(legacy, out);
    }

    #[test]
    fn workspace_inverse_bit_identical() {
        let a = pivoting_complex();
        let inv = a.inverse().unwrap();
        let mut ws = LuWorkspace::new();
        a.lu_into(&mut ws).unwrap();
        let mut id = CMatrix::zeros(0, 0);
        id.reset_identity(3);
        let mut out = CMatrix::zeros(0, 0);
        let mut x = Vec::new();
        ws.solve_matrix_into(&id, &mut out, &mut x).unwrap();
        assert_eq!(inv, out);
    }

    #[test]
    fn lu_into_error_parity() {
        let singular = RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut ws = LuWorkspace::new();
        assert_eq!(
            singular.lu_into(&mut ws),
            Err(MatrixError::Singular { pivot: 1 })
        );
        let rect = RMatrix::zeros(2, 3);
        assert_eq!(rect.lu_into(&mut ws), Err(MatrixError::NotSquare));
        assert_eq!(rect.lu().unwrap_err(), MatrixError::NotSquare);
    }

    #[test]
    fn in_place_helpers_match_allocating_ops() {
        let a = pivoting_complex();
        let b = CMatrix::from_fn(3, 3, |i, j| cx(j as f64 - 1.0, i as f64 * 0.5));
        let mut out = CMatrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.add_into(&b, &mut out);
        assert_eq!(out, &a + &b);
        a.sub_into(&b, &mut out);
        assert_eq!(out, &a - &b);
        a.scaled_into(cx(0.3, -0.7), &mut out);
        assert_eq!(out, a.scaled(cx(0.3, -0.7)));
        out.gather_from(&a, &[0, 2], &[1]);
        assert_eq!(out, a.submatrix(&[0, 2], &[1]));
        out.reset_identity(3);
        assert_eq!(out, CMatrix::identity(3));
        out.copy_from(&a);
        assert_eq!(out, a);
        let rect = CMatrix::zeros(2, 3);
        assert!(matches!(
            rect.matmul_into(&rect.clone(), &mut out),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reset_zero_fills_previous_contents() {
        let mut m = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.reset(2, 2);
        assert_eq!(m, RMatrix::zeros(2, 2));
        m.reset(1, 3);
        assert_eq!(m, RMatrix::zeros(1, 3));
    }

    #[test]
    fn refactor_with_current_perm_is_bit_identical_for_same_matrix() {
        // Re-eliminating the same matrix through the stored pivot order
        // must reproduce the pivoted factorization bit for bit: the
        // permutation coincides, and row updates only depend on the pivot
        // row, never on physical row placement.
        let a = pivoting_complex();
        let mut ws = LuWorkspace::new();
        a.lu_into(&mut ws).unwrap();
        let fresh_lu = ws.lu.clone();
        let fresh_perm = ws.perm.clone();
        assert!(ws.try_refactor_with_current_perm(&a));
        assert_eq!(ws.lu, fresh_lu);
        assert_eq!(ws.perm, fresh_perm);
        let b = [cx(1.0, -1.0), cx(0.5, 2.0), cx(-3.0, 0.25)];
        let mut x = Vec::new();
        ws.solve_into(&b, &mut x);
        assert_eq!(x, a.solve(&b).unwrap());
    }

    #[test]
    fn refactor_with_current_perm_tracks_a_perturbed_matrix() {
        // A smoothly perturbed matrix (the AC-sweep situation) solves
        // correctly through the reused pivot sequence.
        let a = pivoting_complex();
        let mut ws = LuWorkspace::new();
        a.lu_into(&mut ws).unwrap();
        let mut a2 = a.clone();
        for i in 0..3 {
            a2[(i, i)] += cx(0.01, 0.02);
        }
        assert!(ws.try_refactor_with_current_perm(&a2));
        let b = [cx(1.0, 0.0), cx(0.0, 1.0), cx(2.0, -0.5)];
        let mut x = Vec::new();
        ws.solve_into(&b, &mut x);
        let reference = a2.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&reference) {
            assert!((*got - *want).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_with_current_perm_rejects_unsafe_inputs() {
        let a = pivoting_complex();
        let mut ws = LuWorkspace::new();
        // Empty workspace: nothing to reuse.
        assert!(!ws.try_refactor_with_current_perm(&a));
        a.lu_into(&mut ws).unwrap();
        // Dimension change.
        assert!(!ws.try_refactor_with_current_perm(&CMatrix::identity(2)));
        // Singular input: zero pivot under the fixed order.
        let z = CMatrix::zeros(3, 3);
        assert!(!ws.try_refactor_with_current_perm(&z));
        // A matrix that *needs* different pivoting: the stored order sees
        // a tiny pivot and the growth guard refuses instead of producing
        // an inaccurate factorization.
        a.lu_into(&mut ws).unwrap();
        let p = ws.perm[0];
        let mut bad = a.clone();
        for j in 0..3 {
            bad[(p, j)] *= cx(1e-12, 0.0);
        }
        bad[(p, p)] = cx(1e-14, 0.0);
        assert!(!ws.try_refactor_with_current_perm(&bad));
        // The workspace recovers with a full refactorization.
        a.lu_into(&mut ws).unwrap();
        let b = [cx(1.0, 0.0), cx(0.0, 1.0), cx(1.0, 1.0)];
        let mut x = Vec::new();
        ws.solve_into(&b, &mut x);
        assert_eq!(x, a.solve(&b).unwrap());
    }
}
