//! Deterministic mergeable quantile sketch over non-negative samples.
//!
//! The classic streaming-quantile structures (P², Greenwald–Khanna)
//! produce summaries whose contents depend on arrival *order*, which
//! breaks the workspace determinism contract the moment per-worker
//! sketches are merged in pool-completion order. [`QuantileSketch`]
//! instead uses log-linear buckets in the style of DDSketch: a sample
//! maps to a bucket keyed by its binary exponent plus the top
//! [`SUB_BITS`] mantissa bits, and a bucket is just a count. Recording
//! is a pure bucket increment and [`merge`](QuantileSketch::merge) is a
//! bucket-wise add, so the structure is exactly associative *and*
//! commutative: any merge order of any partition of a stream yields the
//! same serialized summary as ingesting the stream whole. The price is
//! a bounded relative error on reported quantile values (≈ 2.2% with 16
//! sub-buckets per octave) instead of a rank guarantee.
//!
//! The observability layer folds span durations and histogram samples
//! into these sketches in aggregate-profile mode, and the bench harness
//! uses them to summarize repetition timings; both rely on the
//! merge-determinism property pinned by `tests/sketch_merge.rs`.

use std::collections::BTreeMap;

/// Mantissa bits per bucket key: 16 sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUBS: i64 = 1 << SUB_BITS;

/// A mergeable log-linear quantile sketch over samples `>= 0`.
///
/// Zero samples are counted exactly in a dedicated slot; positive
/// samples land in log-linear buckets. Non-finite samples are ignored
/// (telemetry must never poison the summary with a NaN). Negative
/// samples clamp to the zero slot — the instruments feeding this type
/// measure durations and magnitudes, where a negative value is already
/// a bug upstream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    zeros: u64,
    buckets: BTreeMap<i64, u64>,
}

/// Bucket key of a positive finite sample: binary exponent scaled by
/// [`SUBS`] plus the top mantissa bits. Monotone in `v`.
fn key_of(v: f64) -> i64 {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as i64;
    // Subnormals (exp 0) collapse into the lowest normal octave; they
    // are below any duration this workspace measures.
    exp * SUBS + sub
}

/// Lower edge of bucket `key` (inverse of [`key_of`] up to bucket width).
fn lower_of(key: i64) -> f64 {
    let exp = (key.div_euclid(SUBS)).clamp(1, 0x7fe) as u64;
    let sub = key.rem_euclid(SUBS) as u64;
    f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)))
}

/// Upper edge of bucket `key`.
fn upper_of(key: i64) -> f64 {
    lower_of(key + 1)
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. `O(log buckets)`; NaN and infinities are
    /// dropped, values `<= 0` count into the exact zero slot.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v <= 0.0 {
            self.zeros += 1;
            return;
        }
        *self.buckets.entry(key_of(v)).or_insert(0) += 1;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.zeros + self.buckets.values().sum::<u64>()
    }

    /// Exact count of samples `<= 0`.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold `other` into `self` (bucket-wise add). Exactly associative
    /// and commutative: any merge tree over a partition of a stream
    /// equals ingesting the stream whole.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.zeros += other.zeros;
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`: the geometric midpoint of
    /// the bucket holding the target rank (relative error bounded by
    /// half the bucket width, ≈ 2.2%). Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        if target <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&k, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                return 0.5 * (lower_of(k) + upper_of(k));
            }
        }
        // Unreachable with a consistent count; fall back to the top
        // bucket rather than panicking inside telemetry.
        self.buckets
            .iter()
            .next_back()
            .map(|(&k, _)| 0.5 * (lower_of(k) + upper_of(k)))
            .unwrap_or(0.0)
    }

    /// Sorted `(bucket_key, count)` pairs, ascending by key. Stable
    /// across runs, merge orders, and thread counts — the serialization
    /// surface the determinism tests pin.
    pub fn buckets(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.buckets.iter().map(|(&k, &c)| (k, c))
    }

    /// Rebuild a sketch from serialized parts (profile ingestion).
    /// Duplicate keys accumulate, so any bucket order round-trips.
    pub fn from_parts(zeros: u64, buckets: impl IntoIterator<Item = (i64, u64)>) -> Self {
        let mut out = QuantileSketch {
            zeros,
            ..Self::default()
        };
        for (k, c) in buckets {
            if c > 0 {
                *out.buckets.entry(k).or_insert(0) += c;
            }
        }
        out
    }

    /// Canonical serialization: `zeros;key:count,key:count,...` with
    /// keys ascending. Equal sketches serialize identically.
    pub fn serialize(&self) -> String {
        let mut out = format!("{};", self.zeros);
        for (i, (&k, &c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{k}:{c}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_bracket_their_samples() {
        for v in [1e-9, 0.5, 1.0, 3.7, 1024.0, 9.99e17] {
            let k = key_of(v);
            assert!(lower_of(k) <= v && v < upper_of(k), "v={v} key={k}");
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000u64 {
            s.record(i as f64);
        }
        assert_eq!(s.count(), 10_000);
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = s.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.05, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
    }

    #[test]
    fn zeros_negatives_and_nonfinite() {
        let mut s = QuantileSketch::new();
        s.record(0.0);
        s.record(-3.0);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 2);
        assert_eq!(s.zeros(), 2);
        assert!(s.quantile(0.99).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_equals_whole_stream() {
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..1000u64 {
            let v = (i as f64) * 0.37 + 0.01;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.serialize(), whole.serialize());
        assert_eq!(ba.serialize(), whole.serialize());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut s = QuantileSketch::new();
        for v in [0.0, 1.5, 1.5, 80.0, 1e6] {
            s.record(v);
        }
        let rebuilt = QuantileSketch::from_parts(s.zeros(), s.buckets());
        assert_eq!(rebuilt.serialize(), s.serialize());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn empty_sketch_is_inert() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert!(s.quantile(0.5).abs() < f64::EPSILON);
        assert_eq!(s.serialize(), "0;");
    }
}
