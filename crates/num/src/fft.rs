//! Radix-2 fast Fourier transform.
//!
//! The two-tone intermodulation test in `rfkit-circuit` drives the nonlinear
//! device model in the time domain and reads tone amplitudes back out of the
//! spectrum; this module supplies the transform. Only power-of-two sizes are
//! accelerated; other sizes fall back to a direct DFT, which is plenty for
//! the short records used in tests.

use crate::complex::Complex;
use std::f64::consts::PI;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (use [`dft`] for arbitrary
/// sizes).
///
/// # Examples
///
/// ```
/// use rfkit_num::{fft, Complex};
/// let mut x = vec![Complex::ONE; 4];
/// fft::fft(&mut x);
/// assert!((x[0] - Complex::real(4.0)).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// ```
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT, normalized by `1/N` so `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit-reversal permutation.
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Direct O(N²) discrete Fourier transform for arbitrary lengths.
pub fn dft(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in data.iter().enumerate() {
                let ang = -2.0 * PI * (k * t % n) as f64 / n as f64;
                acc += x * Complex::from_polar(1.0, ang);
            }
            acc
        })
        .collect()
}

/// FFT of a real-valued signal; returns the full complex spectrum.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
    fft(&mut data);
    data
}

/// Single-sided amplitude spectrum of a real signal: `2|X[k]|/N` for
/// `0 < k < N/2`, `|X[0]|/N` at DC.
///
/// # Panics
///
/// Panics if `signal.len()` is not a power of two.
pub fn amplitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let spec = fft_real(signal);
    let mut out = Vec::with_capacity(n / 2 + 1);
    for (k, x) in spec.iter().take(n / 2 + 1).enumerate() {
        let scale = if k == 0 || k == n / 2 { 1.0 } else { 2.0 };
        out.push(scale * x.abs() / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let orig: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        let x: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let direct = dft(&x);
        let mut fast = x.clone();
        fft(&mut fast);
        for (a, b) in fast.iter().zip(&direct) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * k0 as f64 * t as f64 / n as f64).cos() * 3.0)
            .collect();
        let amp = amplitude_spectrum(&signal);
        assert!((amp[k0] - 3.0).abs() < 1e-10);
        for (k, a) in amp.iter().enumerate() {
            if k != k0 {
                assert!(*a < 1e-10, "leakage at bin {k}: {a}");
            }
        }
    }

    #[test]
    fn two_tone_amplitudes_recovered() {
        let n = 256;
        let signal: Vec<f64> = (0..n)
            .map(|t| {
                let t = t as f64 / n as f64;
                1.5 * (2.0 * PI * 10.0 * t).cos() + 0.25 * (2.0 * PI * 30.0 * t).sin()
            })
            .collect();
        let amp = amplitude_spectrum(&signal);
        assert!((amp[10] - 1.5).abs() < 1e-10);
        assert!((amp[30] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 6];
        fft(&mut x);
    }

    #[test]
    fn dft_handles_arbitrary_length() {
        let x = vec![Complex::ONE; 5];
        let spec = dft(&x);
        assert!((spec[0] - Complex::real(5.0)).abs() < 1e-12);
        for v in &spec[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn trivial_lengths() {
        let mut x = vec![Complex::new(2.0, 1.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex::new(2.0, 1.0));
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty); // must not panic: 0 is not a power of two? it is not.
    }

    use std::f64::consts::PI;
}
