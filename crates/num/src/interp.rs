//! One-dimensional interpolation on tabulated data.
//!
//! Vendor component data (Q versus frequency, ESR versus frequency) and
//! "measured" golden-device data are tables; the models in `rfkit-passive`
//! interpolate them. Linear interpolation and natural cubic splines are
//! provided, both with configurable out-of-range behaviour.

/// What to do when an interpolation query falls outside the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolation {
    /// Clamp to the nearest endpoint value (default; safest for Q/ESR data).
    #[default]
    Clamp,
    /// Extend the boundary segment/derivative linearly.
    Linear,
    /// Panic on out-of-range queries.
    Forbid,
}

/// Error from constructing an interpolant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Fewer than two samples were provided.
    TooFewSamples,
    /// The abscissae are not strictly increasing.
    NotIncreasing,
    /// `x` and `y` lengths differ.
    LengthMismatch,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::TooFewSamples => write!(f, "need at least two samples"),
            InterpError::NotIncreasing => write!(f, "abscissae must be strictly increasing"),
            InterpError::LengthMismatch => write!(f, "x and y lengths differ"),
        }
    }
}

impl std::error::Error for InterpError {}

fn validate(x: &[f64], y: &[f64]) -> Result<(), InterpError> {
    if x.len() != y.len() {
        return Err(InterpError::LengthMismatch);
    }
    if x.len() < 2 {
        return Err(InterpError::TooFewSamples);
    }
    if x.windows(2).any(|w| w[0] >= w[1]) {
        return Err(InterpError::NotIncreasing);
    }
    Ok(())
}

/// Piecewise-linear interpolant.
///
/// # Examples
///
/// ```
/// use rfkit_num::interp::{LinearInterp, Extrapolation};
/// let f = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(3.0), 0.0); // clamped by default
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    x: Vec<f64>,
    y: Vec<f64>,
    extrapolation: Extrapolation,
}

impl LinearInterp {
    /// Creates an interpolant over strictly increasing `x`.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, InterpError> {
        validate(&x, &y)?;
        Ok(LinearInterp {
            x,
            y,
            extrapolation: Extrapolation::Clamp,
        })
    }

    /// Sets the out-of-range behaviour.
    pub fn with_extrapolation(mut self, mode: Extrapolation) -> Self {
        self.extrapolation = mode;
        self
    }

    /// Evaluates the interpolant.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `t` when extrapolation is
    /// [`Extrapolation::Forbid`].
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.x.len();
        if t < self.x[0] || t > self.x[n - 1] {
            match self.extrapolation {
                Extrapolation::Clamp => {
                    return if t < self.x[0] {
                        self.y[0]
                    } else {
                        self.y[n - 1]
                    };
                }
                Extrapolation::Forbid => {
                    panic!(
                        "interpolation query {t} outside [{}, {}]",
                        self.x[0],
                        self.x[n - 1]
                    )
                }
                Extrapolation::Linear => {} // fall through to segment extension
            }
        }
        let seg = segment(&self.x, t);
        let (x0, x1) = (self.x[seg], self.x[seg + 1]);
        let (y0, y1) = (self.y[seg], self.y[seg + 1]);
        let out = y0 + (y1 - y0) * (t - x0) / (x1 - x0);
        #[cfg(feature = "numsan")]
        crate::numsan::check_finite_f64(out, "LinearInterp::eval", &[t, y0, y1], file!(), line!());
        out
    }
}

/// Natural cubic spline (second derivative zero at both ends).
#[derive(Debug, Clone, PartialEq)]
pub struct CubicSpline {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Second derivatives at the knots.
    ypp: Vec<f64>,
    extrapolation: Extrapolation,
}

impl CubicSpline {
    /// Builds a natural cubic spline through the samples.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, InterpError> {
        validate(&x, &y)?;
        let n = x.len();
        // Thomas algorithm on the tridiagonal spline system.
        let mut ypp = vec![0.0; n];
        if n > 2 {
            let m = n - 2;
            let mut diag = vec![0.0; m];
            let mut upper = vec![0.0; m];
            let mut rhs = vec![0.0; m];
            for i in 0..m {
                let h0 = x[i + 1] - x[i];
                let h1 = x[i + 2] - x[i + 1];
                diag[i] = 2.0 * (h0 + h1);
                upper[i] = h1;
                rhs[i] = 6.0 * ((y[i + 2] - y[i + 1]) / h1 - (y[i + 1] - y[i]) / h0);
            }
            // forward sweep (lower diagonal equals previous upper)
            for i in 1..m {
                let lower = x[i + 1] - x[i];
                let w = lower / diag[i - 1];
                diag[i] -= w * upper[i - 1];
                rhs[i] -= w * rhs[i - 1];
            }
            ypp[m] = rhs[m - 1] / diag[m - 1];
            for i in (1..m).rev() {
                ypp[i] = (rhs[i - 1] - upper[i - 1] * ypp[i]) / diag[i - 1];
            }
        }
        Ok(CubicSpline {
            x,
            y,
            ypp,
            extrapolation: Extrapolation::Clamp,
        })
    }

    /// Sets the out-of-range behaviour.
    pub fn with_extrapolation(mut self, mode: Extrapolation) -> Self {
        self.extrapolation = mode;
        self
    }

    /// Evaluates the spline.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `t` when extrapolation is
    /// [`Extrapolation::Forbid`].
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.x.len();
        if t < self.x[0] || t > self.x[n - 1] {
            match self.extrapolation {
                Extrapolation::Clamp => {
                    return if t < self.x[0] {
                        self.y[0]
                    } else {
                        self.y[n - 1]
                    };
                }
                Extrapolation::Forbid => {
                    panic!(
                        "interpolation query {t} outside [{}, {}]",
                        self.x[0],
                        self.x[n - 1]
                    )
                }
                Extrapolation::Linear => {
                    // Extend with the boundary slope.
                    let (i0, i1) = if t < self.x[0] {
                        (0, 1)
                    } else {
                        (n - 2, n - 1)
                    };
                    let slope = self.slope_at_knot(i0, i1, t < self.x[0]);
                    let (xr, yr) = if t < self.x[0] {
                        (self.x[0], self.y[0])
                    } else {
                        (self.x[n - 1], self.y[n - 1])
                    };
                    return yr + slope * (t - xr);
                }
            }
        }
        let seg = segment(&self.x, t);
        let h = self.x[seg + 1] - self.x[seg];
        let a = (self.x[seg + 1] - t) / h;
        let b = (t - self.x[seg]) / h;
        let out = a * self.y[seg]
            + b * self.y[seg + 1]
            + ((a * a * a - a) * self.ypp[seg] + (b * b * b - b) * self.ypp[seg + 1]) * h * h / 6.0;
        #[cfg(feature = "numsan")]
        crate::numsan::check_finite_f64(
            out,
            "CubicSpline::eval",
            &[t, self.y[seg], self.y[seg + 1]],
            file!(),
            line!(),
        );
        out
    }

    fn slope_at_knot(&self, i0: usize, i1: usize, at_left: bool) -> f64 {
        let h = self.x[i1] - self.x[i0];
        let d = (self.y[i1] - self.y[i0]) / h;
        if at_left {
            d - h / 6.0 * (2.0 * self.ypp[i0] + self.ypp[i1])
        } else {
            d + h / 6.0 * (self.ypp[i0] + 2.0 * self.ypp[i1])
        }
    }
}

/// Finds the segment index `i` such that `x[i] <= t <= x[i+1]` (clamped).
///
/// `total_cmp` gives NaN a defined position (after +∞), so a NaN query
/// deterministically selects the last segment instead of panicking; the
/// NaN then propagates through the arithmetic where the `numsan`
/// sanitizer can attribute it.
fn segment(x: &[f64], t: f64) -> usize {
    let n = x.len();
    match x.binary_search_by(|v| crate::total_cmp_f64(v, &t)) {
        Ok(i) => i.min(n - 2),
        Err(i) => i.saturating_sub(1).min(n - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_knots_and_midpoints() {
        let f = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![1.0, 3.0, -1.0]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(1.0), 3.0);
        assert_eq!(f.eval(3.0), -1.0);
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.eval(2.0), 1.0);
    }

    #[test]
    fn linear_clamps_by_default() {
        let f = LinearInterp::new(vec![0.0, 1.0], vec![2.0, 4.0]).unwrap();
        assert_eq!(f.eval(-5.0), 2.0);
        assert_eq!(f.eval(9.0), 4.0);
    }

    #[test]
    fn linear_extrapolation_extends_segment() {
        let f = LinearInterp::new(vec![0.0, 1.0], vec![2.0, 4.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Linear);
        assert_eq!(f.eval(2.0), 6.0);
        assert_eq!(f.eval(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn forbid_panics_out_of_range() {
        let f = LinearInterp::new(vec![0.0, 1.0], vec![0.0, 1.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Forbid);
        f.eval(2.0);
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(
            LinearInterp::new(vec![0.0], vec![1.0]).unwrap_err(),
            InterpError::TooFewSamples
        );
        assert_eq!(
            LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            InterpError::NotIncreasing
        );
        assert_eq!(
            LinearInterp::new(vec![0.0, 1.0], vec![1.0]).unwrap_err(),
            InterpError::LengthMismatch
        );
    }

    #[test]
    fn spline_interpolates_knots_exactly() {
        let x = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let y = vec![0.0, 1.0, 0.0, -1.0, 0.0];
        let s = CubicSpline::new(x.clone(), y.clone()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((s.eval(*xi) - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn spline_reproduces_smooth_function_closely() {
        let x: Vec<f64> = (0..21).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&t| (3.0 * t).sin()).collect();
        let s = CubicSpline::new(x, y).unwrap();
        for i in 0..200 {
            let t = 0.005 + i as f64 * 0.0095;
            assert!((s.eval(t) - (3.0 * t).sin()).abs() < 5e-3, "at t={t}");
        }
    }

    #[test]
    fn spline_is_linear_for_two_points() {
        let s = CubicSpline::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert!((s.eval(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spline_linear_extrapolation_is_continuous() {
        let s = CubicSpline::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 4.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Linear);
        let eps = 1e-7;
        let inside = s.eval(2.0 - eps);
        let outside = s.eval(2.0 + eps);
        assert!((inside - outside).abs() < 1e-4);
        let inside_l = s.eval(eps);
        let outside_l = s.eval(-eps);
        assert!((inside_l - outside_l).abs() < 1e-4);
    }
}
