//! Finite-difference derivatives and Jacobians.
//!
//! The device models provide analytic transconductance where tractable, but
//! higher-order derivatives (needed for the IM3 power series) and optimizer
//! Jacobians (Levenberg–Marquardt) use these central-difference helpers.

/// Relative step used when none is supplied; `cbrt(eps)` balances truncation
/// against round-off for central differences.
fn default_step(x: f64) -> f64 {
    let h = f64::EPSILON.cbrt();
    h * x.abs().max(1.0)
}

/// First derivative by central difference.
///
/// # Examples
///
/// ```
/// use rfkit_num::diff::derivative;
/// let d = derivative(|x| x * x, 3.0, None);
/// assert!((d - 6.0).abs() < 1e-6);
/// ```
pub fn derivative(f: impl Fn(f64) -> f64, x: f64, step: Option<f64>) -> f64 {
    let h = step.unwrap_or_else(|| default_step(x));
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Second derivative by central difference.
pub fn second_derivative(f: impl Fn(f64) -> f64, x: f64, step: Option<f64>) -> f64 {
    let h = step.unwrap_or_else(|| f64::EPSILON.powf(0.25) * x.abs().max(1.0));
    (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
}

/// Third derivative by the central stencil
/// `(f(x+2h) - 2f(x+h) + 2f(x-h) - f(x-2h)) / (2h³)`.
///
/// Used to obtain `g_m3 = ∂³I_ds/∂V_gs³` for intermodulation analysis.
pub fn third_derivative(f: impl Fn(f64) -> f64, x: f64, step: Option<f64>) -> f64 {
    let h = step.unwrap_or_else(|| f64::EPSILON.powf(1.0 / 6.0) * x.abs().max(1.0) * 0.1);
    (f(x + 2.0 * h) - 2.0 * f(x + h) + 2.0 * f(x - h) - f(x - 2.0 * h)) / (2.0 * h * h * h)
}

/// Gradient of a scalar function of a vector, by central differences.
pub fn gradient(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let h = default_step(x[i]);
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f(&xp);
        xp[i] = orig - h;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Jacobian of a vector residual function `r: R^n -> R^m`, row `i` holding
/// `∂r_i/∂x_j`. Returned in row-major order as `m` rows of length `n`.
pub fn jacobian(f: impl Fn(&[f64]) -> Vec<f64>, x: &[f64]) -> Vec<Vec<f64>> {
    let n = x.len();
    let r0 = f(x);
    let m = r0.len();
    let mut jac = vec![vec![0.0; n]; m];
    let mut xp = x.to_vec();
    for j in 0..n {
        let h = default_step(x[j]);
        let orig = xp[j];
        xp[j] = orig + h;
        let rp = f(&xp);
        xp[j] = orig - h;
        let rm = f(&xp);
        xp[j] = orig;
        assert_eq!(rp.len(), m, "residual length must not vary");
        for i in 0..m {
            jac[i][j] = (rp[i] - rm[i]) / (2.0 * h);
        }
    }
    jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_polynomial() {
        let f = |x: f64| 2.0 * x * x * x - x;
        assert!((derivative(f, 2.0, None) - 23.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_of_exp() {
        let d = derivative(f64::exp, 1.0, None);
        assert!((d - std::f64::consts::E).abs() < 1e-7);
    }

    #[test]
    fn second_derivative_of_sin() {
        let d2 = second_derivative(f64::sin, 0.7, None);
        assert!((d2 + 0.7_f64.sin()).abs() < 1e-5);
    }

    #[test]
    fn third_derivative_of_cubic_is_constant() {
        let f = |x: f64| x * x * x;
        let d3 = third_derivative(f, 0.5, None);
        assert!((d3 - 6.0).abs() < 1e-3, "got {d3}");
    }

    #[test]
    fn third_derivative_of_tanh_matches_analytic() {
        // d³/dx³ tanh = -2 sech²(x) (2 sech²(x) - 3 tanh²(x) ... use known value at 0: -2
        let d3 = third_derivative(f64::tanh, 0.0, None);
        assert!((d3 + 2.0).abs() < 1e-3, "got {d3}");
    }

    #[test]
    fn gradient_of_quadratic_form() {
        // f = x² + 3y² → grad = (2x, 6y)
        let f = |v: &[f64]| v[0] * v[0] + 3.0 * v[1] * v[1];
        let g = gradient(f, &[1.0, -2.0]);
        assert!((g[0] - 2.0).abs() < 1e-6);
        assert!((g[1] + 12.0).abs() < 1e-6);
    }

    #[test]
    fn jacobian_of_linear_map_is_its_matrix() {
        let f = |v: &[f64]| vec![2.0 * v[0] + v[1], -v[0] + 3.0 * v[1], v[0]];
        let j = jacobian(f, &[0.3, 0.4]);
        let expect = [[2.0, 1.0], [-1.0, 3.0], [1.0, 0.0]];
        for (row, erow) in j.iter().zip(&expect) {
            for (a, b) in row.iter().zip(erow) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn step_scales_with_magnitude() {
        // A huge abscissa must not destroy accuracy through absolute steps.
        let f = |x: f64| x * x;
        let d = derivative(f, 1e8, None);
        assert!((d - 2e8).abs() / 2e8 < 1e-6);
    }
}
