//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use rfkit_num::{fft, stats, Complex, Matrix, Polynomial, RMatrix};

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |x| x.is_finite())
}

fn complex_strategy() -> impl Strategy<Value = Complex> {
    (finite_f64(-1e3..1e3), finite_f64(-1e3..1e3)).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    #[test]
    fn complex_add_commutes(a in complex_strategy(), b in complex_strategy()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn complex_mul_commutes(a in complex_strategy(), b in complex_strategy()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
    }

    #[test]
    fn complex_mul_distributes(a in complex_strategy(), b in complex_strategy(), c in complex_strategy()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
    }

    #[test]
    fn conj_is_involution(a in complex_strategy()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn abs_is_multiplicative(a in complex_strategy(), b in complex_strategy()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn sqrt_squares_back(a in complex_strategy()) {
        let r = a.sqrt();
        let sq = r * r;
        prop_assert!((sq - a).abs() <= 1e-7 * a.abs().max(1.0));
    }

    #[test]
    fn polar_roundtrip(r in 1e-6..1e3f64, theta in -3.1..3.1f64) {
        let z = Complex::from_polar(r, theta);
        prop_assert!((z.abs() - r).abs() <= 1e-9 * r);
        prop_assert!((z.arg() - theta).abs() <= 1e-9);
    }
}

fn small_matrix() -> impl Strategy<Value = RMatrix> {
    (2usize..5).prop_flat_map(|n| {
        proptest::collection::vec(finite_f64(-10.0..10.0), n * n)
            .prop_map(move |data| Matrix::from_fn(n, n, |i, j| data[i * n + j]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_then_multiply_recovers_rhs(a in small_matrix(), seed in 0u64..1000) {
        // Skip near-singular draws.
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        if let Ok(x) = a.solve(&b) {
            let b2 = a.matvec(&x);
            for (u, v) in b.iter().zip(&b2) {
                prop_assert!((u - v).abs() <= 1e-6 * u.abs().max(1.0));
            }
        }
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in small_matrix(), b in small_matrix()) {
        if a.rows() == b.rows() {
            let da = a.det().unwrap();
            let db = b.det().unwrap();
            let dab = a.matmul(&b).unwrap().det().unwrap();
            prop_assert!((dab - da * db).abs() <= 1e-6 * dab.abs().max(da.abs() * db.abs()).max(1.0));
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fft_roundtrip_property(xs in proptest::collection::vec(finite_f64(-100.0..100.0), 16)) {
        let orig: Vec<Complex> = xs.iter().map(|&x| Complex::real(x)).collect();
        let mut data = orig.clone();
        fft::fft(&mut data);
        fft::ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn polynomial_fit_interpolates_exactly_at_degree(coeffs in proptest::collection::vec(finite_f64(-5.0..5.0), 1..5)) {
        let p = Polynomial::new(coeffs);
        let deg = p.degree();
        let x: Vec<f64> = (0..(deg + 3)).map(|i| i as f64 * 0.5 - 1.0).collect();
        let y: Vec<f64> = x.iter().map(|&xi| p.eval(xi)).collect();
        if let Ok(fit) = Polynomial::fit(&x, &y, deg) {
            for &xi in &x {
                prop_assert!((fit.eval(xi) - p.eval(xi)).abs() <= 1e-5 * p.eval(xi).abs().max(1.0));
            }
        }
    }

    #[test]
    fn percentile_is_monotone(xs in proptest::collection::vec(finite_f64(-100.0..100.0), 1..30), p in 0.0..100.0f64, q in 0.0..100.0f64) {
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        prop_assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn mean_bounded_by_min_max(xs in proptest::collection::vec(finite_f64(-100.0..100.0), 1..30)) {
        let m = stats::mean(&xs);
        prop_assert!(m >= stats::min(&xs) - 1e-9 && m <= stats::max(&xs) + 1e-9);
    }
}
