//! Property-based tests for the numerics substrate. Cases come from a
//! fixed-seed `Rng64` stream (the workspace builds offline, so no
//! proptest), which keeps every run reproducible.

use rfkit_num::rng::Rng64;
use rfkit_num::{fft, stats, Complex, Matrix, Polynomial, RMatrix};

fn complex_in(rng: &mut Rng64, lo: f64, hi: f64) -> Complex {
    Complex::new(rng.uniform(lo, hi), rng.uniform(lo, hi))
}

#[test]
fn complex_field_laws() {
    let mut rng = Rng64::new(0x0c0a_0001);
    for _ in 0..256 {
        let a = complex_in(&mut rng, -1e3, 1e3);
        let b = complex_in(&mut rng, -1e3, 1e3);
        let c = complex_in(&mut rng, -1e3, 1e3);
        // Addition commutes exactly.
        assert_eq!(a + b, b + a);
        // Multiplication commutes to rounding.
        let (ab, ba) = (a * b, b * a);
        assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
        // Distributivity to rounding.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(1.0));
        // Conjugation is an involution; |·| is multiplicative.
        assert_eq!(a.conj().conj(), a);
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() <= 1e-6 * (a.abs() * b.abs()).max(1.0));
        // sqrt squares back.
        let r = a.sqrt();
        assert!((r * r - a).abs() <= 1e-7 * a.abs().max(1.0));
    }
}

#[test]
fn polar_roundtrip() {
    let mut rng = Rng64::new(0x0c0a_0002);
    for _ in 0..256 {
        let r = rng.uniform(1e-6, 1e3);
        let theta = rng.uniform(-3.1, 3.1);
        let z = Complex::from_polar(r, theta);
        assert!((z.abs() - r).abs() <= 1e-9 * r);
        assert!((z.arg() - theta).abs() <= 1e-9);
    }
}

fn small_matrix(rng: &mut Rng64) -> RMatrix {
    let n = 2 + rng.index(3);
    let data: Vec<f64> = (0..n * n).map(|_| rng.uniform(-10.0, 10.0)).collect();
    Matrix::from_fn(n, n, |i, j| data[i * n + j])
}

#[test]
fn solve_then_multiply_recovers_rhs() {
    let mut rng = Rng64::new(0x0c0a_0003);
    for seed in 0..64u64 {
        let a = small_matrix(&mut rng);
        let n = a.rows();
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let b = a.matvec(&x_true);
        // Near-singular draws may fail to solve; that's fine.
        if let Ok(x) = a.solve(&b) {
            let b2 = a.matvec(&x);
            for (u, v) in b.iter().zip(&b2) {
                assert!((u - v).abs() <= 1e-6 * u.abs().max(1.0));
            }
        }
    }
}

#[test]
fn det_of_product_is_product_of_dets() {
    let mut rng = Rng64::new(0x0c0a_0004);
    for _ in 0..64 {
        let a = small_matrix(&mut rng);
        let b = small_matrix(&mut rng);
        if a.rows() == b.rows() {
            let da = a.det().unwrap();
            let db = b.det().unwrap();
            let dab = a.matmul(&b).unwrap().det().unwrap();
            assert!((dab - da * db).abs() <= 1e-6 * dab.abs().max(da.abs() * db.abs()).max(1.0));
        }
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = Rng64::new(0x0c0a_0005);
    for _ in 0..64 {
        let a = small_matrix(&mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn fft_roundtrip_property() {
    let mut rng = Rng64::new(0x0c0a_0006);
    for _ in 0..32 {
        let orig: Vec<Complex> = (0..16)
            .map(|_| Complex::real(rng.uniform(-100.0, 100.0)))
            .collect();
        let mut data = orig.clone();
        fft::fft(&mut data);
        fft::ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }
}

#[test]
fn polynomial_fit_interpolates_exactly_at_degree() {
    let mut rng = Rng64::new(0x0c0a_0007);
    for _ in 0..32 {
        let n_coeffs = 1 + rng.index(4);
        let coeffs: Vec<f64> = (0..n_coeffs).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let p = Polynomial::new(coeffs);
        let deg = p.degree();
        let x: Vec<f64> = (0..(deg + 3)).map(|i| i as f64 * 0.5 - 1.0).collect();
        let y: Vec<f64> = x.iter().map(|&xi| p.eval(xi)).collect();
        if let Ok(fit) = Polynomial::fit(&x, &y, deg) {
            for &xi in &x {
                assert!((fit.eval(xi) - p.eval(xi)).abs() <= 1e-5 * p.eval(xi).abs().max(1.0));
            }
        }
    }
}

#[test]
fn percentile_is_monotone_and_mean_bounded() {
    let mut rng = Rng64::new(0x0c0a_0008);
    for _ in 0..32 {
        let n = 1 + rng.index(29);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let p = rng.uniform(0.0, 100.0);
        let q = rng.uniform(0.0, 100.0);
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-12);
        let m = stats::mean(&xs);
        assert!(m >= stats::min(&xs) - 1e-9 && m <= stats::max(&xs) + 1e-9);
    }
}
