//! Merge-associativity and determinism contract for `QuantileSketch`.
//!
//! The observability layer merges per-worker sketches in whatever order
//! the pool finishes, so the profile artifact is only deterministic if
//! every merge order of every partition of a stream serializes
//! identically. These are seeded-loop property tests in the house style
//! (no external proptest crate): many seeds, adversarial partitions,
//! and a real 1-vs-4-thread run.

use rfkit_num::rng::Rng64;
use rfkit_num::QuantileSketch;

/// Seeded stream of plausible telemetry samples: mixed magnitudes,
/// exact zeros, and occasional garbage (negative / non-finite) that the
/// sketch must drop or clamp identically everywhere.
fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|_| match (rng.next_u64() % 16) as u8 {
            0 => 0.0,
            1 => rng.uniform(-5.0, 0.0),
            2 => f64::NAN,
            3 => rng.uniform(0.0, 1e-6),
            4..=9 => rng.uniform(1.0, 1e3),
            _ => rng.uniform(1e3, 1e9),
        })
        .collect()
}

fn ingest(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.record(v);
    }
    s
}

#[test]
fn any_partition_any_merge_order_is_identical() {
    for seed in 0..32u64 {
        let xs = stream(0xdead_0000 + seed, 500);
        let whole = ingest(&xs);

        // Partition into k chunks at seeded cut points, then merge the
        // parts in forward, reverse, and interleaved order.
        let mut rng = Rng64::new(0xbeef ^ seed);
        let k = 2 + (rng.next_u64() % 5) as usize;
        let parts: Vec<QuantileSketch> = xs.chunks(xs.len().div_ceil(k)).map(ingest).collect();

        let mut forward = QuantileSketch::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = QuantileSketch::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        // Pairwise tree merge: ((p0+p1) + (p2+p3)) + ...
        let mut level: Vec<QuantileSketch> = parts.clone();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(rhs) = pair.get(1) {
                    m.merge(rhs);
                }
                next.push(m);
            }
            level = next;
        }

        for (label, got) in [
            ("forward", &forward),
            ("reverse", &reverse),
            ("tree", &level[0]),
        ] {
            assert_eq!(
                got.serialize(),
                whole.serialize(),
                "seed {seed}: {label} merge diverged from whole-stream ingest"
            );
        }
    }
}

#[test]
fn one_vs_four_worker_threads_serialize_identically() {
    let xs = stream(0x51e7c4, 4000);
    let single = ingest(&xs);

    // Four workers each ingest a strided share concurrently, then the
    // collector merges in join order (worker 3 first — deliberately not
    // the spawn order).
    let shares: Vec<Vec<f64>> = (0..4)
        .map(|w| {
            xs.iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == w)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect();
    let handles: Vec<_> = shares
        .into_iter()
        .map(|share| std::thread::spawn(move || ingest(&share)))
        .collect();
    let mut done: Vec<QuantileSketch> = handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .collect();
    done.reverse();
    let mut merged = QuantileSketch::new();
    for s in &done {
        merged.merge(s);
    }

    assert_eq!(merged.serialize(), single.serialize());
    assert_eq!(merged.count(), single.count());
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q).to_bits(), single.quantile(q).to_bits());
    }
}

#[test]
fn serialization_round_trips_through_parts() {
    for seed in [1u64, 7, 42] {
        let s = ingest(&stream(seed, 300));
        let rebuilt = QuantileSketch::from_parts(s.zeros(), s.buckets());
        assert_eq!(rebuilt.serialize(), s.serialize());
    }
}
