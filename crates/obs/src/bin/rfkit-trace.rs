//! Summarize, render and diff rfkit-obs artifacts.
//!
//! ```text
//! rfkit-trace [--json] [--top N] [--profile] [--expect NAME]...
//!             [--expect-max NAME:N]... [--expect-min NAME:N]... <file>
//! rfkit-trace tree  [--top N] <profile.json>
//! rfkit-trace flame <profile.json>
//! rfkit-trace diff  [--rel-tol X] [--min-self-us N] <baseline.json> <current.json>
//! ```
//!
//! The default mode summarizes either artifact format — a JSONL trace
//! or an aggregate `PROFILE_*.json` (auto-detected; `--profile` forces
//! the latter) — and prints top spans by self-time, counter totals,
//! histogram percentiles and a convergence table; `--json` emits the
//! same aggregates as one JSON object.
//!
//! Assertions (all exit 1 on failure; CI builds on them):
//!
//! * `--expect NAME` — a span, counter or histogram with that name is
//!   present. Proves an armed run actually traced the pipeline.
//! * `--expect-max NAME:N` — counter `NAME` totals at most `N`; an
//!   absent counter counts as 0 and passes. Bounds rates, e.g. pivot
//!   refactors per sweep.
//! * `--expect-min NAME:N` — counter `NAME` totals at least `N`; an
//!   absent counter counts as 0 and fails for `N > 0`. Proves work
//!   actually happened (a cache that never hit, a sweep that never
//!   swept — both pass a `--expect` presence check on another name
//!   while silently doing nothing).
//!
//! Profile views:
//!
//! * `tree` — indented call-path profile with count/self/total/self%
//!   columns, parents above children.
//! * `flame` — folded flamegraph stacks (`path self_us` per line),
//!   pipe into any folded-stack consumer.
//! * `diff` — compare two profiles path-by-path on self time. A path
//!   regresses when `current > baseline * rel-tol` (default 1.5) and
//!   its self time is at least `min-self-us` (default 1000) on one
//!   side; exits 1 when any path regressed, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use rfkit_obs::{profile, summary};

fn usage(err: &str) -> ExitCode {
    eprintln!("rfkit-trace: {err}");
    eprintln!(
        "usage: rfkit-trace [--json] [--top N] [--profile] [--expect NAME]... \
         [--expect-max NAME:N]... [--expect-min NAME:N]... <file>\n\
         \x20      rfkit-trace tree  [--top N] <profile.json>\n\
         \x20      rfkit-trace flame <profile.json>\n\
         \x20      rfkit-trace diff  [--rel-tol X] [--min-self-us N] <baseline.json> <current.json>"
    );
    ExitCode::from(2)
}

fn read(path: &PathBuf) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("rfkit-trace: cannot read {}: {e}", path.display());
        ExitCode::from(2)
    })
}

fn read_profile(path: &PathBuf) -> Result<profile::Profile, ExitCode> {
    let text = read(path)?;
    profile::parse(&text).map_err(|e| {
        eprintln!("rfkit-trace: {}: {e}", path.display());
        ExitCode::from(2)
    })
}

fn parse_bound(flag: &str, v: &str) -> Result<(String, u64), String> {
    let Some((name, limit)) = v.rsplit_once(':') else {
        return Err(format!("{flag} `{v}` is not NAME:N"));
    };
    let Ok(limit) = limit.parse::<u64>() else {
        return Err(format!("{flag} `{v}` needs an integer bound"));
    };
    Ok((name.to_string(), limit))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tree") => cmd_tree(&args[1..]),
        Some("flame") => cmd_flame(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => cmd_summarize(&args),
    }
}

fn cmd_tree(args: &[String]) -> ExitCode {
    let mut top = 100usize;
    let mut input: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top needs a number"),
            },
            other if other.starts_with('-') => {
                return usage(&format!("unknown argument `{other}`"))
            }
            other => {
                if input.is_some() {
                    return usage("tree takes exactly one profile");
                }
                input = Some(PathBuf::from(other));
            }
        }
    }
    let Some(path) = input else {
        return usage("tree needs a profile file");
    };
    match read_profile(&path) {
        Ok(p) => {
            print!("{}", profile::render_tree(&p, top));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn cmd_flame(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage("flame takes exactly one profile");
    };
    match read_profile(&PathBuf::from(path)) {
        Ok(p) => {
            print!("{}", profile::render_flame(&p));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut rel_tol = 1.5f64;
    let mut min_self_us = 1000u64;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rel-tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 1.0 => rel_tol = x,
                _ => return usage("--rel-tol needs a ratio > 1"),
            },
            "--min-self-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_self_us = n,
                None => return usage("--min-self-us needs a number"),
            },
            other if other.starts_with('-') => {
                return usage(&format!("unknown argument `{other}`"))
            }
            other => inputs.push(PathBuf::from(other)),
        }
    }
    let [base_path, cur_path] = inputs.as_slice() else {
        return usage("diff takes exactly <baseline.json> <current.json>");
    };
    let base = match read_profile(base_path) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let cur = match read_profile(cur_path) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let report = profile::diff(&base, &cur, rel_tol, min_self_us);
    print!("{}", profile::render_diff(&report, rel_tol, min_self_us));
    if report.regressed > 0 {
        eprintln!(
            "rfkit-trace: {} path(s) regressed beyond {rel_tol}x vs {}",
            report.regressed,
            base_path.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_summarize(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut force_profile = false;
    let mut top = 15usize;
    let mut expect: Vec<String> = Vec::new();
    let mut expect_max: Vec<(String, u64)> = Vec::new();
    let mut expect_min: Vec<(String, u64)> = Vec::new();
    let mut input: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--profile" => force_profile = true,
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top needs a number"),
            },
            "--expect" => match it.next() {
                Some(v) => expect.push(v.clone()),
                None => return usage("--expect needs a metric name"),
            },
            "--expect-max" => match it.next().map(|v| parse_bound("--expect-max", v)) {
                Some(Ok(pair)) => expect_max.push(pair),
                Some(Err(e)) => return usage(&e),
                None => return usage("--expect-max needs NAME:N"),
            },
            "--expect-min" => match it.next().map(|v| parse_bound("--expect-min", v)) {
                Some(Ok(pair)) => expect_min.push(pair),
                Some(Err(e)) => return usage(&e),
                None => return usage("--expect-min needs NAME:N"),
            },
            "--help" | "-h" => return usage("trace/profile summarizer and differ"),
            other if other.starts_with('-') => {
                return usage(&format!("unknown argument `{other}`"))
            }
            other => {
                if input.is_some() {
                    return usage("exactly one trace file expected");
                }
                input = Some(PathBuf::from(other));
            }
        }
    }
    let Some(path) = input else {
        return usage("missing trace file");
    };

    let text = match read(&path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let s = if force_profile || profile::is_profile(&text) {
        match profile::parse(&text) {
            Ok(p) => profile::to_summary(&p),
            Err(e) => {
                eprintln!("rfkit-trace: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match summary::summarize(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rfkit-trace: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    };
    if s.records == 0 {
        eprintln!("rfkit-trace: {} contains no trace records", path.display());
        return ExitCode::from(2);
    }

    if json {
        println!("{}", summary::render_json(&s));
    } else {
        print!("{}", summary::render_human(&s, top));
    }

    // An expectation is satisfied by any instrument kind: span, counter
    // or histogram. Bench and CI runs mix all three.
    let missing: Vec<&String> = expect
        .iter()
        .filter(|name| {
            !s.spans.iter().any(|a| &a.name == *name)
                && !s.counters.contains_key(*name)
                && !s.hists.contains_key(*name)
        })
        .collect();
    let mut failed = !missing.is_empty();
    for name in &missing {
        eprintln!("rfkit-trace: expected span/counter/hist `{name}` not found in trace");
    }
    // Bound checks: a counter that never fired totals 0, which passes
    // every --expect-max and fails any positive --expect-min.
    for (name, limit) in &expect_max {
        let total = s.counters.get(name).copied().unwrap_or(0);
        if total > *limit {
            eprintln!("rfkit-trace: counter `{name}` = {total} exceeds the bound {limit}");
            failed = true;
        }
    }
    for (name, floor) in &expect_min {
        let total = s.counters.get(name).copied().unwrap_or(0);
        if total < *floor {
            eprintln!("rfkit-trace: counter `{name}` = {total} is below the floor {floor}");
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
