//! Summarize a rfkit-obs JSONL trace.
//!
//! ```text
//! rfkit-trace [--json] [--top N] [--expect NAME]... [--expect-max NAME:N]... <trace.jsonl>
//! ```
//!
//! Prints top spans by self-time, counter totals, histogram
//! percentiles and a per-optimizer convergence table; `--json` emits
//! the same aggregates as one JSON object. Each `--expect NAME`
//! asserts that a span, counter or histogram with that name is present
//! (exit 1 otherwise) — CI uses this to prove an armed run actually
//! traced the pipeline. Each `--expect-max NAME:N` asserts that the
//! counter `NAME` totals at most `N` (an absent counter counts as 0 and
//! passes) — CI uses this to bound rates, e.g. that the batched sweep's
//! pivot-reuse refactor count stays far below the grid size.

use std::path::PathBuf;
use std::process::ExitCode;

use rfkit_obs::summary;

fn usage(err: &str) -> ExitCode {
    eprintln!("rfkit-trace: {err}");
    eprintln!(
        "usage: rfkit-trace [--json] [--top N] [--expect NAME]... [--expect-max NAME:N]... \
         <trace.jsonl>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut top = 15usize;
    let mut expect: Vec<String> = Vec::new();
    let mut expect_max: Vec<(String, u64)> = Vec::new();
    let mut input: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top needs a number"),
            },
            "--expect" => match args.next() {
                Some(v) => expect.push(v),
                None => return usage("--expect needs a metric name"),
            },
            "--expect-max" => {
                let Some(v) = args.next() else {
                    return usage("--expect-max needs NAME:N");
                };
                let Some((name, limit)) = v.rsplit_once(':') else {
                    return usage(&format!("--expect-max `{v}` is not NAME:N"));
                };
                let Ok(limit) = limit.parse::<u64>() else {
                    return usage(&format!("--expect-max `{v}` needs an integer bound"));
                };
                expect_max.push((name.to_string(), limit));
            }
            "--help" | "-h" => return usage("trace summarizer"),
            other if other.starts_with('-') => {
                return usage(&format!("unknown argument `{other}`"))
            }
            other => {
                if input.is_some() {
                    return usage("exactly one trace file expected");
                }
                input = Some(PathBuf::from(other));
            }
        }
    }
    let Some(path) = input else {
        return usage("missing trace file");
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rfkit-trace: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let s = match summary::summarize(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rfkit-trace: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if s.records == 0 {
        eprintln!("rfkit-trace: {} contains no trace records", path.display());
        return ExitCode::from(2);
    }

    if json {
        println!("{}", summary::render_json(&s));
    } else {
        print!("{}", summary::render_human(&s, top));
    }

    // An expectation is satisfied by any instrument kind: span, counter
    // or histogram. Bench and CI runs mix all three.
    let missing: Vec<&String> = expect
        .iter()
        .filter(|name| {
            !s.spans.iter().any(|a| &a.name == *name)
                && !s.counters.contains_key(*name)
                && !s.hists.contains_key(*name)
        })
        .collect();
    if !missing.is_empty() {
        for name in &missing {
            eprintln!("rfkit-trace: expected span/counter/hist `{name}` not found in trace");
        }
        return ExitCode::FAILURE;
    }
    // Bound checks: a counter that never fired totals 0 and passes.
    let mut over = false;
    for (name, limit) in &expect_max {
        let total = s.counters.get(name).copied().unwrap_or(0);
        if total > *limit {
            eprintln!("rfkit-trace: counter `{name}` = {total} exceeds the bound {limit}");
            over = true;
        }
    }
    if over {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
