//! Minimal hand-rolled JSON: an object writer for the sink and a
//! recursive-descent parser for `rfkit-trace`. No external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental JSON object writer.
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start an empty object.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Add a numeric field; non-finite values become `null`.
    pub fn num(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
    }

    /// Add a pre-serialised value verbatim (arrays, nested objects).
    pub fn raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(v);
    }

    /// Close the object and return the serialised string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escape a string for embedding in a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialise a finite f64 compactly (integers without a fraction);
/// NaN/inf become `null` so the output stays valid JSON.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced by the writer for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with source-order-insensitive key lookup.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array contents if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

/// Parse one complete JSON value from `src` (trailing garbage is an
/// error — trace lines are exactly one value each).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut o = JsonObj::new();
        o.str("kind", "event");
        o.str("name", "weird \"name\"\n");
        o.num("x", 1.5);
        o.num("n", 42.0);
        o.num("bad", f64::NAN);
        o.raw("arr", "[[1,2],[3,4]]");
        let line = o.finish();
        let v = parse(&line).expect("round-trip parse");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("weird \"name\"\n")
        );
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("bad"), Some(&Json::Null));
        let arr = v.get("arr").and_then(Json::as_arr).expect("array field");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].as_arr().and_then(|a| a[1].as_f64()), Some(2.0));
    }

    #[test]
    fn fmt_f64_is_compact_and_null_safe() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-7.0), "-7");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parser_accepts_nested_structures() {
        let v = parse(r#"{"a":[1,true,null,{"b":"c"}],"d":-1.5e3}"#).expect("parse");
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(-1500.0));
        let a = v.get("a").and_then(Json::as_arr).expect("arr");
        assert_eq!(a[1], Json::Bool(true));
        assert_eq!(a[3].get("b").and_then(Json::as_str), Some("c"));
    }
}
