//! In-process streaming profile aggregation (`RFKIT_TRACE_MODE=agg`).
//!
//! Instead of one JSONL line per span, closing spans fold into a
//! process-wide hierarchical call-path tree: each node is keyed by
//! `(parent, name)` and accumulates call count, total wall time, self
//! time (duration minus child spans) and a mergeable
//! [`QuantileSketch`] of durations. Events fold into per-name
//! first/last summaries. On [`flush`](crate::flush) the tree plus the
//! counter/histogram registry serialize into one compact
//! `PROFILE_*.json` — kilobytes where a traced run writes megabytes —
//! which `rfkit-trace` renders as an indented call-path profile
//! (`tree`), folded flamegraph stacks (`flame`), and diffs against a
//! baseline as the CI perf-regression gate (`diff`).
//!
//! Costs when armed: one mutex-guarded tree lookup per span enter and
//! one per exit; span paths are tracked per thread, so spans opened on
//! pool workers root at the worker's own stack (see `par.task` in
//! rfkit-par). Counters and histograms keep their lock-free hot path;
//! only the sketch feed in [`crate::metrics`] adds a short uncontended
//! lock per histogram sample.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use rfkit_num::QuantileSketch;

use crate::json::JsonObj;
use crate::metrics;

/// Parent marker for root-level nodes.
const ROOT: u32 = u32::MAX;

/// One call-path node: everything spans at this path accumulated.
struct Node {
    name: &'static str,
    parent: u32,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
    durations_us: QuantileSketch,
}

/// Aggregate of one event name.
struct EventAgg {
    points: u64,
    first: Vec<(String, f64)>,
    last: Vec<(String, f64)>,
}

#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    index: BTreeMap<(u32, &'static str), u32>,
    events: BTreeMap<String, EventAgg>,
}

static TREE: Mutex<Tree> = Mutex::new(Tree {
    nodes: Vec::new(),
    index: BTreeMap::new(),
    events: BTreeMap::new(),
});

thread_local! {
    // Per-thread stack of live node ids, parallel to the span stack in
    // `crate::span`.
    static NODE_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

fn lock() -> std::sync::MutexGuard<'static, Tree> {
    TREE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drop all aggregated state. Called when (re)arming aggregation so a
/// profile covers exactly one armed window; stale ids left on other
/// threads' stacks are bounds-checked away in [`exit`].
pub(crate) fn reset() {
    let mut t = lock();
    t.nodes.clear();
    t.index.clear();
    t.events.clear();
}

/// Open a span at `name` under the current thread's path.
pub(crate) fn enter(name: &'static str) {
    let parent = NODE_STACK
        .with(|s| s.borrow().last().copied())
        .unwrap_or(ROOT);
    let mut t = lock();
    let id = match t.index.get(&(parent, name)) {
        Some(&id) => id,
        None => {
            let id = t.nodes.len() as u32;
            t.nodes.push(Node {
                name,
                parent,
                count: 0,
                total_ns: 0,
                self_ns: 0,
                max_ns: 0,
                durations_us: QuantileSketch::new(),
            });
            t.index.insert((parent, name), id);
            id
        }
    };
    drop(t);
    NODE_STACK.with(|s| s.borrow_mut().push(id));
}

/// Close the current thread's innermost span with its measured times.
pub(crate) fn exit(dur_ns: u64, self_ns: u64) {
    let Some(id) = NODE_STACK.with(|s| s.borrow_mut().pop()) else {
        return;
    };
    let mut t = lock();
    // A reset between enter and exit (re-init mid-span) may have
    // invalidated the id; drop the sample rather than misattributing.
    let Some(node) = t.nodes.get_mut(id as usize) else {
        return;
    };
    node.count += 1;
    node.total_ns = node.total_ns.saturating_add(dur_ns);
    node.self_ns = node.self_ns.saturating_add(self_ns);
    node.max_ns = node.max_ns.max(dur_ns);
    node.durations_us.record(dur_ns as f64 / 1_000.0);
}

/// Fold one event into its per-name summary.
pub(crate) fn record_event(name: &str, fields: &[(&str, f64)]) {
    let mut t = lock();
    match t.events.get_mut(name) {
        Some(agg) => {
            agg.points += 1;
            agg.last = fields.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        }
        None => {
            let snap: Vec<(String, f64)> =
                fields.iter().map(|(k, v)| (k.to_string(), *v)).collect();
            t.events.insert(
                name.to_string(),
                EventAgg {
                    points: 1,
                    first: snap.clone(),
                    last: snap,
                },
            );
        }
    }
}

/// Serialize the whole aggregate — tree, counters, histograms, events —
/// as one profile JSON document and hand it to the sink.
pub(crate) fn flush_profile() {
    // The flush itself is telemetry: record it as a `profile.flush`
    // event so the artifact documents its own shape, then snapshot.
    let (counters, hists) = metrics::registry_snapshot();
    let pre = lock();
    let nodes = pre.nodes.len();
    let events = pre.events.len();
    drop(pre);
    crate::event(
        "profile.flush",
        &[
            ("nodes", nodes as f64),
            ("counters", counters.len() as f64),
            ("hists", hists.len() as f64),
            ("events", events as f64),
        ],
    );

    let t = lock();
    // Paths are rebuilt by walking parents; rows sort by path string so
    // the serialized profile is independent of node discovery order.
    let mut rows: Vec<(String, &Node)> = t
        .nodes
        .iter()
        .map(|n| {
            let mut parts = vec![n.name];
            let mut p = n.parent;
            while p != ROOT {
                let parent = &t.nodes[p as usize];
                parts.push(parent.name);
                p = parent.parent;
            }
            parts.reverse();
            (parts.join(";"), n)
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n");
    out.push_str("\"kind\":\"rfkit-profile\",\n\"version\":1,\n");
    let mut meta = JsonObj::new();
    meta.num("pid", std::process::id() as f64);
    meta.str(
        "threads_env",
        &std::env::var("RFKIT_THREADS").unwrap_or_default(),
    );
    meta.num("wall_us", crate::now_us() as f64);
    out.push_str(&format!("\"meta\":{},\n", meta.finish()));

    out.push_str("\"nodes\":[\n");
    for (i, (path, n)) in rows.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("path", path);
        o.str("name", n.name);
        o.num("count", n.count as f64);
        o.num("total_us", (n.total_ns / 1_000) as f64);
        o.num("self_us", (n.self_ns / 1_000) as f64);
        o.num("max_us", (n.max_ns / 1_000) as f64);
        o.num("p50_us", n.durations_us.quantile(0.50));
        o.num("p95_us", n.durations_us.quantile(0.95));
        out.push_str(&o.finish());
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("],\n");

    let mut cobj = JsonObj::new();
    for (name, value) in &counters {
        cobj.num(name, *value as f64);
    }
    out.push_str(&format!("\"counters\":{},\n", cobj.finish()));

    out.push_str("\"hists\":[\n");
    for (i, h) in hists.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("name", h.name);
        o.num("count", h.count as f64);
        o.num("sum", h.sum as f64);
        o.num("p50", h.p50);
        o.num("p90", h.p90);
        o.num("p99", h.p99);
        let mut arr = String::from("[");
        for (j, (upper, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                arr.push(',');
            }
            arr.push_str(&format!("[{upper},{c}]"));
        }
        arr.push(']');
        o.raw("buckets", &arr);
        if let Some(sk) = &h.sketch {
            let mut sobj = JsonObj::new();
            sobj.num("zeros", sk.zeros() as f64);
            let mut sarr = String::from("[");
            for (j, (k, c)) in sk.buckets().enumerate() {
                if j > 0 {
                    sarr.push(',');
                }
                sarr.push_str(&format!("[{k},{c}]"));
            }
            sarr.push(']');
            sobj.raw("buckets", &sarr);
            o.raw("sketch", &sobj.finish());
        }
        out.push_str(&o.finish());
        out.push_str(if i + 1 == hists.len() { "\n" } else { ",\n" });
    }
    out.push_str("],\n");

    out.push_str("\"events\":[\n");
    for (i, (name, e)) in t.events.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("name", name);
        o.num("points", e.points as f64);
        let mut first = JsonObj::new();
        for (k, v) in &e.first {
            first.num(k, *v);
        }
        o.raw("first", &first.finish());
        let mut last = JsonObj::new();
        for (k, v) in &e.last {
            last.num(k, *v);
        }
        o.raw("last", &last.finish());
        out.push_str(&o.finish());
        out.push_str(if i + 1 == t.events.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n}\n");
    drop(t);

    crate::sink::write_whole(&out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_without_enter_is_inert() {
        // A stale stack (e.g. after a reset) must not panic or corrupt.
        exit(1_000, 1_000);
        NODE_STACK.with(|s| assert!(s.borrow().is_empty()));
    }
}
