//! Telemetry name-registry export: reads the set of instrument names
//! back out of a JSONL trace file, so external tooling (the
//! `rfkit-analyze` contract checker, dashboards) can cross-validate
//! recorded traces against the names the code actually emits without
//! re-implementing the trace format.

use crate::json;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Distinct `name` values of every non-`meta` record in a JSONL trace
/// (spans, counters, hists, events). Lines that fail to parse are
/// skipped — a truncated final line from a killed run must not poison
/// the whole export.
pub fn trace_names(path: &Path) -> io::Result<BTreeSet<String>> {
    Ok(names_in_str(&fs::read_to_string(path)?))
}

/// [`trace_names`] over in-memory trace text.
pub fn names_in_str(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(rec) = json::parse(line) else { continue };
        let kind = rec.get("kind").and_then(|k| k.as_str()).unwrap_or("");
        if kind == "meta" {
            continue;
        }
        if let Some(name) = rec.get("name").and_then(|n| n.as_str()) {
            names.insert(name.to_string());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_non_meta_names() {
        let trace = r#"{"t_us":1,"kind":"meta","name":"run","pid":7}
{"t_us":2,"kind":"span","name":"design.total","dur_us":5,"tid":0}
{"t_us":3,"kind":"counter","name":"plan.cache.hit","value":2}
{"t_us":4,"kind":"event","name":"opt.de.gen","gen":1}
{"t_us":5,"kind":"hist","name":"circuit.dc.iters","count":3}
{"t_us":6,"kind":"span","name":"design.total","dur_us":9,"tid":1}
"#;
        let names = names_in_str(trace);
        let want: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            want,
            [
                "circuit.dc.iters",
                "design.total",
                "opt.de.gen",
                "plan.cache.hit"
            ]
        );
    }

    #[test]
    fn tolerates_garbage_and_truncated_lines() {
        let trace = "not json\n{\"kind\":\"span\",\"name\":\"a.b\"}\n{\"kind\":\"span\",\"na";
        let names = names_in_str(trace);
        assert_eq!(names.len(), 1);
        assert!(names.contains("a.b"));
    }
}
