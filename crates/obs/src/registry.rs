//! Telemetry name-registry export: reads the set of instrument names
//! back out of a JSONL trace file, so external tooling (the
//! `rfkit-analyze` contract checker, dashboards) can cross-validate
//! recorded traces against the names the code actually emits without
//! re-implementing the trace format.

use crate::json;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Distinct `name` values of every non-`meta` record in a JSONL trace
/// (spans, counters, hists, events). Lines that fail to parse are
/// skipped — a truncated final line from a killed run must not poison
/// the whole export.
pub fn trace_names(path: &Path) -> io::Result<BTreeSet<String>> {
    Ok(names_in_str(&fs::read_to_string(path)?))
}

/// Distinct instrument names recorded in an aggregate profile: every
/// node's span name, counter key, histogram name and event name. The
/// profile-mode counterpart of [`trace_names`], so the contract
/// checker treats `PROFILE_*.json` artifacts as evidence a name is
/// live, same as JSONL traces.
pub fn profile_names(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = fs::read_to_string(path)?;
    let mut names = BTreeSet::new();
    let Ok(p) = crate::profile::parse(&text) else {
        return Ok(names);
    };
    for n in &p.nodes {
        names.insert(n.name.clone());
    }
    names.extend(p.counters.keys().cloned());
    names.extend(p.hists.keys().cloned());
    names.extend(p.events.iter().map(|e| e.name.clone()));
    Ok(names)
}

/// [`trace_names`] over in-memory trace text.
pub fn names_in_str(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(rec) = json::parse(line) else { continue };
        let kind = rec.get("kind").and_then(|k| k.as_str()).unwrap_or("");
        if kind == "meta" {
            continue;
        }
        if let Some(name) = rec.get("name").and_then(|n| n.as_str()) {
            names.insert(name.to_string());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_non_meta_names() {
        let trace = r#"{"t_us":1,"kind":"meta","name":"run","pid":7}
{"t_us":2,"kind":"span","name":"design.total","dur_us":5,"tid":0}
{"t_us":3,"kind":"counter","name":"plan.cache.hit","value":2}
{"t_us":4,"kind":"event","name":"opt.de.gen","gen":1}
{"t_us":5,"kind":"hist","name":"circuit.dc.iters","count":3}
{"t_us":6,"kind":"span","name":"design.total","dur_us":9,"tid":1}
"#;
        let names = names_in_str(trace);
        let want: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            want,
            [
                "circuit.dc.iters",
                "design.total",
                "opt.de.gen",
                "plan.cache.hit"
            ]
        );
    }

    #[test]
    fn profile_names_cover_all_instrument_kinds() {
        let text = "{\"kind\":\"rfkit-profile\",\"version\":1,\"meta\":{},\
                    \"nodes\":[{\"path\":\"a;b\",\"name\":\"b\",\"count\":1,\
                    \"total_us\":5,\"self_us\":5,\"max_us\":5,\"p50_us\":5,\"p95_us\":5}],\
                    \"counters\":{\"plan.cache.hit\":2},\
                    \"hists\":[{\"name\":\"circuit.dc.iters\",\"count\":1,\"sum\":3,\
                    \"p50\":3,\"p90\":3,\"p99\":3,\"buckets\":[[3,1]]}],\
                    \"events\":[{\"name\":\"opt.de.gen\",\"points\":1,\"first\":{},\"last\":{}}]}";
        let dir = std::env::temp_dir().join(format!("rfkit_obs_regtest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("PROFILE_test.json");
        std::fs::write(&path, text).expect("write profile");
        let names = profile_names(&path).expect("profile names");
        for want in ["b", "plan.cache.hit", "circuit.dc.iters", "opt.de.gen"] {
            assert!(names.contains(want), "missing {want}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_garbage_and_truncated_lines() {
        let trace = "not json\n{\"kind\":\"span\",\"name\":\"a.b\"}\n{\"kind\":\"span\",\"na";
        let names = names_in_str(trace);
        assert_eq!(names.len(), 1);
        assert!(names.contains("a.b"));
    }
}
