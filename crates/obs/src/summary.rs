//! Trace aggregation for `rfkit-trace`: fold a JSONL trace into span
//! totals, counter values, histogram percentiles and per-optimizer
//! convergence series, then render as text or JSON.

use std::collections::BTreeMap;

use crate::json::{self, Json, JsonObj};

/// Aggregated view of one trace file.
#[derive(Debug, Default)]
pub struct Summary {
    /// Total parsed records.
    pub records: usize,
    /// `meta` record fields (pid, threads_env) as strings.
    pub meta: BTreeMap<String, String>,
    /// Per-span-name aggregates, sorted by self-time descending.
    pub spans: Vec<SpanAgg>,
    /// Counter name -> final value (last record wins; counters are
    /// cumulative so the last flush is the total).
    pub counters: BTreeMap<String, u64>,
    /// Histogram name -> final snapshot.
    pub hists: BTreeMap<String, HistAgg>,
    /// Event series by name, in first-seen order.
    pub series: Vec<SeriesAgg>,
}

/// Aggregate over all spans sharing a name.
#[derive(Debug, Clone)]
pub struct SpanAgg {
    /// Span name.
    pub name: String,
    /// Number of closed spans.
    pub count: u64,
    /// Total wall duration in microseconds.
    pub total_us: u64,
    /// Total self time (duration minus child spans) in microseconds.
    pub self_us: u64,
    /// Longest single span in microseconds.
    pub max_us: u64,
}

/// Final snapshot of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistAgg {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// `(inclusive_upper, count)` buckets in ascending order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistAgg {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0,1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return upper;
            }
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0)
    }
}

/// A named event series (e.g. `opt.de.gen`), keeping the first and
/// last numeric field sets so convergence start -> end is visible
/// without storing every point.
#[derive(Debug, Clone)]
pub struct SeriesAgg {
    /// Event name.
    pub name: String,
    /// Number of events observed.
    pub points: u64,
    /// Numeric fields of the first event.
    pub first: BTreeMap<String, f64>,
    /// Numeric fields of the last event.
    pub last: BTreeMap<String, f64>,
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct SummarizeError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// Parser message.
    pub message: String,
}

impl std::fmt::Display for SummarizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parse and aggregate a JSONL trace.
pub fn summarize(text: &str) -> Result<Summary, SummarizeError> {
    let mut out = Summary::default();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut series_index: BTreeMap<String, usize> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|message| SummarizeError {
            line: i + 1,
            message,
        })?;
        out.records += 1;
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let num = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        match kind {
            "meta" => {
                if let Json::Obj(m) = &v {
                    for (k, field) in m {
                        if matches!(k.as_str(), "kind" | "name" | "t_us") {
                            continue;
                        }
                        let text = match field {
                            Json::Str(s) => s.clone(),
                            Json::Num(n) => json::fmt_f64(*n),
                            other => format!("{other:?}"),
                        };
                        out.meta.insert(k.clone(), text);
                    }
                }
            }
            "span" => {
                let dur = num("dur_us") as u64;
                let selft = num("self_us") as u64;
                let agg = spans.entry(name.clone()).or_insert_with(|| SpanAgg {
                    name,
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                    max_us: 0,
                });
                agg.count += 1;
                agg.total_us += dur;
                agg.self_us += selft;
                agg.max_us = agg.max_us.max(dur);
            }
            "counter" => {
                out.counters.insert(name, num("value") as u64);
            }
            "hist" => {
                let buckets = v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|pair| {
                                let p = pair.as_arr()?;
                                Some((p.first()?.as_f64()? as u64, p.get(1)?.as_f64()? as u64))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                out.hists.insert(
                    name,
                    HistAgg {
                        count: num("count") as u64,
                        sum: num("sum") as u64,
                        buckets,
                    },
                );
            }
            "event" => {
                let mut fields = BTreeMap::new();
                if let Json::Obj(m) = &v {
                    for (k, field) in m {
                        if matches!(k.as_str(), "kind" | "name" | "t_us" | "tid") {
                            continue;
                        }
                        if let Some(x) = field.as_f64() {
                            fields.insert(k.clone(), x);
                        }
                    }
                }
                match series_index.get(&name) {
                    Some(&idx) => {
                        let s = &mut out.series[idx];
                        s.points += 1;
                        s.last = fields;
                    }
                    None => {
                        series_index.insert(name.clone(), out.series.len());
                        out.series.push(SeriesAgg {
                            name,
                            points: 1,
                            first: fields.clone(),
                            last: fields,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    out.spans = spans.into_values().collect();
    out.spans
        .sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    Ok(out)
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn series_key_line(fields: &BTreeMap<String, f64>) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v:.6}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render the human-readable report. `top` caps the span table.
pub fn render_human(s: &Summary, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: {} records\n", s.records));
    for (k, v) in &s.meta {
        out.push_str(&format!("  {k}: {v}\n"));
    }

    if !s.spans.is_empty() {
        out.push_str(&format!(
            "\nTop spans by self time (of {}):\n",
            s.spans.len()
        ));
        out.push_str(&format!(
            "  {:<28} {:>7} {:>10} {:>10} {:>10}\n",
            "name", "count", "self", "total", "max"
        ));
        for a in s.spans.iter().take(top) {
            out.push_str(&format!(
                "  {:<28} {:>7} {:>10} {:>10} {:>10}\n",
                a.name,
                a.count,
                fmt_us(a.self_us),
                fmt_us(a.total_us),
                fmt_us(a.max_us)
            ));
        }
    }

    if !s.counters.is_empty() {
        out.push_str("\nCounters:\n");
        for (name, value) in &s.counters {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
    }

    if !s.hists.is_empty() {
        out.push_str("\nHistograms (log2 buckets):\n");
        out.push_str(&format!(
            "  {:<28} {:>7} {:>10} {:>8} {:>8} {:>8}\n",
            "name", "count", "mean", "p50", "p90", "p99"
        ));
        for (name, h) in &s.hists {
            out.push_str(&format!(
                "  {:<28} {:>7} {:>10.1} {:>8} {:>8} {:>8}\n",
                name,
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99)
            ));
        }
    }

    let opt_series: Vec<&SeriesAgg> = s
        .series
        .iter()
        .filter(|sa| sa.name.starts_with("opt.") || sa.name.starts_with("design."))
        .collect();
    if !opt_series.is_empty() {
        out.push_str("\nConvergence (first -> last event):\n");
        for sa in opt_series {
            out.push_str(&format!("  {} ({} events)\n", sa.name, sa.points));
            out.push_str(&format!("    first: {}\n", series_key_line(&sa.first)));
            if sa.points > 1 {
                out.push_str(&format!("    last:  {}\n", series_key_line(&sa.last)));
            }
        }
    }
    let other: Vec<&SeriesAgg> = s
        .series
        .iter()
        .filter(|sa| !sa.name.starts_with("opt.") && !sa.name.starts_with("design."))
        .collect();
    if !other.is_empty() {
        out.push_str("\nOther events:\n");
        for sa in other {
            out.push_str(&format!(
                "  {:<28} {:>7} events; last: {}\n",
                sa.name,
                sa.points,
                series_key_line(&sa.last)
            ));
        }
    }
    out
}

/// Render the machine-readable report.
pub fn render_json(s: &Summary) -> String {
    let mut root = JsonObj::new();
    root.num("records", s.records as f64);

    let mut meta = JsonObj::new();
    for (k, v) in &s.meta {
        meta.str(k, v);
    }
    root.raw("meta", &meta.finish());

    let mut spans = String::from("[");
    for (i, a) in s.spans.iter().enumerate() {
        if i > 0 {
            spans.push(',');
        }
        let mut o = JsonObj::new();
        o.str("name", &a.name);
        o.num("count", a.count as f64);
        o.num("total_us", a.total_us as f64);
        o.num("self_us", a.self_us as f64);
        o.num("max_us", a.max_us as f64);
        spans.push_str(&o.finish());
    }
    spans.push(']');
    root.raw("spans", &spans);

    let mut counters = JsonObj::new();
    for (name, value) in &s.counters {
        counters.num(name, *value as f64);
    }
    root.raw("counters", &counters.finish());

    let mut hists = String::from("[");
    for (i, (name, h)) in s.hists.iter().enumerate() {
        if i > 0 {
            hists.push(',');
        }
        let mut o = JsonObj::new();
        o.str("name", name);
        o.num("count", h.count as f64);
        o.num("sum", h.sum as f64);
        o.num("mean", h.mean());
        o.num("p50", h.percentile(0.50) as f64);
        o.num("p90", h.percentile(0.90) as f64);
        o.num("p99", h.percentile(0.99) as f64);
        hists.push_str(&o.finish());
    }
    hists.push(']');
    root.raw("hists", &hists);

    let mut series = String::from("[");
    for (i, sa) in s.series.iter().enumerate() {
        if i > 0 {
            series.push(',');
        }
        let mut o = JsonObj::new();
        o.str("name", &sa.name);
        o.num("points", sa.points as f64);
        let mut first = JsonObj::new();
        for (k, v) in &sa.first {
            first.num(k, *v);
        }
        o.raw("first", &first.finish());
        let mut last = JsonObj::new();
        for (k, v) in &sa.last {
            last.num(k, *v);
        }
        o.raw("last", &last.finish());
        series.push_str(&o.finish());
    }
    series.push(']');
    root.raw("series", &series);
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"t_us":0,"kind":"meta","name":"run","pid":42,"threads_env":"4"}"#,
        "\n",
        r#"{"t_us":5,"kind":"span","name":"design.total","dur_us":1000,"self_us":400,"tid":0}"#,
        "\n",
        r#"{"t_us":10,"kind":"span","name":"design.total","dur_us":3000,"self_us":600,"tid":0}"#,
        "\n",
        r#"{"t_us":12,"kind":"event","name":"opt.de.gen","tid":0,"gen":0,"best":5.0,"evals":70}"#,
        "\n",
        r#"{"t_us":14,"kind":"event","name":"opt.de.gen","tid":0,"gen":9,"best":1.25,"evals":700}"#,
        "\n",
        r#"{"t_us":20,"kind":"counter","name":"par.tasks","value":3}"#,
        "\n",
        r#"{"t_us":21,"kind":"counter","name":"par.tasks","value":700}"#,
        "\n",
        r#"{"t_us":22,"kind":"hist","name":"circuit.dc.iters","count":4,"sum":20,"buckets":[[3,1],[7,3]]}"#,
        "\n",
    );

    #[test]
    fn summarize_aggregates_all_record_kinds() {
        let s = summarize(SAMPLE).expect("summarize sample");
        assert_eq!(s.records, 8);
        assert_eq!(s.meta.get("threads_env").map(String::as_str), Some("4"));
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].count, 2);
        assert_eq!(s.spans[0].total_us, 4000);
        assert_eq!(s.spans[0].self_us, 1000);
        assert_eq!(s.spans[0].max_us, 3000);
        assert_eq!(s.counters.get("par.tasks"), Some(&700));
        let h = s.hists.get("circuit.dc.iters").expect("hist");
        assert_eq!(h.count, 4);
        assert_eq!(h.percentile(0.25), 3);
        assert_eq!(h.percentile(0.99), 7);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.series.len(), 1);
        assert_eq!(s.series[0].points, 2);
        assert_eq!(s.series[0].first.get("best"), Some(&5.0));
        assert_eq!(s.series[0].last.get("best"), Some(&1.25));
    }

    #[test]
    fn renderers_cover_sample_and_json_parses() {
        let s = summarize(SAMPLE).expect("summarize sample");
        let human = render_human(&s, 10);
        assert!(human.contains("design.total"));
        assert!(human.contains("opt.de.gen"));
        assert!(human.contains("par.tasks"));
        let j = render_json(&s);
        let v = crate::json::parse(&j).expect("summary json parses");
        assert_eq!(
            v.get("records").and_then(crate::json::Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            v.get("spans")
                .and_then(crate::json::Json::as_arr)
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn summarize_reports_line_numbers_on_bad_input() {
        let err = summarize("{}\nnot json\n").expect_err("bad line");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_hist_percentiles_are_zero() {
        let h = HistAgg::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
