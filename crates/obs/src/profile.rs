//! Aggregate-profile ingestion, rendering and diffing.
//!
//! A `PROFILE_*.json` (written by [`crate::agg`] in
//! `RFKIT_TRACE_MODE=agg` runs) parses into a [`Profile`]: a call-path
//! tree plus counter/histogram/event snapshots. `rfkit-trace` renders
//! it as an indented call-path profile ([`render_tree`]), folded
//! flamegraph stacks ([`render_flame`] — one `path self_us` line per
//! call path, directly consumable by flamegraph tooling), or
//! converts it to a [`Summary`] so the `--expect*` assertion machinery
//! works identically on traces and profiles. [`diff`] compares two
//! profiles path-by-path with noise-aware thresholds and backs the CI
//! perf-regression gate.

use std::collections::BTreeMap;

use crate::json::{self, Json, JsonObj};
use crate::summary::{HistAgg, SeriesAgg, SpanAgg, Summary};

/// One call-path node of a parsed profile.
#[derive(Debug, Clone)]
pub struct ProfNode {
    /// Full `;`-joined call path (root first).
    pub path: String,
    /// Leaf span name (last path segment).
    pub name: String,
    /// Spans closed at this path.
    pub count: u64,
    /// Total wall microseconds across all calls.
    pub total_us: u64,
    /// Self microseconds (total minus child spans).
    pub self_us: u64,
    /// Longest single call in microseconds.
    pub max_us: u64,
    /// Median single-call duration (sketch estimate).
    pub p50_us: f64,
    /// 95th-percentile single-call duration (sketch estimate).
    pub p95_us: f64,
}

/// One histogram snapshot of a parsed profile.
#[derive(Debug, Clone, Default)]
pub struct ProfHist {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Interpolated percentiles computed at flush time.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// `(inclusive_upper, count)` log2 buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// A parsed aggregate profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// `meta` fields (pid, threads_env, wall_us) as strings.
    pub meta: BTreeMap<String, String>,
    /// Call-path nodes, sorted by path.
    pub nodes: Vec<ProfNode>,
    /// Counter name -> value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name -> snapshot.
    pub hists: BTreeMap<String, ProfHist>,
    /// Event first/last summaries.
    pub events: Vec<SeriesAgg>,
}

/// Cheap sniff: does `text` look like an aggregate profile rather than
/// a JSONL trace? Used by `rfkit-trace` to auto-detect the format.
pub fn is_profile(text: &str) -> bool {
    let head: String = text
        .chars()
        .take(200)
        .filter(|c| !c.is_whitespace())
        .collect();
    head.starts_with('{') && head.contains("\"kind\":\"rfkit-profile\"")
}

fn num_of(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn pairs_of(v: &Json, key: &str) -> Vec<(u64, u64)> {
    v.get(key)
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|pair| {
                    let p = pair.as_arr()?;
                    Some((p.first()?.as_f64()? as u64, p.get(1)?.as_f64()? as u64))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn fields_of(v: &Json, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(m)) = v.get(key) {
        for (k, field) in m {
            if let Some(x) = field.as_f64() {
                out.insert(k.clone(), x);
            }
        }
    }
    out
}

/// Parse a profile document. Rejects non-profile JSON with a message
/// naming the expected `kind`, so feeding a summary JSON or a trace
/// line here fails loudly instead of producing an empty profile.
pub fn parse(text: &str) -> Result<Profile, String> {
    let v = json::parse(text)?;
    if v.get("kind").and_then(Json::as_str) != Some("rfkit-profile") {
        return Err("not an aggregate profile (kind != rfkit-profile)".to_string());
    }
    let mut p = Profile::default();
    if let Some(Json::Obj(m)) = v.get("meta") {
        for (k, field) in m {
            let text = match field {
                Json::Str(s) => s.clone(),
                Json::Num(n) => json::fmt_f64(*n),
                other => format!("{other:?}"),
            };
            p.meta.insert(k.clone(), text);
        }
    }
    for node in v.get("nodes").and_then(Json::as_arr).unwrap_or_default() {
        let path = node
            .get("path")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let name = node
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| path.rsplit(';').next().unwrap_or_default())
            .to_string();
        p.nodes.push(ProfNode {
            path,
            name,
            count: num_of(node, "count") as u64,
            total_us: num_of(node, "total_us") as u64,
            self_us: num_of(node, "self_us") as u64,
            max_us: num_of(node, "max_us") as u64,
            p50_us: num_of(node, "p50_us"),
            p95_us: num_of(node, "p95_us"),
        });
    }
    p.nodes.sort_by(|a, b| a.path.cmp(&b.path));
    if let Some(Json::Obj(m)) = v.get("counters") {
        for (k, field) in m {
            if let Some(x) = field.as_f64() {
                p.counters.insert(k.clone(), x as u64);
            }
        }
    }
    for h in v.get("hists").and_then(Json::as_arr).unwrap_or_default() {
        let name = h
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        p.hists.insert(
            name,
            ProfHist {
                count: num_of(h, "count") as u64,
                sum: num_of(h, "sum") as u64,
                p50: num_of(h, "p50"),
                p90: num_of(h, "p90"),
                p99: num_of(h, "p99"),
                buckets: pairs_of(h, "buckets"),
            },
        );
    }
    for e in v.get("events").and_then(Json::as_arr).unwrap_or_default() {
        p.events.push(SeriesAgg {
            name: e
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            points: num_of(e, "points") as u64,
            first: fields_of(e, "first"),
            last: fields_of(e, "last"),
        });
    }
    Ok(p)
}

/// Fold a profile into the flat [`Summary`] shape: nodes sharing a
/// span name merge (a name reached via two call paths reports combined
/// totals, as the JSONL summarizer would). This is what lets
/// `--expect`/`--expect-min`/`--expect-max` assert on profiles and
/// traces with the same semantics.
pub fn to_summary(p: &Profile) -> Summary {
    let mut s = Summary {
        records: p.nodes.len() + p.counters.len() + p.hists.len() + p.events.len(),
        meta: p.meta.clone(),
        ..Summary::default()
    };
    let mut by_name: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for n in &p.nodes {
        let agg = by_name.entry(n.name.clone()).or_insert_with(|| SpanAgg {
            name: n.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
            max_us: 0,
        });
        agg.count += n.count;
        agg.total_us += n.total_us;
        agg.self_us += n.self_us;
        agg.max_us = agg.max_us.max(n.max_us);
    }
    s.spans = by_name.into_values().collect();
    s.spans
        .sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    s.counters = p.counters.clone();
    for (name, h) in &p.hists {
        s.hists.insert(
            name.clone(),
            HistAgg {
                count: h.count,
                sum: h.sum,
                buckets: h.buckets.clone(),
            },
        );
    }
    s.series = p.events.clone();
    s
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn depth_of(path: &str) -> usize {
    path.matches(';').count()
}

/// Render the indented call-path profile. Because nodes sort by path,
/// every parent precedes its children and siblings stay adjacent, so
/// plain indentation by depth reconstructs the tree. `top` caps the
/// number of printed rows (deepest-self rows are never elided before
/// shallower ones — rows print in tree order and the cap truncates the
/// tail, with a note saying how many were hidden).
pub fn render_tree(p: &Profile, top: usize) -> String {
    let wall: u64 = p
        .nodes
        .iter()
        .filter(|n| depth_of(&n.path) == 0)
        .map(|n| n.total_us)
        .sum();
    let mut out = String::new();
    out.push_str("call-path profile");
    if let Some(w) = p.meta.get("wall_us") {
        out.push_str(&format!(" (wall {w}us)"));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<44} {:>8} {:>10} {:>10} {:>6} {:>10}\n",
        "path", "count", "self", "total", "self%", "p95"
    ));
    for n in p.nodes.iter().take(top) {
        let depth = depth_of(&n.path);
        let label = format!("{}{}", "  ".repeat(depth), n.name);
        let pct = if wall > 0 {
            100.0 * n.self_us as f64 / wall as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<44} {:>8} {:>10} {:>10} {:>5.1}% {:>10}\n",
            label,
            n.count,
            fmt_us(n.self_us),
            fmt_us(n.total_us),
            pct,
            fmt_us(n.p95_us as u64),
        ));
    }
    if p.nodes.len() > top {
        out.push_str(&format!(
            "  ... {} more paths (--top N)\n",
            p.nodes.len() - top
        ));
    }
    out
}

/// Render folded flamegraph stacks: one `path self_us` line per call
/// path, semicolon-separated frames, value = self time in
/// microseconds. Pipe into any folded-stack consumer
/// (e.g. `flamegraph.pl`, speedscope) to visualize.
pub fn render_flame(p: &Profile) -> String {
    let mut out = String::new();
    for n in &p.nodes {
        if n.self_us == 0 {
            continue;
        }
        out.push_str(&format!("{} {}\n", n.path, n.self_us));
    }
    out
}

/// How one call path moved between baseline and current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Slower than the baseline beyond the tolerance (gate failure).
    Regressed,
    /// Faster than the baseline beyond the tolerance.
    Improved,
    /// Present only in the current profile (above the floor).
    New,
    /// Present only in the baseline (above the floor).
    Missing,
}

/// One classified row of a profile diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Call path.
    pub path: String,
    /// Baseline self time in microseconds (0 for `New`).
    pub base_self_us: u64,
    /// Current self time in microseconds (0 for `Missing`).
    pub cur_self_us: u64,
    /// current/baseline self-time ratio (inf for `New`, 0 for
    /// `Missing`).
    pub ratio: f64,
    /// Classification.
    pub class: DiffClass,
}

/// Result of diffing two profiles.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Classified rows (unchanged paths are omitted), regressions
    /// first, then by descending current self time.
    pub rows: Vec<DiffRow>,
    /// Paths compared (present in both, either side above the floor).
    pub compared: usize,
    /// Count of [`DiffClass::Regressed`] rows.
    pub regressed: usize,
}

/// Compare two profiles path-by-path on self time with noise-aware
/// thresholds:
///
/// * `rel_tol` — the tolerated ratio (must be `> 1`). A path regresses
///   when `current > baseline * rel_tol`, improves when
///   `current < baseline / rel_tol`.
/// * `min_self_us` — the noise floor. Paths where *both* sides spend
///   less self time than this are ignored entirely: microsecond-scale
///   paths flap with scheduler jitter and would make the gate cry
///   wolf. `New`/`Missing` rows also only count above the floor.
///
/// The gate (exit status of `rfkit-trace diff`) fails only on
/// `Regressed` rows; new, missing and improved paths are reported but
/// never fail CI.
pub fn diff(base: &Profile, cur: &Profile, rel_tol: f64, min_self_us: u64) -> DiffReport {
    let bmap: BTreeMap<&str, u64> = base
        .nodes
        .iter()
        .map(|n| (n.path.as_str(), n.self_us))
        .collect();
    let cmap: BTreeMap<&str, u64> = cur
        .nodes
        .iter()
        .map(|n| (n.path.as_str(), n.self_us))
        .collect();
    let mut report = DiffReport::default();
    for (path, &b) in &bmap {
        match cmap.get(path) {
            Some(&c) => {
                if b < min_self_us && c < min_self_us {
                    continue;
                }
                report.compared += 1;
                let ratio = if b == 0 {
                    if c == 0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    c as f64 / b as f64
                };
                let class = if c as f64 > b as f64 * rel_tol {
                    Some(DiffClass::Regressed)
                } else if (c as f64) < b as f64 / rel_tol {
                    Some(DiffClass::Improved)
                } else {
                    None
                };
                if let Some(class) = class {
                    report.rows.push(DiffRow {
                        path: (*path).to_string(),
                        base_self_us: b,
                        cur_self_us: c,
                        ratio,
                        class,
                    });
                }
            }
            None => {
                if b >= min_self_us {
                    report.rows.push(DiffRow {
                        path: (*path).to_string(),
                        base_self_us: b,
                        cur_self_us: 0,
                        ratio: 0.0,
                        class: DiffClass::Missing,
                    });
                }
            }
        }
    }
    for (path, &c) in &cmap {
        if !bmap.contains_key(path) && c >= min_self_us {
            report.rows.push(DiffRow {
                path: (*path).to_string(),
                base_self_us: 0,
                cur_self_us: c,
                ratio: f64::INFINITY,
                class: DiffClass::New,
            });
        }
    }
    report.rows.sort_by(|a, b| {
        let rank = |r: &DiffRow| match r.class {
            DiffClass::Regressed => 0,
            DiffClass::New => 1,
            DiffClass::Missing => 2,
            DiffClass::Improved => 3,
        };
        rank(a)
            .cmp(&rank(b))
            .then(b.cur_self_us.cmp(&a.cur_self_us))
            .then(a.path.cmp(&b.path))
    });
    report.regressed = report
        .rows
        .iter()
        .filter(|r| r.class == DiffClass::Regressed)
        .count();
    report
}

/// Render the diff table. Empty-row reports render a single "no
/// significant change" line so the CI log stays readable.
pub fn render_diff(r: &DiffReport, rel_tol: f64, min_self_us: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile diff: {} paths compared (rel-tol {rel_tol}x, floor {min_self_us}us)\n",
        r.compared
    ));
    if r.rows.is_empty() {
        out.push_str("  no significant change\n");
        return out;
    }
    out.push_str(&format!(
        "  {:<10} {:<44} {:>10} {:>10} {:>8}\n",
        "class", "path", "base", "current", "ratio"
    ));
    for row in &r.rows {
        let class = match row.class {
            DiffClass::Regressed => "regressed",
            DiffClass::Improved => "improved",
            DiffClass::New => "new",
            DiffClass::Missing => "missing",
        };
        let ratio = if row.ratio.is_finite() {
            format!("{:.2}x", row.ratio)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "  {:<10} {:<44} {:>10} {:>10} {:>8}\n",
            class,
            row.path,
            fmt_us(row.base_self_us),
            fmt_us(row.cur_self_us),
            ratio
        ));
    }
    out.push_str(&format!(
        "  regressed {}  improved {}  new {}  missing {}\n",
        r.regressed,
        r.rows
            .iter()
            .filter(|x| x.class == DiffClass::Improved)
            .count(),
        r.rows.iter().filter(|x| x.class == DiffClass::New).count(),
        r.rows
            .iter()
            .filter(|x| x.class == DiffClass::Missing)
            .count()
    ));
    out
}

/// Serialise a parsed profile back to its document form. Used by
/// `rfkit-trace --write-baseline`-style flows in ci.sh (copying a
/// fresh profile over the checked-in baseline) and by tests that need
/// profiles without arming tracing.
pub fn render_profile_json(p: &Profile) -> String {
    let mut out = String::from("{\n\"kind\":\"rfkit-profile\",\n\"version\":1,\n");
    let mut meta = JsonObj::new();
    for (k, v) in &p.meta {
        match v.parse::<f64>() {
            Ok(n) => meta.num(k, n),
            Err(_) => meta.str(k, v),
        }
    }
    out.push_str(&format!("\"meta\":{},\n", meta.finish()));
    out.push_str("\"nodes\":[\n");
    for (i, n) in p.nodes.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("path", &n.path);
        o.str("name", &n.name);
        o.num("count", n.count as f64);
        o.num("total_us", n.total_us as f64);
        o.num("self_us", n.self_us as f64);
        o.num("max_us", n.max_us as f64);
        o.num("p50_us", n.p50_us);
        o.num("p95_us", n.p95_us);
        out.push_str(&o.finish());
        out.push_str(if i + 1 == p.nodes.len() { "\n" } else { ",\n" });
    }
    out.push_str("],\n");
    let mut cobj = JsonObj::new();
    for (name, value) in &p.counters {
        cobj.num(name, *value as f64);
    }
    out.push_str(&format!("\"counters\":{},\n", cobj.finish()));
    out.push_str("\"hists\":[\n");
    for (i, (name, h)) in p.hists.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("name", name);
        o.num("count", h.count as f64);
        o.num("sum", h.sum as f64);
        o.num("p50", h.p50);
        o.num("p90", h.p90);
        o.num("p99", h.p99);
        let mut arr = String::from("[");
        for (j, (upper, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                arr.push(',');
            }
            arr.push_str(&format!("[{upper},{c}]"));
        }
        arr.push(']');
        o.raw("buckets", &arr);
        out.push_str(&o.finish());
        out.push_str(if i + 1 == p.hists.len() { "\n" } else { ",\n" });
    }
    out.push_str("],\n");
    out.push_str("\"events\":[\n");
    for (i, e) in p.events.iter().enumerate() {
        let mut o = JsonObj::new();
        o.str("name", &e.name);
        o.num("points", e.points as f64);
        let mut first = JsonObj::new();
        for (k, v) in &e.first {
            first.num(k, *v);
        }
        o.raw("first", &first.finish());
        let mut last = JsonObj::new();
        for (k, v) in &e.last {
            last.num(k, *v);
        }
        o.raw("last", &last.finish());
        out.push_str(&o.finish());
        out.push_str(if i + 1 == p.events.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile::default();
        p.meta.insert("wall_us".to_string(), "5000".to_string());
        p.nodes = vec![
            ProfNode {
                path: "design.total".to_string(),
                name: "design.total".to_string(),
                count: 1,
                total_us: 5000,
                self_us: 1000,
                max_us: 5000,
                p50_us: 5000.0,
                p95_us: 5000.0,
            },
            ProfNode {
                path: "design.total;circuit.ac.sweep".to_string(),
                name: "circuit.ac.sweep".to_string(),
                count: 4,
                total_us: 4000,
                self_us: 4000,
                max_us: 1300,
                p50_us: 990.0,
                p95_us: 1280.0,
            },
        ];
        p.counters.insert("plan.cache.hit".to_string(), 3);
        p.hists.insert(
            "circuit.dc.iters".to_string(),
            ProfHist {
                count: 4,
                sum: 20,
                p50: 5.0,
                p90: 7.0,
                p99: 7.0,
                buckets: vec![(3, 1), (7, 3)],
            },
        );
        p.events.push(SeriesAgg {
            name: "opt.de.gen".to_string(),
            points: 10,
            first: BTreeMap::from([("best".to_string(), 5.0)]),
            last: BTreeMap::from([("best".to_string(), 1.25)]),
        });
        p
    }

    #[test]
    fn profile_round_trips_through_its_json_form() {
        let p = sample();
        let text = render_profile_json(&p);
        assert!(is_profile(&text));
        let q = parse(&text).expect("round-trip parse");
        assert_eq!(q.nodes.len(), 2);
        assert_eq!(q.nodes[1].path, "design.total;circuit.ac.sweep");
        assert_eq!(q.nodes[1].self_us, 4000);
        assert_eq!(q.counters.get("plan.cache.hit"), Some(&3));
        assert_eq!(q.hists["circuit.dc.iters"].buckets, vec![(3, 1), (7, 3)]);
        assert_eq!(q.events[0].points, 10);
        // Serialising the reparse is byte-identical: the format is a
        // fixed point, so baseline refreshes never churn spuriously.
        assert_eq!(render_profile_json(&q), text);
    }

    #[test]
    fn is_profile_rejects_jsonl_traces() {
        assert!(!is_profile(
            "{\"t_us\":0,\"kind\":\"meta\",\"name\":\"run\"}\n"
        ));
        assert!(!is_profile(""));
        assert!(parse("{\"kind\":\"other\"}").is_err());
    }

    #[test]
    fn to_summary_merges_same_name_paths_and_keeps_metrics() {
        let mut p = sample();
        // Same span name reached via a second path.
        p.nodes.push(ProfNode {
            path: "other.root;circuit.ac.sweep".to_string(),
            name: "circuit.ac.sweep".to_string(),
            count: 1,
            total_us: 500,
            self_us: 500,
            max_us: 500,
            p50_us: 500.0,
            p95_us: 500.0,
        });
        let s = to_summary(&p);
        let sweep = s
            .spans
            .iter()
            .find(|a| a.name == "circuit.ac.sweep")
            .expect("merged span");
        assert_eq!(sweep.count, 5);
        assert_eq!(sweep.total_us, 4500);
        assert_eq!(s.counters.get("plan.cache.hit"), Some(&3));
        assert_eq!(s.hists["circuit.dc.iters"].count, 4);
        assert_eq!(s.series.len(), 1);
    }

    #[test]
    fn tree_and_flame_render_paths() {
        let p = sample();
        let tree = render_tree(&p, 50);
        assert!(tree.contains("design.total"));
        // Child is indented under the root and shows a percentage.
        assert!(tree.contains("  circuit.ac.sweep"));
        assert!(tree.contains('%'));
        let flame = render_flame(&p);
        assert!(flame.contains("design.total 1000\n"));
        assert!(flame.contains("design.total;circuit.ac.sweep 4000\n"));
    }

    #[test]
    fn diff_classifies_with_tolerance_and_floor() {
        let base = sample();
        let mut cur = sample();
        // 2.5x slowdown on the sweep path: regression at rel_tol 1.5.
        cur.nodes[1].self_us = 10_000;
        // A new path below the floor must be ignored...
        cur.nodes.push(ProfNode {
            path: "noise.tiny".to_string(),
            name: "noise.tiny".to_string(),
            count: 1,
            total_us: 5,
            self_us: 5,
            max_us: 5,
            p50_us: 5.0,
            p95_us: 5.0,
        });
        let r = diff(&base, &cur, 1.5, 100);
        assert_eq!(r.regressed, 1);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].class, DiffClass::Regressed);
        assert!((r.rows[0].ratio - 2.5).abs() < 1e-12);
        let table = render_diff(&r, 1.5, 100);
        assert!(table.contains("regressed"));
        assert!(table.contains("circuit.ac.sweep"));

        // Self-diff: identical profiles produce an empty, passing diff.
        let clean = diff(&base, &base, 1.5, 100);
        assert_eq!(clean.regressed, 0);
        assert!(clean.rows.is_empty());
        assert!(render_diff(&clean, 1.5, 100).contains("no significant change"));

        // Improvement is reported but is not a regression.
        let mut faster = sample();
        faster.nodes[1].self_us = 1000;
        let r = diff(&base, &faster, 1.5, 100);
        assert_eq!(r.regressed, 0);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].class, DiffClass::Improved);

        // Paths only on one side classify as new/missing above floor.
        let mut extra = sample();
        extra.nodes.push(ProfNode {
            path: "design.total;new.stage".to_string(),
            name: "new.stage".to_string(),
            count: 1,
            total_us: 900,
            self_us: 900,
            max_us: 900,
            p50_us: 900.0,
            p95_us: 900.0,
        });
        let r = diff(&base, &extra, 1.5, 100);
        assert!(r.rows.iter().any(|x| x.class == DiffClass::New));
        let r = diff(&extra, &base, 1.5, 100);
        assert!(r.rows.iter().any(|x| x.class == DiffClass::Missing));

        // Noise floor: both sides under the floor compare as equal even
        // at a wild ratio (5us -> 50us is jitter, not a regression).
        let mut b2 = sample();
        b2.nodes[1].self_us = 5;
        let mut c2 = sample();
        c2.nodes[1].self_us = 50;
        let r = diff(&b2, &c2, 1.5, 100);
        assert_eq!(r.regressed, 0);
        assert!(r.rows.is_empty());
    }
}
