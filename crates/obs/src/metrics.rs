//! Atomic counters and fixed-bucket (log2) histograms with a global
//! registry, dumped to the sink by [`flush`](crate::flush).
//!
//! Both types are designed to live in `static` items inside
//! instrumented crates:
//!
//! ```
//! static EVALS: rfkit_obs::Counter = rfkit_obs::Counter::new("opt.evals.demo");
//! static ITERS: rfkit_obs::Hist = rfkit_obs::Hist::new("demo.iters");
//! EVALS.add(3);
//! ITERS.record(17);
//! ```
//!
//! Registration is lazy: the first armed `add`/`record` pushes the
//! static into the registry, so flushing only reports metrics that
//! were actually touched.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use rfkit_num::QuantileSketch;

use crate::sink;

/// Number of log2 buckets: value 0, then one bucket per power of two
/// up to `u64::MAX` (index = 64 - leading_zeros).
pub const BUCKETS: usize = 65;

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    hists: Mutex<Vec<&'static Hist>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    hists: Mutex::new(Vec::new()),
};

/// A monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create an unregistered counter (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Increment by `n`. No-op unless telemetry is armed.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (0 until armed and touched).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            REGISTRY
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(self);
        }
    }
}

/// A histogram over `u64` samples with log2 buckets (65 fixed buckets,
/// so recording is allocation-free and lock-free).
pub struct Hist {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    // Fed only in aggregate-profile mode: a mergeable sketch with ~2%
    // relative error, much tighter than the log2 buckets' factor-of-2.
    // `None` until the first agg-mode sample keeps the disarmed and
    // JSONL paths allocation-free.
    sketch: Mutex<Option<QuantileSketch>>,
    registered: AtomicBool,
}

/// Bucket index for a sample: 0 holds the value 0, bucket `i` holds
/// `2^(i-1) ..= 2^i - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturates at `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`: 0, then `2^(i-1)`. Together
/// with [`bucket_upper`] this pins the edge values down exactly —
/// sample 0 lands alone in bucket 0 (`[0, 0]`) and `u64::MAX` in the
/// last bucket (`[2^63, u64::MAX]`); neither shifts a neighbour.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        1u64 << 63
    } else {
        1u64 << (i - 1)
    }
}

/// q-th percentile (`q` in `[0, 1]`) over raw bucket counts with
/// linear interpolation inside the winning bucket. Returns 0 for an
/// empty histogram. The interpolation divides only by the winning
/// bucket's own count (non-zero by construction), so a histogram whose
/// samples all share one bucket — or the zero-width buckets `[0,0]`
/// and `[1,1]` — cannot divide by zero.
pub fn percentile_from(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    // 1-based rank of the sample the percentile asks for.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= target {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            if hi == lo {
                return hi;
            }
            let frac = (target - seen) as f64 / c as f64;
            return lo + ((hi - lo) as f64 * frac) as u64;
        }
        seen += c;
    }
    bucket_upper(counts.len().saturating_sub(1))
}

impl Hist {
    /// Create an unregistered histogram (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Hist {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sketch: Mutex::new(None),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample. No-op unless telemetry is armed.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        if crate::agg_mode() {
            let mut g = self.sketch.lock().unwrap_or_else(PoisonError::into_inner);
            g.get_or_insert_with(QuantileSketch::new).record(v as f64);
        }
    }

    /// q-th percentile of recorded samples with interpolation inside
    /// the winning log2 bucket (see [`percentile_from`]).
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        percentile_from(&counts, q)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow, telemetry-only).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of non-empty buckets as `(inclusive_upper, count)`.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect()
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            REGISTRY
                .hists
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(self);
        }
    }
}

/// Point-in-time copy of one histogram for the aggregate profile.
pub(crate) struct HistSnap {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub buckets: Vec<(u64, u64)>,
    pub sketch: Option<QuantileSketch>,
}

/// Snapshot of every registered counter and histogram, sorted by name
/// so the serialized profile is independent of registration order.
pub(crate) fn registry_snapshot() -> (Vec<(&'static str, u64)>, Vec<HistSnap>) {
    let counters: Vec<&'static Counter> = REGISTRY
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut cs: Vec<(&'static str, u64)> = counters.iter().map(|c| (c.name, c.value())).collect();
    cs.sort_by_key(|&(name, _)| name);
    let hists: Vec<&'static Hist> = REGISTRY
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut hs: Vec<HistSnap> = hists
        .iter()
        .map(|h| HistSnap {
            name: h.name,
            count: h.count(),
            sum: h.sum(),
            p50: h.percentile(0.50) as f64,
            p90: h.percentile(0.90) as f64,
            p99: h.percentile(0.99) as f64,
            buckets: h.snapshot(),
            sketch: h
                .sketch
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        })
        .collect();
    hs.sort_by_key(|s| s.name);
    (cs, hs)
}

/// Emit every registered counter and histogram to the sink.
pub(crate) fn flush_registry() {
    let counters: Vec<&'static Counter> = REGISTRY
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for c in counters {
        sink::emit_counter(c.name, c.value());
    }
    let hists: Vec<&'static Hist> = REGISTRY
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for h in hists {
        sink::emit_hist(h.name, h.count(), h.sum(), &h.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_matches_index() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in the bucket whose upper bound contains it.
        for v in [0u64, 1, 2, 3, 5, 1000, 1 << 40] {
            assert!(v <= bucket_upper(bucket_index(v)));
        }
    }

    #[test]
    fn extreme_samples_land_in_well_defined_edge_buckets() {
        // Regression: 0 and u64::MAX must map inside the fixed bucket
        // array with consistent [lower, upper] bounds, not out of range.
        assert_eq!(bucket_index(0), 0);
        assert!(bucket_index(0) < BUCKETS);
        assert_eq!((bucket_lower(0), bucket_upper(0)), (0, 0));
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_lower(64), 1u64 << 63);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Bounds nest cleanly: each bucket starts one past the last.
        for i in 1..BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i}");
        }
    }

    #[test]
    fn percentile_interpolates_without_dividing_by_zero() {
        // A single-bucket histogram is the classic divide-by-zero
        // hazard for interpolating percentiles (no second bucket to
        // span); here the divisor is the winning bucket's own non-zero
        // count. All 10 samples in bucket 4 ([8, 15]):
        let mut counts = vec![0u64; BUCKETS];
        counts[4] = 10;
        let p50 = percentile_from(&counts, 0.50);
        assert!((8..=15).contains(&p50), "p50 = {p50}");
        assert!(percentile_from(&counts, 0.0) >= 8);
        assert_eq!(percentile_from(&counts, 1.0), 15);

        // Zero-width buckets return their exact value.
        let mut zeros = vec![0u64; BUCKETS];
        zeros[0] = 7;
        assert_eq!(percentile_from(&zeros, 0.5), 0);
        let mut ones = vec![0u64; BUCKETS];
        ones[1] = 3;
        assert_eq!(percentile_from(&ones, 0.99), 1);

        // Empty histogram: defined (0), not NaN or a panic.
        assert_eq!(percentile_from(&vec![0u64; BUCKETS], 0.5), 0);

        // u64::MAX samples: last bucket, no overflow in interpolation.
        let mut top = vec![0u64; BUCKETS];
        top[64] = 2;
        let p = percentile_from(&top, 0.5);
        assert!(p >= 1u64 << 63);

        // Interpolation is monotone in q across a two-bucket split.
        let mut two = vec![0u64; BUCKETS];
        two[3] = 5; // [4, 7]
        two[5] = 5; // [16, 31]
        let lo = percentile_from(&two, 0.25);
        let hi = percentile_from(&two, 0.75);
        assert!((4..=7).contains(&lo), "q25 = {lo}");
        assert!((16..=31).contains(&hi), "q75 = {hi}");
        // NaN q is defined as the minimum, not a panic.
        assert!(percentile_from(&two, f64::NAN) <= 7);
    }

    #[test]
    fn disarmed_metrics_stay_zero() {
        // A counter that is never armed must never register or count.
        static LOCAL: Counter = Counter::new("test.disarmed");
        if !crate::enabled() {
            LOCAL.add(5);
            assert_eq!(LOCAL.value(), 0);
        }
    }
}
