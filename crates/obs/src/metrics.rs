//! Atomic counters and fixed-bucket (log2) histograms with a global
//! registry, dumped to the sink by [`flush`](crate::flush).
//!
//! Both types are designed to live in `static` items inside
//! instrumented crates:
//!
//! ```
//! static EVALS: rfkit_obs::Counter = rfkit_obs::Counter::new("opt.evals.demo");
//! static ITERS: rfkit_obs::Hist = rfkit_obs::Hist::new("demo.iters");
//! EVALS.add(3);
//! ITERS.record(17);
//! ```
//!
//! Registration is lazy: the first armed `add`/`record` pushes the
//! static into the registry, so flushing only reports metrics that
//! were actually touched.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::sink;

/// Number of log2 buckets: value 0, then one bucket per power of two
/// up to `u64::MAX` (index = 64 - leading_zeros).
pub const BUCKETS: usize = 65;

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    hists: Mutex<Vec<&'static Hist>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    hists: Mutex::new(Vec::new()),
};

/// A monotonically increasing counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create an unregistered counter (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Increment by `n`. No-op unless telemetry is armed.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (0 until armed and touched).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            REGISTRY
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(self);
        }
    }
}

/// A histogram over `u64` samples with log2 buckets (65 fixed buckets,
/// so recording is allocation-free and lock-free).
pub struct Hist {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

/// Bucket index for a sample: 0 holds the value 0, bucket `i` holds
/// `2^(i-1) ..= 2^i - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturates at `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Hist {
    /// Create an unregistered histogram (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Hist {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample. No-op unless telemetry is armed.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow, telemetry-only).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of non-empty buckets as `(inclusive_upper, count)`.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect()
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            REGISTRY
                .hists
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(self);
        }
    }
}

/// Emit every registered counter and histogram to the sink.
pub(crate) fn flush_registry() {
    let counters: Vec<&'static Counter> = REGISTRY
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for c in counters {
        sink::emit_counter(c.name, c.value());
    }
    let hists: Vec<&'static Hist> = REGISTRY
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for h in hists {
        sink::emit_hist(h.name, h.count(), h.sum(), &h.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_matches_index() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in the bucket whose upper bound contains it.
        for v in [0u64, 1, 2, 3, 5, 1000, 1 << 40] {
            assert!(v <= bucket_upper(bucket_index(v)));
        }
    }

    #[test]
    fn disarmed_metrics_stay_zero() {
        // A counter that is never armed must never register or count.
        static LOCAL: Counter = Counter::new("test.disarmed");
        if !crate::enabled() {
            LOCAL.add(5);
            assert_eq!(LOCAL.value(), 0);
        }
    }
}
