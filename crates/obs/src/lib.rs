//! rfkit-obs: dependency-free structured tracing + metrics.
//!
//! Compiled into every crate but runtime-gated: with `RFKIT_TRACE` and
//! `RFKIT_LOG` unset, every instrumentation call is a single relaxed
//! atomic load plus a predictable branch. When armed, the crate records
//! RAII [`Span`]s with monotonic timing, [`Counter`]s, log2-bucket
//! [`Hist`]ograms and free-form numeric [`event`]s into a JSONL sink
//! (default `results/TRACE_<secs>_<pid>.jsonl`, overridable via
//! `RFKIT_TRACE_OUT`).
//!
//! Determinism contract (PR 1): telemetry is strictly write-only with
//! respect to the numeric pipeline. Nothing in this crate is ever read
//! back by instrumented code, so arming tracing cannot change results.
//! Wall-clock types (`Instant`/`SystemTime`) live only here — numeric
//! crates time work through [`span`] and [`stopwatch`] so the
//! `nondeterminism` lint keeps them out of numeric code.
//!
//! Environment variables:
//!
//! | Variable           | Effect                                            |
//! |--------------------|---------------------------------------------------|
//! | `RFKIT_TRACE`      | non-empty & not `0`: record a trace               |
//! | `RFKIT_TRACE_MODE` | `agg`: fold into one `PROFILE_*.json` ([`agg`])   |
//! | `RFKIT_TRACE_OUT`  | sink path (implies `RFKIT_TRACE`)                 |
//! | `RFKIT_LOG`        | non-empty & not `0`: echo human lines to stderr   |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod config;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod summary;

pub use config::{TraceConfig, TraceMode};
pub use metrics::{Counter, Hist};
pub use span::{span, stopwatch, Span, Stopwatch};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Global arming state: 0 = uninitialised, 1 = disabled, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);
/// Recording mode of the armed state: 0 = JSONL, 1 = aggregate.
static MODE: AtomicU8 = AtomicU8::new(0);
/// Serialises lazy init so exactly one thread installs the sink.
static INIT_LOCK: Mutex<()> = Mutex::new(());
/// Monotonic epoch for all `t_us` timestamps in one process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// True when telemetry is armed. This is the hot-path gate: a relaxed
/// atomic load and a branch. First call per process initialises from
/// the environment.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let _guard = INIT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // Double-check under the lock: another thread may have initialised.
    match STATE.load(Ordering::Relaxed) {
        2 => return true,
        1 => return false,
        _ => {}
    }
    let cfg = TraceConfig::from_env();
    apply(&cfg)
}

/// Install an explicit configuration, replacing any previous sink.
/// Intended for tests and embedding; normal use lets [`enabled`]
/// self-initialise from the environment on first touch.
pub fn init(cfg: &TraceConfig) {
    let _guard = INIT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    apply(cfg);
}

/// Shared tail of init paths; caller holds `INIT_LOCK`.
fn apply(cfg: &TraceConfig) -> bool {
    let _ = EPOCH.set(Instant::now());
    let armed = cfg.trace || cfg.log;
    let agg = cfg.trace && cfg.mode == TraceMode::Agg;
    if agg {
        // A profile covers exactly one armed window: re-arming
        // aggregation starts a fresh call-path tree.
        agg::reset();
    }
    sink::install(cfg);
    MODE.store(if agg { 1 } else { 0 }, Ordering::Relaxed);
    STATE.store(if armed { 2 } else { 1 }, Ordering::Relaxed);
    armed
}

/// True when armed in aggregate-profile mode. Only meaningful after
/// [`enabled`] returned true.
#[inline]
pub(crate) fn agg_mode() -> bool {
    MODE.load(Ordering::Relaxed) == 1
}

/// Microseconds since the trace epoch (first telemetry touch). Returns
/// 0 before initialisation so callers never observe time going
/// backwards between records.
#[inline]
pub fn now_us() -> u64 {
    match EPOCH.get() {
        Some(t0) => t0.elapsed().as_micros() as u64,
        None => 0,
    }
}

/// Record a named event with numeric fields. No-op unless armed. In
/// JSONL mode the event streams to the sink (non-finite values
/// serialise as JSON `null`); in aggregate mode it folds into a
/// per-name first/last summary in the profile.
#[inline]
pub fn event(name: &str, fields: &[(&str, f64)]) {
    if !enabled() {
        return;
    }
    if agg_mode() {
        agg::record_event(name, fields);
    } else {
        sink::emit_event(name, fields);
    }
}

/// Dump cumulative state to the sink: in JSONL mode every registered
/// counter and histogram (spans and events stream as they happen); in
/// aggregate mode the whole profile — call-path tree, counters,
/// histogram sketches, event summaries — as one `PROFILE_*.json`.
/// Call at the end of a run (binaries do; the traced CI stages rely
/// on it).
pub fn flush() {
    if !enabled() {
        return;
    }
    if agg_mode() {
        agg::flush_profile();
    } else {
        metrics::flush_registry();
    }
}

/// Path of the active JSONL sink, if tracing to a file.
pub fn trace_path() -> Option<std::path::PathBuf> {
    sink::path()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_us_is_zero_before_epoch_then_monotone() {
        // Whether or not another test initialised the epoch, successive
        // readings never decrease.
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
