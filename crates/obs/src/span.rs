//! RAII spans with monotonic timing and self-time accounting, plus a
//! [`Stopwatch`] for callers that want a raw elapsed-microseconds
//! reading without naming `std::time` types themselves.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::{agg, sink};

// Timer-resolution jitter can make the sum of child durations exceed
// the parent's own measurement; self time then clamps to zero instead
// of going "negative" (wrapping). The clamp count is telemetry about
// the telemetry: a handful per run is clock granularity, a flood means
// an instrumentation bug (e.g. spans closed out of order).
static OBS_SELFTIME_CLAMPED: crate::Counter = crate::Counter::new("obs.selftime.clamped");
static CLAMP_WARNED: AtomicBool = AtomicBool::new(false);

/// Self time from a span's measured duration and accumulated child
/// time, with the negative case clamped. Returns `(self_ns, clamped)`.
#[inline]
pub(crate) fn attribute_self(dur_ns: u64, child_ns: u64) -> (u64, bool) {
    (dur_ns.saturating_sub(child_ns), child_ns > dur_ns)
}

// Per-thread stack of child-time accumulators: one `u64` of
// accumulated child nanoseconds per live span on this thread. A
// closing span adds its duration to its parent's top-of-stack entry,
// so `self time = duration - children` without any allocation per
// span beyond the stack slot.
thread_local! {
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Small dense thread id for trace records (assigned on first use per
/// thread, stable for the thread's lifetime).
pub(crate) fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// A live trace span; records duration and self-time on drop. Obtain
/// via [`span`] and bind it to a named variable (`let _span = ...`) —
/// `let _ = span(..)` drops immediately and records nothing useful
/// (the `obs-span-leak` lint in rfkit-analyze flags that pattern).
#[must_use = "binding a span to `_` ends it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    t0_us: u64,
    // Captured at open so a mid-span re-init cannot route the exit to
    // the wrong backend (the tree bounds-checks stale ids anyway).
    agg: bool,
}

/// Open a span. No-op (no clock read, no allocation) unless armed.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let agg = crate::agg_mode();
    if agg {
        agg::enter(name);
    }
    CHILD_NS.with(|s| s.borrow_mut().push(0));
    Span {
        inner: Some(SpanInner {
            name,
            start: Instant::now(),
            t0_us: crate::now_us(),
            agg,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            let mine = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(dur_ns);
            }
            mine
        });
        let (self_ns, clamped) = attribute_self(dur_ns, child_ns);
        if clamped {
            OBS_SELFTIME_CLAMPED.add(1);
            if !CLAMP_WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "rfkit-obs: span `{}` children outran parent by {}ns; \
                     self time clamped to 0 (counted in obs.selftime.clamped)",
                    inner.name,
                    child_ns - dur_ns
                );
            }
        }
        if inner.agg {
            agg::exit(dur_ns, self_ns);
        } else {
            sink::emit_span(
                inner.name,
                inner.t0_us,
                dur_ns / 1_000,
                self_ns / 1_000,
                tid(),
            );
        }
    }
}

/// A stopwatch that only ticks when telemetry is armed. Lets numeric
/// crates time a section and feed a [`Hist`](crate::Hist) without
/// touching `Instant` directly (which their nondeterminism lint bans).
pub struct Stopwatch(Option<Instant>);

/// Start a stopwatch; returns an inert one when telemetry is off.
#[inline]
pub fn stopwatch() -> Stopwatch {
    if crate::enabled() {
        Stopwatch(Some(Instant::now()))
    } else {
        Stopwatch(None)
    }
}

impl Stopwatch {
    /// Elapsed microseconds, or `None` when started disarmed.
    #[inline]
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_span_and_stopwatch_are_inert() {
        // These tests run without arming the global state via env, but
        // another test in this process may have armed it; only assert
        // the invariants that hold either way.
        let sw = Stopwatch(None);
        assert_eq!(sw.elapsed_us(), None);
        let s = Span { inner: None };
        drop(s); // must not touch the thread-local stack
        CHILD_NS.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn attribute_self_clamps_instead_of_wrapping() {
        // Normal case: self = duration - children.
        assert_eq!(attribute_self(100, 40), (60, false));
        // Zero-duration span (sub-tick work): zero self, not clamped.
        assert_eq!(attribute_self(0, 0), (0, false));
        // Children exactly fill the parent: zero self, not clamped.
        assert_eq!(attribute_self(100, 100), (0, false));
        // Timer jitter made children outrun the parent: clamped to 0,
        // and flagged so the clamp counter records it.
        assert_eq!(attribute_self(100, 140), (0, true));
        assert_eq!(attribute_self(0, 1), (0, true));
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let a = tid();
        let b = tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(tid).join().expect("thread join");
        assert_ne!(a, other);
    }
}
