//! Trace configuration, normally derived from the environment.

use std::path::PathBuf;

/// What an armed trace records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// One JSONL line per span/event as it happens, metrics on flush.
    /// Complete but heavy: megabytes on a long run.
    #[default]
    Jsonl,
    /// In-process streaming aggregation: spans fold into a call-path
    /// tree, histogram samples into quantile sketches, and the run
    /// writes one compact `PROFILE_*.json` on flush. Cheap enough to
    /// leave armed under load and in every CI stage.
    Agg,
}

/// Runtime telemetry configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record a trace file.
    pub trace: bool,
    /// Echo human-readable lines to stderr.
    pub log: bool,
    /// Explicit sink path; `None` means the default
    /// `results/TRACE_<secs>_<pid>.jsonl` (Jsonl mode) or
    /// `results/PROFILE_<secs>_<pid>.json` (Agg mode).
    pub out: Option<PathBuf>,
    /// Recording mode (`RFKIT_TRACE_MODE=agg` selects aggregation).
    pub mode: TraceMode,
}

impl TraceConfig {
    /// Read `RFKIT_TRACE`, `RFKIT_LOG`, `RFKIT_TRACE_OUT` and
    /// `RFKIT_TRACE_MODE`. Setting `RFKIT_TRACE_OUT` implies
    /// `RFKIT_TRACE`.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Like [`from_env`](Self::from_env) but with an injectable
    /// variable lookup, so tests need not mutate process state.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Self {
        let truthy = |v: Option<String>| {
            v.map(|s| {
                let t = s.trim();
                !t.is_empty() && t != "0"
            })
            .unwrap_or(false)
        };
        let out = get("RFKIT_TRACE_OUT")
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .map(PathBuf::from);
        let mode = match get("RFKIT_TRACE_MODE") {
            Some(s) if s.trim().eq_ignore_ascii_case("agg") => TraceMode::Agg,
            Some(s) if !s.trim().is_empty() && !s.trim().eq_ignore_ascii_case("jsonl") => {
                eprintln!(
                    "rfkit-obs: unknown RFKIT_TRACE_MODE `{}` (want `jsonl` or `agg`); \
                     recording JSONL",
                    s.trim()
                );
                TraceMode::Jsonl
            }
            _ => TraceMode::Jsonl,
        };
        TraceConfig {
            trace: truthy(get("RFKIT_TRACE")) || out.is_some(),
            log: truthy(get("RFKIT_LOG")),
            out,
            mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn unset_environment_is_fully_disabled() {
        let cfg = TraceConfig::from_lookup(lookup(&[]));
        assert_eq!(cfg, TraceConfig::default());
        assert!(!cfg.trace && !cfg.log);
    }

    #[test]
    fn zero_and_empty_are_falsey() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "0"), ("RFKIT_LOG", "  ")]));
        assert!(!cfg.trace);
        assert!(!cfg.log);
    }

    #[test]
    fn one_arms_trace_and_log_independently() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "1")]));
        assert!(cfg.trace && !cfg.log);
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_LOG", "yes")]));
        assert!(!cfg.trace && cfg.log);
    }

    #[test]
    fn trace_out_implies_trace_and_sets_path() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE_OUT", "/tmp/t.jsonl")]));
        assert!(cfg.trace);
        assert_eq!(
            cfg.out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
    }

    #[test]
    fn trace_mode_parses_agg_and_defaults_to_jsonl() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "1")]));
        assert_eq!(cfg.mode, TraceMode::Jsonl);
        for v in ["agg", "AGG", " agg "] {
            let cfg =
                TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "1"), ("RFKIT_TRACE_MODE", v)]));
            assert_eq!(cfg.mode, TraceMode::Agg, "value {v:?}");
        }
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE_MODE", "jsonl")]));
        assert_eq!(cfg.mode, TraceMode::Jsonl);
    }
}
