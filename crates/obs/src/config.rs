//! Trace configuration, normally derived from the environment.

use std::path::PathBuf;

/// Runtime telemetry configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record a JSONL trace file.
    pub trace: bool,
    /// Echo human-readable lines to stderr.
    pub log: bool,
    /// Explicit sink path; `None` means the default
    /// `results/TRACE_<secs>_<pid>.jsonl`.
    pub out: Option<PathBuf>,
}

impl TraceConfig {
    /// Read `RFKIT_TRACE`, `RFKIT_LOG` and `RFKIT_TRACE_OUT`.
    /// Setting `RFKIT_TRACE_OUT` implies `RFKIT_TRACE`.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Like [`from_env`](Self::from_env) but with an injectable
    /// variable lookup, so tests need not mutate process state.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Self {
        let truthy = |v: Option<String>| {
            v.map(|s| {
                let t = s.trim();
                !t.is_empty() && t != "0"
            })
            .unwrap_or(false)
        };
        let out = get("RFKIT_TRACE_OUT")
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .map(PathBuf::from);
        TraceConfig {
            trace: truthy(get("RFKIT_TRACE")) || out.is_some(),
            log: truthy(get("RFKIT_LOG")),
            out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn unset_environment_is_fully_disabled() {
        let cfg = TraceConfig::from_lookup(lookup(&[]));
        assert_eq!(cfg, TraceConfig::default());
        assert!(!cfg.trace && !cfg.log);
    }

    #[test]
    fn zero_and_empty_are_falsey() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "0"), ("RFKIT_LOG", "  ")]));
        assert!(!cfg.trace);
        assert!(!cfg.log);
    }

    #[test]
    fn one_arms_trace_and_log_independently() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE", "1")]));
        assert!(cfg.trace && !cfg.log);
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_LOG", "yes")]));
        assert!(!cfg.trace && cfg.log);
    }

    #[test]
    fn trace_out_implies_trace_and_sets_path() {
        let cfg = TraceConfig::from_lookup(lookup(&[("RFKIT_TRACE_OUT", "/tmp/t.jsonl")]));
        assert!(cfg.trace);
        assert_eq!(
            cfg.out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
    }
}
