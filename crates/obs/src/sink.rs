//! The trace sink: a mutex-guarded JSONL file plus optional stderr
//! echo. Each record is one `write_all` of a complete line — no
//! user-space buffering, so a process that exits without unwinding
//! still leaves a parseable trace behind.

use std::fs::{self, File};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::config::{TraceConfig, TraceMode};
use crate::json::JsonObj;

struct SinkState {
    file: Option<File>,
    path: Option<PathBuf>,
    log: bool,
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

/// Install the sink for `cfg`; called under the init lock. Failure to
/// open the trace file degrades to stderr-only (with a warning) rather
/// than panicking inside instrumented numeric code. In aggregate mode
/// nothing streams — the path is only remembered so
/// [`write_whole`] can drop the profile there on flush.
pub(crate) fn install(cfg: &TraceConfig) {
    let mut state = SinkState {
        file: None,
        path: None,
        log: cfg.log,
    };
    if cfg.trace {
        let path = cfg.out.clone().unwrap_or_else(|| default_path(cfg.mode));
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = fs::create_dir_all(dir);
        }
        match cfg.mode {
            TraceMode::Agg => state.path = Some(path),
            TraceMode::Jsonl => match File::create(&path) {
                Ok(f) => {
                    state.file = Some(f);
                    state.path = Some(path);
                }
                Err(e) => {
                    eprintln!(
                        "rfkit-obs: cannot create trace file {}: {e}",
                        path.display()
                    );
                }
            },
        }
    }
    let mut guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(state);
    drop(guard);
    if (cfg.trace && cfg.mode == TraceMode::Jsonl) || cfg.log {
        emit_meta();
    }
}

fn default_path(mode: TraceMode) -> PathBuf {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let pid = std::process::id();
    PathBuf::from("results").join(match mode {
        TraceMode::Jsonl => format!("TRACE_{secs}_{pid}.jsonl"),
        TraceMode::Agg => format!("PROFILE_{secs}_{pid}.json"),
    })
}

/// Replace the sink file's entire contents (aggregate-profile flush).
/// Creates the file on first use; errors degrade to a warning.
pub(crate) fn write_whole(text: &str) {
    let path = {
        let guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        guard.as_ref().and_then(|s| s.path.clone())
    };
    let Some(path) = path else { return };
    if let Err(e) = fs::write(&path, text) {
        eprintln!("rfkit-obs: cannot write profile {}: {e}", path.display());
    }
}

/// Path of the active trace file, if any.
pub(crate) fn path() -> Option<PathBuf> {
    SINK.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .and_then(|s| s.path.clone())
}

/// Write one finished JSONL line (no trailing newline in `line`) and
/// optionally echo a human-readable rendering to stderr.
fn write_line(line: &str, human: impl FnOnce() -> String) {
    let mut guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(state) = guard.as_mut() else { return };
    if let Some(f) = state.file.as_mut() {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let _ = f.write_all(buf.as_bytes());
    }
    let log = state.log;
    drop(guard);
    if log {
        eprintln!("rfkit-obs: {}", human());
    }
}

fn emit_meta() {
    let mut o = JsonObj::new();
    o.num("t_us", crate::now_us() as f64);
    o.str("kind", "meta");
    o.str("name", "run");
    o.num("pid", std::process::id() as f64);
    o.str(
        "threads_env",
        &std::env::var("RFKIT_THREADS").unwrap_or_default(),
    );
    write_line(&o.finish(), || "trace started".to_string());
}

pub(crate) fn emit_span(name: &str, t0_us: u64, dur_us: u64, self_us: u64, tid: u64) {
    let mut o = JsonObj::new();
    o.num("t_us", t0_us as f64);
    o.str("kind", "span");
    o.str("name", name);
    o.num("dur_us", dur_us as f64);
    o.num("self_us", self_us as f64);
    o.num("tid", tid as f64);
    write_line(&o.finish(), || {
        format!("span {name} {dur_us}us (self {self_us}us)")
    });
}

pub(crate) fn emit_event(name: &str, fields: &[(&str, f64)]) {
    let mut o = JsonObj::new();
    o.num("t_us", crate::now_us() as f64);
    o.str("kind", "event");
    o.str("name", name);
    o.num("tid", crate::span::tid() as f64);
    for (k, v) in fields {
        o.num(k, *v);
    }
    write_line(&o.finish(), || {
        let mut s = format!("event {name}");
        for (k, v) in fields {
            s.push_str(&format!(" {k}={v}"));
        }
        s
    });
}

pub(crate) fn emit_counter(name: &str, value: u64) {
    let mut o = JsonObj::new();
    o.num("t_us", crate::now_us() as f64);
    o.str("kind", "counter");
    o.str("name", name);
    o.num("value", value as f64);
    write_line(&o.finish(), || format!("counter {name} = {value}"));
}

pub(crate) fn emit_hist(name: &str, count: u64, sum: u64, buckets: &[(u64, u64)]) {
    let mut o = JsonObj::new();
    o.num("t_us", crate::now_us() as f64);
    o.str("kind", "hist");
    o.str("name", name);
    o.num("count", count as f64);
    o.num("sum", sum as f64);
    let mut arr = String::from("[");
    for (i, (upper, c)) in buckets.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&format!("[{upper},{c}]"));
    }
    arr.push(']');
    o.raw("buckets", &arr);
    write_line(&o.finish(), || {
        format!("hist {name} count={count} sum={sum}")
    });
}
