//! Drive the `rfkit-trace` binary end-to-end over profile fixtures:
//! the regression gate (`diff`), the profile views (`tree`, `flame`),
//! and the `--expect-min` floor. These tests never arm tracing — they
//! write profile documents directly — so many tests per file are fine.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rfkit_cli_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir fixture dir");
    dir
}

/// A minimal two-node profile with the sweep path at `sweep_self_us`
/// self-microseconds and a counter at `hits`.
fn profile_text(sweep_self_us: u64, hits: u64) -> String {
    format!(
        "{{\"kind\":\"rfkit-profile\",\"version\":1,\n\
         \"meta\":{{\"pid\":1,\"threads_env\":\"\",\"wall_us\":50000}},\n\
         \"nodes\":[\n\
         {{\"path\":\"design.total\",\"name\":\"design.total\",\"count\":1,\
         \"total_us\":{total},\"self_us\":2000,\"max_us\":{total},\
         \"p50_us\":{total},\"p95_us\":{total}}},\n\
         {{\"path\":\"design.total;circuit.ac.sweep\",\"name\":\"circuit.ac.sweep\",\
         \"count\":4,\"total_us\":{sweep},\"self_us\":{sweep},\"max_us\":{max},\
         \"p50_us\":{p50},\"p95_us\":{max}}}\n\
         ],\n\
         \"counters\":{{\"plan.cache.hit\":{hits}}},\n\
         \"hists\":[],\n\
         \"events\":[]\n}}\n",
        total = sweep_self_us + 2000,
        sweep = sweep_self_us,
        max = sweep_self_us / 3,
        p50 = sweep_self_us / 4,
    )
}

fn write_profile(name: &str, text: &str) -> PathBuf {
    let path = fixture_dir().join(name);
    std::fs::write(&path, text).expect("write fixture");
    path
}

fn trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rfkit-trace"))
        .args(args)
        .output()
        .expect("run rfkit-trace")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn self_diff_passes_clean() {
    let base = write_profile("self_base.json", &profile_text(20_000, 10));
    let out = trace(&[
        "diff",
        base.to_str().expect("utf8 path"),
        base.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "self-diff failed: {}", stderr(&out));
    assert!(stdout(&out).contains("no significant change"));
}

#[test]
fn injected_slowdown_fails_the_gate_with_a_regression_row() {
    // 2.5x slowdown on the sweep path: well past the default 1.5x
    // tolerance and the 1000us floor.
    let base = write_profile("slow_base.json", &profile_text(20_000, 10));
    let cur = write_profile("slow_cur.json", &profile_text(50_000, 10));
    let out = trace(&[
        "diff",
        base.to_str().expect("utf8 path"),
        cur.to_str().expect("utf8 path"),
    ]);
    assert!(
        !out.status.success(),
        "gate passed a 2.5x slowdown:\n{}",
        stdout(&out)
    );
    assert_eq!(out.status.code(), Some(1));
    let table = stdout(&out);
    assert!(
        table.contains("regressed") && table.contains("circuit.ac.sweep"),
        "no regression row in:\n{table}"
    );
    assert!(table.contains("2.50x"), "ratio missing in:\n{table}");

    // The same pair inside the tolerance passes: rel-tol 4 spans 2.5x.
    let out = trace(&[
        "diff",
        "--rel-tol",
        "4.0",
        base.to_str().expect("utf8 path"),
        cur.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "rel-tol 4 still failed");

    // And a floor above both sides mutes the path entirely.
    let out = trace(&[
        "diff",
        "--min-self-us",
        "60000",
        base.to_str().expect("utf8 path"),
        cur.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "floor did not mute the noise");
}

#[test]
fn improvement_is_reported_but_passes() {
    let base = write_profile("imp_base.json", &profile_text(50_000, 10));
    let cur = write_profile("imp_cur.json", &profile_text(20_000, 10));
    let out = trace(&[
        "diff",
        base.to_str().expect("utf8 path"),
        cur.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "improvement failed the gate");
    assert!(stdout(&out).contains("improved"));
}

#[test]
fn expect_min_enforces_a_counter_floor_on_profiles() {
    let p = write_profile("min_prof.json", &profile_text(20_000, 10));
    let path = p.to_str().expect("utf8 path");
    // Floor satisfied (10 >= 10): passes.
    let out = trace(&[path, "--expect-min", "plan.cache.hit:10"]);
    assert!(out.status.success(), "floor 10 failed: {}", stderr(&out));
    // Floor violated (10 < 11): exit 1 with a floor message.
    let out = trace(&[path, "--expect-min", "plan.cache.hit:11"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("below the floor"));
    // Absent counter counts as 0: fails any positive floor.
    let out = trace(&[path, "--expect-min", "no.such.counter:1"]);
    assert_eq!(out.status.code(), Some(1));
    // Symmetry: --expect-max still passes on the same profile.
    let out = trace(&[path, "--expect-max", "plan.cache.hit:10"]);
    assert!(out.status.success());
}

#[test]
fn summarize_auto_detects_profiles_and_honours_expect() {
    let p = write_profile("sum_prof.json", &profile_text(20_000, 10));
    let path = p.to_str().expect("utf8 path");
    let out = trace(&[path, "--expect", "circuit.ac.sweep"]);
    assert!(out.status.success(), "expect failed: {}", stderr(&out));
    assert!(stdout(&out).contains("circuit.ac.sweep"));
    let out = trace(&[path, "--expect", "absent.span"]);
    assert_eq!(out.status.code(), Some(1));
    // --json emits the summary shape for profiles too.
    let out = trace(&[path, "--json"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("\"counters\":{\"plan.cache.hit\":10}"));
}

#[test]
fn tree_and_flame_render_profiles() {
    let p = write_profile("view_prof.json", &profile_text(20_000, 10));
    let path = p.to_str().expect("utf8 path");
    let out = trace(&["tree", path]);
    assert!(out.status.success(), "tree failed: {}", stderr(&out));
    let tree = stdout(&out);
    assert!(tree.contains("design.total"), "tree:\n{tree}");
    assert!(tree.contains("  circuit.ac.sweep"), "indent in:\n{tree}");
    assert!(tree.contains("self%"), "columns in:\n{tree}");
    let out = trace(&["flame", path]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("design.total;circuit.ac.sweep 20000\n"));
}

#[test]
fn diff_rejects_non_profiles_with_usage_exit() {
    let bogus = write_profile("bogus.json", "{\"kind\":\"other\"}");
    let out = trace(&[
        "diff",
        bogus.to_str().expect("utf8 path"),
        bogus.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("not an aggregate profile"));
}
