//! End-to-end aggregate mode: arm `TraceMode::Agg` into a temp file,
//! run nested / same-name / zero-duration spans plus metrics and
//! events, flush, and parse the PROFILE json back.
//!
//! Trace arming is process-global, so this file holds exactly ONE
//! test (same pattern as trace_roundtrip.rs).

use rfkit_obs::{profile, Counter, Hist, TraceConfig, TraceMode};

static TASKS: Counter = Counter::new("test.agg.tasks");
static ITERS: Hist = Hist::new("test.agg.iters");

fn busy_wait_us(us: u64) {
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_micros() < us as u128 {
        std::hint::spin_loop();
    }
}

#[test]
fn agg_mode_folds_spans_into_a_call_path_profile() {
    let path = std::env::temp_dir().join(format!("rfkit_obs_agg_{}.json", std::process::id()));
    rfkit_obs::init(&TraceConfig {
        trace: true,
        log: false,
        out: Some(path.clone()),
        mode: TraceMode::Agg,
    });
    assert!(rfkit_obs::enabled());

    {
        let _run = rfkit_obs::span("test.run");
        for _ in 0..3 {
            let _outer = rfkit_obs::span("test.step");
            busy_wait_us(300);
            {
                // Nested same-name span: must land on its own deeper
                // path (test.run;test.step;test.step), not fold into
                // the parent, and self time stays non-negative.
                let _inner = rfkit_obs::span("test.step");
                busy_wait_us(200);
            }
        }
        // Zero-duration span: closes in well under a microsecond.
        let _zero = rfkit_obs::span("test.zero");
        drop(_zero);
        rfkit_obs::event("test.agg.gen", &[("gen", 0.0), ("best", 9.0)]);
        rfkit_obs::event("test.agg.gen", &[("gen", 4.0), ("best", 1.5)]);
        TASKS.add(11);
        for v in [1u64, 2, 400, 900] {
            ITERS.record(v);
        }
    }
    rfkit_obs::flush();

    let text = std::fs::read_to_string(&path).expect("profile file readable");
    let _ = std::fs::remove_file(&path);
    assert!(profile::is_profile(&text), "not a profile:\n{text}");
    let p = profile::parse(&text).expect("profile parses");

    let node = |path: &str| {
        p.nodes
            .iter()
            .find(|n| n.path == path)
            .unwrap_or_else(|| panic!("path `{path}` missing from profile:\n{text}"))
    };
    let outer = node("test.run;test.step");
    let inner = node("test.run;test.step;test.step");
    assert_eq!(outer.count, 3);
    assert_eq!(inner.count, 3);
    assert_eq!(outer.name, "test.step");
    // ~300us busy self per outer call; the inner ~200us must be
    // attributed to the inner path, not the outer one.
    assert!(outer.total_us > outer.self_us, "outer has a child");
    assert!(
        inner.self_us >= 300,
        "inner self {}us too small:\n{text}",
        inner.self_us
    );
    // Self times are u64 by construction; the clamp satellite
    // guarantees they came out of a non-wrapping subtraction. The
    // whole-tree invariant: self <= total at every path.
    for n in &p.nodes {
        assert!(
            n.self_us <= n.total_us,
            "self {} > total {} at {}",
            n.self_us,
            n.total_us,
            n.path
        );
    }
    let zero = node("test.run;test.zero");
    assert_eq!(zero.count, 1, "zero-duration span still counts");

    assert_eq!(p.counters.get("test.agg.tasks"), Some(&11));
    let h = p.hists.get("test.agg.iters").expect("hist in profile");
    assert_eq!(h.count, 4);
    assert_eq!(h.sum, 1303);
    // Interpolated percentile: within the 512..=1023 bucket for p99,
    // and the agg-mode sketch tightens the estimate to ~2% of 900.
    assert!(h.p99 >= 512.0 && h.p99 <= 1023.0, "p99 = {}", h.p99);

    let gen = p
        .events
        .iter()
        .find(|e| e.name == "test.agg.gen")
        .expect("event series in profile");
    assert_eq!(gen.points, 2);
    assert_eq!(gen.first.get("best"), Some(&9.0));
    assert_eq!(gen.last.get("best"), Some(&1.5));
    // The flush records its own shape.
    assert!(p.events.iter().any(|e| e.name == "profile.flush"));

    // The summarizer view merges the two test.step paths by name.
    let s = profile::to_summary(&p);
    let step = s
        .spans
        .iter()
        .find(|a| a.name == "test.step")
        .expect("merged span");
    assert_eq!(step.count, 6);

    // Tree + flame renderings cover the recorded paths.
    let tree = profile::render_tree(&p, 100);
    assert!(tree.contains("test.run"));
    assert!(tree.contains("    test.step"), "nested indent in:\n{tree}");
    let flame = profile::render_flame(&p);
    assert!(flame.contains("test.run;test.step;test.step "));
}
