//! End-to-end: arm tracing into a temp file, emit spans/events/
//! metrics, flush, and summarize the file back.
//!
//! Trace arming is process-global, so this file holds exactly ONE
//! test (the same single-test-per-file pattern as the determinism
//! test in crates/opt).

use rfkit_obs::{summary, Counter, Hist, TraceConfig};

static TASKS: Counter = Counter::new("test.tasks");
static ITERS: Hist = Hist::new("test.iters");

#[test]
fn armed_trace_round_trips_through_summarizer() {
    let path =
        std::env::temp_dir().join(format!("rfkit_obs_roundtrip_{}.jsonl", std::process::id()));
    rfkit_obs::init(&TraceConfig {
        trace: true,
        log: false,
        out: Some(path.clone()),
        ..TraceConfig::default()
    });
    assert!(rfkit_obs::enabled());
    assert_eq!(rfkit_obs::trace_path().as_deref(), Some(path.as_path()));

    {
        let _outer = rfkit_obs::span("test.outer");
        {
            let _inner = rfkit_obs::span("test.inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        rfkit_obs::event("test.gen", &[("gen", 0.0), ("best", 5.0)]);
        rfkit_obs::event("test.gen", &[("gen", 1.0), ("best", 2.5)]);
        rfkit_obs::event("test.nan", &[("bad", f64::NAN)]);
        TASKS.add(7);
        TASKS.add(3);
        for v in [1u64, 3, 9, 120] {
            ITERS.record(v);
        }
    }
    rfkit_obs::flush();

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let s = summary::summarize(&text).expect("trace parses");
    let _ = std::fs::remove_file(&path);

    // meta + 2 spans + 3 events + 1 counter + 1 hist = 8 records.
    assert_eq!(s.records, 8, "unexpected record count in:\n{text}");
    assert!(s.meta.contains_key("pid"));

    let outer = s
        .spans
        .iter()
        .find(|a| a.name == "test.outer")
        .expect("outer span recorded");
    let inner = s
        .spans
        .iter()
        .find(|a| a.name == "test.inner")
        .expect("inner span recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // The inner span slept ~2ms; self-time accounting must attribute
    // that to the inner span, not the outer one.
    assert!(inner.self_us >= 1_000, "inner self {}us", inner.self_us);
    assert!(
        outer.total_us >= inner.total_us,
        "outer {}us < inner {}us",
        outer.total_us,
        inner.total_us
    );
    assert!(
        outer.self_us <= outer.total_us - inner.total_us + 1_000,
        "outer self {}us should exclude inner {}us",
        outer.self_us,
        inner.total_us
    );

    assert_eq!(s.counters.get("test.tasks"), Some(&10));
    let hist = s.hists.get("test.iters").expect("hist recorded");
    assert_eq!(hist.count, 4);
    assert_eq!(hist.sum, 133);
    assert_eq!(hist.percentile(1.0), 127); // 120 lands in the 64..=127 bucket

    let gen = s
        .series
        .iter()
        .find(|sa| sa.name == "test.gen")
        .expect("event series");
    assert_eq!(gen.points, 2);
    assert_eq!(gen.first.get("best"), Some(&5.0));
    assert_eq!(gen.last.get("best"), Some(&2.5));
    // NaN fields serialise as null and simply drop out of the series.
    let nan = s
        .series
        .iter()
        .find(|sa| sa.name == "test.nan")
        .expect("nan event present");
    assert!(nan.last.is_empty());

    // The human and JSON renderers both cover the same data.
    let human = summary::render_human(&s, 10);
    assert!(human.contains("test.outer"));
    let parsed = rfkit_obs::json::parse(&summary::render_json(&s)).expect("json output parses");
    assert_eq!(
        parsed
            .get("records")
            .and_then(rfkit_obs::json::Json::as_f64),
        Some(8.0)
    );
}
