//! Property-based tests for two-port network algebra.

use proptest::prelude::*;
use rfkit_net::gains::{gamma_in, transducer_gain};
use rfkit_net::{Abcd, NoisyAbcd, SParams};
use rfkit_num::Complex;

/// Strategy for a "reasonable" passive-ish complex value.
fn cx(max_mag: f64) -> impl Strategy<Value = Complex> {
    (0.0..max_mag, -3.14..3.14f64).prop_map(|(r, t)| Complex::from_polar(r, t))
}

/// Strategy producing invertible, well-conditioned S matrices of active
/// devices (|S21| can exceed 1).
fn device_s() -> impl Strategy<Value = SParams> {
    (cx(0.8), cx(0.2), (0.5..5.0f64, -3.14..3.14f64), cx(0.8)).prop_filter_map(
        "usable S matrix",
        |(s11, s12, (m21, a21), s22)| {
            let s21 = Complex::from_polar(m21, a21);
            let s = SParams::new(s11, s12, s21, s22, 50.0);
            // Reject matrices whose conversions are near-singular.
            let ok = (Complex::ONE - s11).abs() > 0.05
                && (Complex::ONE + s11).abs() > 0.05
                && (Complex::ONE - s22).abs() > 0.05
                && (Complex::ONE + s22).abs() > 0.05
                && s.delta().abs() < 0.9;
            ok.then_some(s)
        },
    )
}

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol * (a.abs().max(b.abs()).max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn s_z_s_roundtrip(s in device_s()) {
        if let Ok(z) = s.to_z() {
            if let Ok(back) = z.to_s(50.0) {
                prop_assert!(close(s.s11(), back.s11(), 1e-8));
                prop_assert!(close(s.s21(), back.s21(), 1e-8));
            }
        }
    }

    #[test]
    fn s_y_s_roundtrip(s in device_s()) {
        if let Ok(y) = s.to_y() {
            if let Ok(back) = y.to_s(50.0) {
                prop_assert!(close(s.s12(), back.s12(), 1e-8));
                prop_assert!(close(s.s22(), back.s22(), 1e-8));
            }
        }
    }

    #[test]
    fn s_abcd_s_roundtrip(s in device_s()) {
        if let Ok(a) = s.to_abcd() {
            if let Ok(back) = a.to_s(50.0) {
                prop_assert!(close(s.s11(), back.s11(), 1e-8));
                prop_assert!(close(s.s21(), back.s21(), 1e-8));
                prop_assert!(close(s.s12(), back.s12(), 1e-8));
                prop_assert!(close(s.s22(), back.s22(), 1e-8));
            }
        }
    }

    #[test]
    fn cascade_with_through_is_identity(s in device_s()) {
        if let Ok(a) = s.to_abcd() {
            let chained = Abcd::through().cascade(&a).cascade(&Abcd::through());
            prop_assert!(close(chained.a(), a.a(), 1e-12));
            prop_assert!(close(chained.b(), a.b(), 1e-12));
            prop_assert!(close(chained.c(), a.c(), 1e-12));
            prop_assert!(close(chained.d(), a.d(), 1e-12));
        }
    }

    #[test]
    fn cascade_is_associative(s1 in device_s(), s2 in device_s(), s3 in device_s()) {
        if let (Ok(a1), Ok(a2), Ok(a3)) = (s1.to_abcd(), s2.to_abcd(), s3.to_abcd()) {
            let left = a1.cascade(&a2).cascade(&a3);
            let right = a1.cascade(&a2.cascade(&a3));
            prop_assert!(close(left.a(), right.a(), 1e-9));
            prop_assert!(close(left.d(), right.d(), 1e-9));
        }
    }

    #[test]
    fn transducer_gain_nonnegative(s in device_s(), gs in cx(0.9), gl in cx(0.9)) {
        let gt = transducer_gain(&s, gs, gl);
        prop_assert!(gt >= 0.0);
        prop_assert!(gt.is_finite());
    }

    #[test]
    fn gamma_in_matched_is_s11(s in device_s()) {
        prop_assert!(close(gamma_in(&s, Complex::ZERO), s.s11(), 1e-12));
    }

    #[test]
    fn passive_series_noise_factor_at_least_one(r in 0.1..500.0f64, x in -500.0..500.0f64) {
        let n = NoisyAbcd::passive_series(Complex::new(r, x), 290.0);
        let f = n.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        prop_assert!(f >= 1.0 - 1e-12, "F = {f}");
    }

    #[test]
    fn noise_cascade_order_matters_but_both_valid(r in 1.0..100.0f64) {
        // loss + noiseless vs noiseless + loss: leading loss is never better.
        let loss = NoisyAbcd::passive_series(Complex::real(r), 290.0);
        let thru = NoisyAbcd::through();
        let f_lead = loss.cascade(&thru).noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        let f_trail = thru.cascade(&loss).noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        prop_assert!((f_lead - f_trail).abs() < 1e-9); // through is neutral both ways
        prop_assert!(f_lead >= 1.0);
    }

    #[test]
    fn noise_params_roundtrip(fmin in 1.0..4.0f64, rn in 0.5..50.0f64, gopt in cx(0.7)) {
        let np = rfkit_net::NoiseParams::new(fmin, rn, gopt, 50.0);
        // Skip pathological Γopt → Yopt singularities.
        prop_assume!((Complex::ONE + gopt).abs() > 0.05);
        let noisy = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let back = noisy.noise_params(50.0).unwrap();
        prop_assert!((back.fmin - np.fmin).abs() < 1e-6 * np.fmin, "{} vs {}", back.fmin, np.fmin);
        prop_assert!((back.rn - np.rn).abs() < 1e-6 * np.rn);
        prop_assert!((back.gamma_opt - np.gamma_opt).abs() < 1e-6);
    }
}
