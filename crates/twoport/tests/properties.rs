//! Property-based tests for two-port network algebra. Cases come from a
//! fixed-seed `Rng64` stream (the workspace builds offline, so no
//! proptest), which keeps every run reproducible.

use rfkit_net::gains::{gamma_in, transducer_gain};
use rfkit_net::{Abcd, NoisyAbcd, SParams};
use rfkit_num::rng::Rng64;
use rfkit_num::Complex;

/// A "reasonable" passive-ish complex value with |z| < max_mag.
fn cx(rng: &mut Rng64, max_mag: f64) -> Complex {
    Complex::from_polar(
        rng.uniform(0.0, max_mag),
        rng.uniform(-std::f64::consts::PI, std::f64::consts::PI),
    )
}

/// Invertible, well-conditioned S matrix of an active device
/// (|S21| can exceed 1). Rejection-samples away near-singular draws.
fn device_s(rng: &mut Rng64) -> SParams {
    loop {
        let s11 = cx(rng, 0.8);
        let s12 = cx(rng, 0.2);
        let s21 = Complex::from_polar(
            rng.uniform(0.5, 5.0),
            rng.uniform(-std::f64::consts::PI, std::f64::consts::PI),
        );
        let s22 = cx(rng, 0.8);
        let s = SParams::new(s11, s12, s21, s22, 50.0);
        let ok = (Complex::ONE - s11).abs() > 0.05
            && (Complex::ONE + s11).abs() > 0.05
            && (Complex::ONE - s22).abs() > 0.05
            && (Complex::ONE + s22).abs() > 0.05
            && s.delta().abs() < 0.9;
        if ok {
            return s;
        }
    }
}

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol * (a.abs().max(b.abs()).max(1.0))
}

const CASES: usize = 128;

#[test]
fn s_z_s_roundtrip() {
    let mut rng = Rng64::new(0x2b02_0001);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        if let Ok(z) = s.to_z() {
            if let Ok(back) = z.to_s(50.0) {
                assert!(close(s.s11(), back.s11(), 1e-8));
                assert!(close(s.s21(), back.s21(), 1e-8));
            }
        }
    }
}

#[test]
fn s_y_s_roundtrip() {
    let mut rng = Rng64::new(0x2b02_0002);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        if let Ok(y) = s.to_y() {
            if let Ok(back) = y.to_s(50.0) {
                assert!(close(s.s12(), back.s12(), 1e-8));
                assert!(close(s.s22(), back.s22(), 1e-8));
            }
        }
    }
}

#[test]
fn s_abcd_s_roundtrip() {
    let mut rng = Rng64::new(0x2b02_0003);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        if let Ok(a) = s.to_abcd() {
            if let Ok(back) = a.to_s(50.0) {
                assert!(close(s.s11(), back.s11(), 1e-8));
                assert!(close(s.s21(), back.s21(), 1e-8));
                assert!(close(s.s12(), back.s12(), 1e-8));
                assert!(close(s.s22(), back.s22(), 1e-8));
            }
        }
    }
}

#[test]
fn cascade_with_through_is_identity() {
    let mut rng = Rng64::new(0x2b02_0004);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        if let Ok(a) = s.to_abcd() {
            let chained = Abcd::through().cascade(&a).cascade(&Abcd::through());
            assert!(close(chained.a(), a.a(), 1e-12));
            assert!(close(chained.b(), a.b(), 1e-12));
            assert!(close(chained.c(), a.c(), 1e-12));
            assert!(close(chained.d(), a.d(), 1e-12));
        }
    }
}

#[test]
fn cascade_is_associative() {
    let mut rng = Rng64::new(0x2b02_0005);
    for _ in 0..CASES {
        let (s1, s2, s3) = (device_s(&mut rng), device_s(&mut rng), device_s(&mut rng));
        if let (Ok(a1), Ok(a2), Ok(a3)) = (s1.to_abcd(), s2.to_abcd(), s3.to_abcd()) {
            let left = a1.cascade(&a2).cascade(&a3);
            let right = a1.cascade(&a2.cascade(&a3));
            assert!(close(left.a(), right.a(), 1e-9));
            assert!(close(left.d(), right.d(), 1e-9));
        }
    }
}

#[test]
fn transducer_gain_nonnegative() {
    let mut rng = Rng64::new(0x2b02_0006);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        let gs = cx(&mut rng, 0.9);
        let gl = cx(&mut rng, 0.9);
        let gt = transducer_gain(&s, gs, gl);
        assert!(gt >= 0.0);
        assert!(gt.is_finite());
    }
}

#[test]
fn gamma_in_matched_is_s11() {
    let mut rng = Rng64::new(0x2b02_0007);
    for _ in 0..CASES {
        let s = device_s(&mut rng);
        assert!(close(gamma_in(&s, Complex::ZERO), s.s11(), 1e-12));
    }
}

#[test]
fn passive_series_noise_factor_at_least_one() {
    let mut rng = Rng64::new(0x2b02_0008);
    for _ in 0..CASES {
        let r = rng.uniform(0.1, 500.0);
        let x = rng.uniform(-500.0, 500.0);
        let n = NoisyAbcd::passive_series(Complex::new(r, x), 290.0);
        let f = n.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        assert!(f >= 1.0 - 1e-12, "F = {f}");
    }
}

#[test]
fn noise_cascade_order_matters_but_both_valid() {
    let mut rng = Rng64::new(0x2b02_0009);
    for _ in 0..CASES {
        // loss + noiseless vs noiseless + loss: leading loss is never better.
        let r = rng.uniform(1.0, 100.0);
        let loss = NoisyAbcd::passive_series(Complex::real(r), 290.0);
        let thru = NoisyAbcd::through();
        let f_lead = loss
            .cascade(&thru)
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        let f_trail = thru
            .cascade(&loss)
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        assert!((f_lead - f_trail).abs() < 1e-9); // through is neutral both ways
        assert!(f_lead >= 1.0);
    }
}

#[test]
fn noise_params_roundtrip() {
    let mut rng = Rng64::new(0x2b02_000a);
    for _ in 0..CASES {
        let fmin = rng.uniform(1.0, 4.0);
        let rn = rng.uniform(0.5, 50.0);
        let gopt = cx(&mut rng, 0.7);
        // Skip pathological Γopt → Yopt singularities.
        if (Complex::ONE + gopt).abs() <= 0.05 {
            continue;
        }
        let np = rfkit_net::NoiseParams::new(fmin, rn, gopt, 50.0);
        let noisy = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let back = noisy.noise_params(50.0).unwrap();
        assert!(
            (back.fmin - np.fmin).abs() < 1e-6 * np.fmin,
            "{} vs {}",
            back.fmin,
            np.fmin
        );
        assert!((back.rn - np.rn).abs() < 1e-6 * np.rn);
        assert!((back.gamma_opt - np.gamma_opt).abs() < 1e-6);
    }
}
