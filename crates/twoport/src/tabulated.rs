//! Measurement-tabulated two-ports.
//!
//! Downstream users rarely have a parameter-extracted model — they have a
//! vendor `.s2p` file. A [`TabulatedTwoPort`] wraps such a table and
//! interpolates S-parameters (spline on real/imaginary parts) and noise
//! parameters (spline on NFmin, Rn and Γopt components) to any in-range
//! frequency, so the whole design flow can run straight off a datasheet.

use crate::m2::M2;
use crate::noise::NoiseParams;
use crate::params::SParams;
use crate::touchstone::{parse_s2p, TouchstoneError};
use rfkit_num::interp::{CubicSpline, InterpError};
use rfkit_num::Complex;

/// Error constructing a [`TabulatedTwoPort`].
#[derive(Debug)]
pub enum TabulatedError {
    /// The underlying Touchstone text failed to parse.
    Touchstone(TouchstoneError),
    /// The table is unusable (too few points, unsorted frequencies, …).
    Interp(InterpError),
    /// Reference impedances differ between rows.
    MixedReference,
}

impl std::fmt::Display for TabulatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TabulatedError::Touchstone(e) => write!(f, "touchstone: {e}"),
            TabulatedError::Interp(e) => write!(f, "interpolation table: {e}"),
            TabulatedError::MixedReference => write!(f, "rows use different reference impedances"),
        }
    }
}

impl std::error::Error for TabulatedError {}

impl From<TouchstoneError> for TabulatedError {
    fn from(e: TouchstoneError) -> Self {
        TabulatedError::Touchstone(e)
    }
}

impl From<InterpError> for TabulatedError {
    fn from(e: InterpError) -> Self {
        TabulatedError::Interp(e)
    }
}

/// Splines for one complex S entry.
struct ComplexSpline {
    re: CubicSpline,
    im: CubicSpline,
}

impl ComplexSpline {
    fn new(freqs: &[f64], values: &[Complex]) -> Result<Self, InterpError> {
        Ok(ComplexSpline {
            re: CubicSpline::new(freqs.to_vec(), values.iter().map(|v| v.re).collect())?,
            im: CubicSpline::new(freqs.to_vec(), values.iter().map(|v| v.im).collect())?,
        })
    }

    fn eval(&self, f: f64) -> Complex {
        Complex::new(self.re.eval(f), self.im.eval(f))
    }
}

/// A two-port defined by a table of measured S-parameters (and optionally
/// noise parameters), interpolated in frequency.
///
/// Out-of-range queries clamp to the table edges (datasheet behaviour);
/// check [`TabulatedTwoPort::freq_range`] when that matters.
pub struct TabulatedTwoPort {
    z0: f64,
    f_lo: f64,
    f_hi: f64,
    s: [ComplexSpline; 4],
    noise: Option<NoiseSplines>,
}

struct NoiseSplines {
    fmin: CubicSpline,
    rn: CubicSpline,
    gopt: ComplexSpline,
}

impl TabulatedTwoPort {
    /// Builds the interpolant from `(freq, SParams)` rows (ascending) plus
    /// optional noise rows.
    ///
    /// # Errors
    ///
    /// See [`TabulatedError`].
    pub fn new(
        s_rows: &[(f64, SParams)],
        noise_rows: &[(f64, NoiseParams)],
    ) -> Result<Self, TabulatedError> {
        let freqs: Vec<f64> = s_rows.iter().map(|(f, _)| *f).collect();
        let z0 = s_rows.first().map(|(_, s)| s.z0).unwrap_or(50.0);
        if s_rows.iter().any(|(_, s)| (s.z0 - z0).abs() > 1e-9) {
            return Err(TabulatedError::MixedReference);
        }
        let entry = |pick: fn(&SParams) -> Complex| -> Result<ComplexSpline, InterpError> {
            let vals: Vec<Complex> = s_rows.iter().map(|(_, s)| pick(s)).collect();
            ComplexSpline::new(&freqs, &vals)
        };
        let s = [
            entry(SParams::s11)?,
            entry(SParams::s12)?,
            entry(SParams::s21)?,
            entry(SParams::s22)?,
        ];
        let noise = if noise_rows.len() >= 2 {
            let nf: Vec<f64> = noise_rows.iter().map(|(f, _)| *f).collect();
            Some(NoiseSplines {
                fmin: CubicSpline::new(
                    nf.clone(),
                    noise_rows.iter().map(|(_, n)| n.fmin).collect(),
                )?,
                rn: CubicSpline::new(nf.clone(), noise_rows.iter().map(|(_, n)| n.rn).collect())?,
                gopt: ComplexSpline::new(
                    &nf,
                    &noise_rows
                        .iter()
                        .map(|(_, n)| n.gamma_opt)
                        .collect::<Vec<_>>(),
                )?,
            })
        } else {
            None
        };
        Ok(TabulatedTwoPort {
            z0,
            f_lo: *freqs.first().expect("validated non-empty"),
            f_hi: *freqs.last().expect("validated non-empty"),
            s,
            noise,
        })
    }

    /// Parses a Touchstone document and builds the interpolant.
    ///
    /// # Errors
    ///
    /// See [`TabulatedError`].
    pub fn from_touchstone(text: &str) -> Result<Self, TabulatedError> {
        let doc = parse_s2p(text)?;
        TabulatedTwoPort::new(&doc.s_rows, &doc.noise_rows)
    }

    /// The tabulated frequency range `(lo, hi)` in Hz.
    pub fn freq_range(&self) -> (f64, f64) {
        (self.f_lo, self.f_hi)
    }

    /// Reference impedance of the table.
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// `true` when the table carries noise parameters.
    pub fn has_noise(&self) -> bool {
        self.noise.is_some()
    }

    /// Interpolated S-parameters at `freq_hz` (clamped to the table range).
    pub fn s_params(&self, freq_hz: f64) -> SParams {
        SParams {
            m: M2::new(
                self.s[0].eval(freq_hz),
                self.s[1].eval(freq_hz),
                self.s[2].eval(freq_hz),
                self.s[3].eval(freq_hz),
            ),
            z0: self.z0,
        }
    }

    /// Interpolated noise parameters at `freq_hz`, when the table has them.
    pub fn noise_params(&self, freq_hz: f64) -> Option<NoiseParams> {
        let n = self.noise.as_ref()?;
        Some(NoiseParams::new(
            n.fmin.eval(freq_hz).max(1.0),
            n.rn.eval(freq_hz).max(0.0),
            n.gopt.eval(freq_hz),
            self.z0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::touchstone::{write_s2p, TouchstoneFormat};

    #[allow(clippy::type_complexity)]
    fn synthetic_rows() -> (Vec<(f64, SParams)>, Vec<(f64, NoiseParams)>) {
        // A smooth frequency-dependent response.
        let s_rows: Vec<(f64, SParams)> = (0..13)
            .map(|k| {
                let f = 0.5e9 + k as f64 * 0.5e9;
                let x = f / 1e9;
                (
                    f,
                    SParams::new(
                        Complex::from_polar(0.8 - 0.05 * x, -0.4 * x),
                        Complex::from_polar(0.02 + 0.005 * x, 0.8 - 0.1 * x),
                        Complex::from_polar(6.0 / x.max(0.5), 2.8 - 0.5 * x),
                        Complex::from_polar(0.5 - 0.02 * x, -0.3 * x),
                        50.0,
                    ),
                )
            })
            .collect();
        let noise_rows: Vec<(f64, NoiseParams)> = (0..7)
            .map(|k| {
                let f = 0.5e9 + k as f64 * 1.0e9;
                let x = f / 1e9;
                (
                    f,
                    NoiseParams::new(
                        1.0 + 0.03 * x,
                        9.0 - 0.5 * x,
                        Complex::from_polar(0.4 - 0.02 * x, 0.5 * x),
                        50.0,
                    ),
                )
            })
            .collect();
        (s_rows, noise_rows)
    }

    #[test]
    fn interpolant_hits_table_points_exactly() {
        let (s_rows, noise_rows) = synthetic_rows();
        let tab = TabulatedTwoPort::new(&s_rows, &noise_rows).unwrap();
        for (f, s) in &s_rows {
            let got = tab.s_params(*f);
            assert!((got.s21() - s.s21()).abs() < 1e-10);
            assert!((got.s11() - s.s11()).abs() < 1e-10);
        }
        for (f, n) in &noise_rows {
            let got = tab.noise_params(*f).unwrap();
            assert!((got.fmin - n.fmin).abs() < 1e-10);
        }
    }

    #[test]
    fn interpolation_is_smooth_between_points() {
        let (s_rows, _) = synthetic_rows();
        let tab = TabulatedTwoPort::new(&s_rows, &[]).unwrap();
        // Midpoints stay between neighbours' magnitudes (smooth data).
        for k in 0..s_rows.len() - 1 {
            let (f0, s0) = s_rows[k];
            let (f1, s1) = s_rows[k + 1];
            let mid = tab.s_params(0.5 * (f0 + f1));
            let lo = s0.s21().abs().min(s1.s21().abs());
            let hi = s0.s21().abs().max(s1.s21().abs());
            assert!(
                mid.s21().abs() > lo * 0.95 && mid.s21().abs() < hi * 1.05,
                "wild interpolation at {f0}"
            );
        }
    }

    #[test]
    fn touchstone_roundtrip_to_interpolant() {
        let (s_rows, noise_rows) = synthetic_rows();
        let text = write_s2p(&s_rows, &noise_rows, TouchstoneFormat::Ri);
        let tab = TabulatedTwoPort::from_touchstone(&text).unwrap();
        assert!(tab.has_noise());
        assert_eq!(tab.z0(), 50.0);
        let (lo, hi) = tab.freq_range();
        assert!((lo - 0.5e9).abs() < 1.0 && (hi - 6.5e9).abs() < 1.0);
        let s = tab.s_params(1.5e9);
        let reference = &s_rows[2].1; // exact table point at 1.5 GHz
        assert!((s.s21() - reference.s21()).abs() < 1e-6);
        let np = tab.noise_params(1.5e9).unwrap();
        assert!((np.fmin - (1.0 + 0.03 * 1.5)).abs() < 1e-3);
    }

    #[test]
    fn out_of_range_clamps() {
        let (s_rows, _) = synthetic_rows();
        let tab = TabulatedTwoPort::new(&s_rows, &[]).unwrap();
        let below = tab.s_params(0.1e9);
        let at_edge = tab.s_params(0.5e9);
        assert!((below.s21() - at_edge.s21()).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_rejected() {
        let (s_rows, _) = synthetic_rows();
        assert!(matches!(
            TabulatedTwoPort::new(&s_rows[..1], &[]),
            Err(TabulatedError::Interp(_))
        ));
    }

    #[test]
    fn single_noise_row_is_dropped() {
        let (s_rows, noise_rows) = synthetic_rows();
        let tab = TabulatedTwoPort::new(&s_rows, &noise_rows[..1]).unwrap();
        assert!(!tab.has_noise());
        assert!(tab.noise_params(1e9).is_none());
    }

    #[test]
    fn mixed_reference_rejected() {
        let (mut s_rows, _) = synthetic_rows();
        let (f, s) = s_rows[3];
        s_rows[3] = (f, SParams::new(s.s11(), s.s12(), s.s21(), s.s22(), 75.0));
        assert!(matches!(
            TabulatedTwoPort::new(&s_rows, &[]),
            Err(TabulatedError::MixedReference)
        ));
    }
}
