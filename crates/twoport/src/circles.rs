//! Constant-noise-figure and constant-available-gain circles on the
//! source (Γs) plane — the classic chart construction behind every LNA
//! design trade-off: where the two families of circles kiss is exactly
//! the NF/gain compromise the paper optimizes numerically.

use crate::noise::NoiseParams;
use crate::params::SParams;
use rfkit_num::Complex;

/// A circle on the reflection-coefficient plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneCircle {
    /// Circle center.
    pub center: Complex,
    /// Circle radius (≥ 0).
    pub radius: f64,
}

impl PlaneCircle {
    /// A point on the circle at parameter angle `theta`.
    pub fn point(&self, theta: f64) -> Complex {
        self.center + Complex::from_polar(self.radius, theta)
    }

    /// `true` when `gamma` lies inside (or on) the circle.
    pub fn contains(&self, gamma: Complex) -> bool {
        (gamma - self.center).abs() <= self.radius + 1e-12
    }
}

/// The locus of source reflection coefficients giving noise factor
/// `f_target` (linear): returns `None` when `f_target < Fmin` (no source
/// can achieve it).
///
/// Derivation: with `N = (F − Fmin)·|1 + Γopt|² / (4·Rn/z0)`, the circle is
/// `center = Γopt/(1 + N)`, `radius = sqrt(N² + N(1 − |Γopt|²))/(1 + N)`.
pub fn noise_circle(np: &NoiseParams, f_target: f64) -> Option<PlaneCircle> {
    if f_target < np.fmin {
        return None;
    }
    let rn_norm = np.rn / np.z0;
    let n = (f_target - np.fmin) * (Complex::ONE + np.gamma_opt).norm_sqr() / (4.0 * rn_norm);
    let center = np.gamma_opt / Complex::real(1.0 + n);
    let radius = (n * n + n * (1.0 - np.gamma_opt.norm_sqr())).sqrt() / (1.0 + n);
    Some(PlaneCircle { center, radius })
}

/// The locus of source reflection coefficients giving available gain
/// `ga_target` (linear) for the two-port `s`. Returns `None` when the
/// requested gain is not realizable (the circle equation has no real
/// radius).
///
/// Uses the standard construction with
/// `ga = ga_target / |S21|²`,
/// `C1 = S11 − Δ·S22*`,
/// `center = ga·C1* / (1 + ga(|S11|² − |Δ|²))`,
/// `radius = sqrt(1 − 2K·ga·|S12S21| + ga²|S12S21|²) / |1 + ga(|S11|² − |Δ|²)|`.
pub fn available_gain_circle(s: &SParams, ga_target: f64) -> Option<PlaneCircle> {
    let s21_sq = s.s21().norm_sqr();
    if rfkit_num::is_exact_zero(s21_sq) || ga_target <= 0.0 {
        return None;
    }
    let ga = ga_target / s21_sq;
    let delta = s.delta();
    let c1 = s.s11() - delta * s.s22().conj();
    let s12s21 = (s.s12() * s.s21()).abs();
    let k = crate::stability::rollett_k(s);
    let denom = 1.0 + ga * (s.s11().norm_sqr() - delta.norm_sqr());
    if denom.abs() < 1e-12 {
        return None;
    }
    let disc = 1.0 - 2.0 * k * ga * s12s21 + ga * ga * s12s21 * s12s21;
    if disc < 0.0 {
        return None;
    }
    Some(PlaneCircle {
        center: c1.conj() * Complex::real(ga / denom),
        radius: (disc.sqrt() / denom).abs(),
    })
}

/// The best achievable noise factor subject to an available-gain floor:
/// scans the `ga_floor` gain circle for its minimum-noise point. Returns
/// `(gamma_s, noise_factor)`, or `None` when the gain is unrealizable.
///
/// This is the graphical construction the goal-attainment method replaces
/// with optimization — exposed here for cross-checks and teaching.
pub fn best_nf_on_gain_circle(
    s: &SParams,
    np: &NoiseParams,
    ga_floor: f64,
    samples: usize,
) -> Option<(Complex, f64)> {
    let circle = available_gain_circle(s, ga_floor)?;
    // For a stable device the GA ≥ floor region is the circle's interior:
    // when Γopt lies inside, the unconstrained noise optimum is feasible.
    if circle.contains(np.gamma_opt) {
        return Some((np.gamma_opt, np.fmin));
    }
    let mut best: Option<(Complex, f64)> = None;
    for k in 0..samples.max(8) {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / samples.max(8) as f64;
        let gs = circle.point(theta);
        if gs.abs() >= 1.0 {
            continue;
        }
        let f = np.noise_factor(gs);
        if best.is_none_or(|(_, fb)| f < fb) {
            best = Some((gs, f));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::available_gain;

    fn amp() -> SParams {
        SParams::new(
            Complex::from_polar(0.3, 2.0),
            Complex::from_polar(0.03, 0.5),
            Complex::from_polar(3.0, -1.0),
            Complex::from_polar(0.4, -2.5),
            50.0,
        )
    }

    fn noise() -> NoiseParams {
        NoiseParams::new(1.12, 7.0, Complex::from_polar(0.35, 0.7), 50.0)
    }

    #[test]
    fn noise_circle_points_hit_target() {
        let np = noise();
        for target_excess in [0.05, 0.2, 0.5] {
            let f_target = np.fmin + target_excess;
            let circle = noise_circle(&np, f_target).expect("above Fmin");
            for k in 0..12 {
                let gs = circle.point(k as f64 * std::f64::consts::FRAC_PI_6);
                let f = np.noise_factor(gs);
                assert!((f - f_target).abs() < 1e-9, "F = {f} vs target {f_target}");
            }
        }
    }

    #[test]
    fn fmin_circle_degenerates_to_gamma_opt() {
        let np = noise();
        let c = noise_circle(&np, np.fmin).unwrap();
        assert!(c.radius < 1e-9);
        assert!((c.center - np.gamma_opt).abs() < 1e-12);
    }

    #[test]
    fn below_fmin_unreachable() {
        let np = noise();
        assert!(noise_circle(&np, np.fmin - 0.01).is_none());
    }

    #[test]
    fn noise_circles_nest_with_target() {
        let np = noise();
        let inner = noise_circle(&np, np.fmin + 0.1).unwrap();
        let outer = noise_circle(&np, np.fmin + 0.5).unwrap();
        assert!(outer.radius > inner.radius);
        // The tighter circle lies inside the looser one.
        assert!(outer.contains(inner.center));
    }

    #[test]
    fn gain_circle_points_hit_target() {
        let s = amp();
        let mag = crate::gains::maximum_available_gain(&s).expect("stable");
        for frac in [0.5, 0.7, 0.9] {
            let target = mag * frac;
            let circle = available_gain_circle(&s, target).expect("realizable");
            for k in 0..12 {
                let gs = circle.point(k as f64 * std::f64::consts::FRAC_PI_6);
                if gs.abs() >= 1.0 {
                    continue;
                }
                let ga = available_gain(&s, gs);
                assert!(
                    (ga - target).abs() / target < 1e-9,
                    "GA = {ga} vs target {target}"
                );
            }
        }
    }

    #[test]
    fn mag_circle_degenerates_to_match_point() {
        let s = amp();
        let mag = crate::gains::maximum_available_gain(&s).unwrap();
        let circle = available_gain_circle(&s, mag).expect("at MAG");
        let (gms, _) = crate::gains::simultaneous_conjugate_match(&s).unwrap();
        assert!(circle.radius < 1e-6, "radius {}", circle.radius);
        assert!((circle.center - gms).abs() < 1e-6);
    }

    #[test]
    fn beyond_mag_unrealizable() {
        let s = amp();
        let mag = crate::gains::maximum_available_gain(&s).unwrap();
        assert!(available_gain_circle(&s, mag * 1.05).is_none());
    }

    #[test]
    fn chart_tradeoff_matches_direct_evaluation() {
        // The graphical best-NF-at-gain construction must agree with a
        // dense direct scan of the Γs plane.
        let s = amp();
        let np = noise();
        let mag = crate::gains::maximum_available_gain(&s).unwrap();
        let floor = 0.8 * mag;
        let (gs_chart, f_chart) = best_nf_on_gain_circle(&s, &np, floor, 720).expect("realizable");
        // Direct scan: any Γs achieving >= floor gain should not beat the
        // chart point by more than grid error.
        let mut best_direct = f64::INFINITY;
        for r in 0..30 {
            for a in 0..60 {
                let gs = Complex::from_polar(r as f64 / 30.0, a as f64 * 0.1047);
                if available_gain(&s, gs) >= floor {
                    best_direct = best_direct.min(np.noise_factor(gs));
                }
            }
        }
        // The NF optimum subject to GA >= floor lies ON the circle when the
        // unconstrained optimum is outside the gain disk.
        assert!(
            f_chart <= best_direct + 5e-3,
            "chart {f_chart} vs direct {best_direct}"
        );
        assert!(gs_chart.abs() < 1.0);
    }
}
