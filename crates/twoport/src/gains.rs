//! Power-gain definitions for two-ports embedded between arbitrary
//! source/load reflection coefficients.
//!
//! The design flow optimizes **transducer power gain** `G_T` (delivered to
//! the load over available from the source), which is the quantity the
//! paper trades off against noise figure. Available gain `G_A` feeds the
//! Friis cascade formula; operating gain `G_P` and the maximum
//! available/stable gains complete the usual set.

use crate::params::SParams;
use rfkit_num::Complex;

/// Reflection coefficient of an impedance `z` against reference `z0`.
///
/// # Examples
///
/// ```
/// use rfkit_net::gains::reflection_coefficient;
/// use rfkit_num::Complex;
/// let g = reflection_coefficient(Complex::real(50.0), 50.0);
/// assert!(g.abs() < 1e-15);
/// ```
pub fn reflection_coefficient(z: Complex, z0: f64) -> Complex {
    let z0 = Complex::real(z0);
    (z - z0) / (z + z0)
}

/// Impedance corresponding to a reflection coefficient against `z0`.
pub fn impedance_from_reflection(gamma: Complex, z0: f64) -> Complex {
    Complex::real(z0) * (Complex::ONE + gamma) / (Complex::ONE - gamma)
}

/// Input reflection coefficient of a two-port with load `gamma_l` at port 2:
/// `Γin = S11 + S12·S21·ΓL / (1 − S22·ΓL)`.
pub fn gamma_in(s: &SParams, gamma_l: Complex) -> Complex {
    s.s11() + s.s12() * s.s21() * gamma_l / (Complex::ONE - s.s22() * gamma_l)
}

/// Output reflection coefficient with source `gamma_s` at port 1:
/// `Γout = S22 + S12·S21·Γs / (1 − S11·Γs)`.
pub fn gamma_out(s: &SParams, gamma_s: Complex) -> Complex {
    s.s22() + s.s12() * s.s21() * gamma_s / (Complex::ONE - s.s11() * gamma_s)
}

/// Transducer power gain `G_T` for the given source and load reflection
/// coefficients (linear, not dB).
pub fn transducer_gain(s: &SParams, gamma_s: Complex, gamma_l: Complex) -> f64 {
    let num = s.s21().norm_sqr() * (1.0 - gamma_s.norm_sqr()) * (1.0 - gamma_l.norm_sqr());
    let den = ((Complex::ONE - s.s11() * gamma_s) * (Complex::ONE - s.s22() * gamma_l)
        - s.s12() * s.s21() * gamma_s * gamma_l)
        .norm_sqr();
    num / den
}

/// Available power gain `G_A` (load conjugately matched to the output) for
/// the given source reflection coefficient (linear).
pub fn available_gain(s: &SParams, gamma_s: Complex) -> f64 {
    let g_out = gamma_out(s, gamma_s);
    let num = s.s21().norm_sqr() * (1.0 - gamma_s.norm_sqr());
    let den = (Complex::ONE - s.s11() * gamma_s).norm_sqr() * (1.0 - g_out.norm_sqr());
    num / den
}

/// Operating (power) gain `G_P` (power to load over power into the network)
/// for the given load reflection coefficient (linear).
pub fn operating_gain(s: &SParams, gamma_l: Complex) -> f64 {
    let g_in = gamma_in(s, gamma_l);
    let num = s.s21().norm_sqr() * (1.0 - gamma_l.norm_sqr());
    let den = (1.0 - g_in.norm_sqr()) * (Complex::ONE - s.s22() * gamma_l).norm_sqr();
    num / den
}

/// Maximum stable gain `MSG = |S21| / |S12|` (linear); the gain bound when
/// the device is only conditionally stable. Returns infinity for a
/// unilateral device.
pub fn maximum_stable_gain(s: &SParams) -> f64 {
    let s12 = s.s12().abs();
    if rfkit_num::is_exact_zero(s12) {
        f64::INFINITY
    } else {
        s.s21().abs() / s12
    }
}

/// Maximum available gain
/// `MAG = MSG · (K − sqrt(K² − 1))` (linear), defined only for `K ≥ 1`;
/// returns `None` when the device is not unconditionally stable.
pub fn maximum_available_gain(s: &SParams) -> Option<f64> {
    let k = crate::stability::rollett_k(s);
    if k < 1.0 {
        return None;
    }
    Some(maximum_stable_gain(s) * (k - (k * k - 1.0).sqrt()))
}

/// Simultaneous conjugate match source/load reflection coefficients
/// `(ΓMS, ΓML)` for an unconditionally stable two-port.
///
/// Returns `None` when `K < 1` (no simultaneous match exists).
pub fn simultaneous_conjugate_match(s: &SParams) -> Option<(Complex, Complex)> {
    let k = crate::stability::rollett_k(s);
    if k < 1.0 {
        return None;
    }
    let delta = s.delta();
    let b1 = 1.0 + s.s11().norm_sqr() - s.s22().norm_sqr() - delta.norm_sqr();
    let b2 = 1.0 + s.s22().norm_sqr() - s.s11().norm_sqr() - delta.norm_sqr();
    let c1 = s.s11() - delta * s.s22().conj();
    let c2 = s.s22() - delta * s.s11().conj();
    let gs = solve_match(b1, c1)?;
    let gl = solve_match(b2, c2)?;
    Some((gs, gl))
}

/// Solves `Γ = (B ± sqrt(B² − 4|C|²)) / 2C`, picking the root with `|Γ| < 1`.
fn solve_match(b: f64, c: Complex) -> Option<Complex> {
    let c_mag = c.abs();
    if rfkit_num::is_exact_zero(c_mag) {
        return Some(Complex::ZERO);
    }
    let disc = b * b - 4.0 * c_mag * c_mag;
    if disc < 0.0 {
        return None;
    }
    let root = disc.sqrt();
    let g1 = (Complex::real(b) - Complex::real(root)) / (Complex::real(2.0) * c);
    let g2 = (Complex::real(b) + Complex::real(root)) / (Complex::real(2.0) * c);
    if g1.abs() < 1.0 {
        Some(g1)
    } else if g2.abs() < 1.0 {
        Some(g2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Abcd;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// A stable amplifier-like S matrix (K > 1).
    fn stable_amp() -> SParams {
        SParams::new(
            Complex::from_polar(0.3, 2.0),
            Complex::from_polar(0.03, 0.5),
            Complex::from_polar(3.0, -1.0),
            Complex::from_polar(0.4, -2.5),
            50.0,
        )
    }

    #[test]
    fn reflection_coefficient_basics() {
        assert!(reflection_coefficient(cx(50.0, 0.0), 50.0).abs() < 1e-15);
        let open = reflection_coefficient(cx(1e12, 0.0), 50.0);
        assert!((open - Complex::ONE).abs() < 1e-9);
        let short = reflection_coefficient(Complex::ZERO, 50.0);
        assert!((short + Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn reflection_impedance_roundtrip() {
        let z = cx(30.0, 40.0);
        let g = reflection_coefficient(z, 50.0);
        let z2 = impedance_from_reflection(g, 50.0);
        assert!((z - z2).abs() < 1e-10);
    }

    #[test]
    fn gamma_in_reduces_to_s11_when_matched() {
        let s = stable_amp();
        assert!((gamma_in(&s, Complex::ZERO) - s.s11()).abs() < 1e-15);
        assert!((gamma_out(&s, Complex::ZERO) - s.s22()).abs() < 1e-15);
    }

    #[test]
    fn matched_transducer_gain_is_s21_squared() {
        let s = stable_amp();
        let gt = transducer_gain(&s, Complex::ZERO, Complex::ZERO);
        assert!((gt - s.s21().norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn gains_ordering_holds() {
        // GT ≤ GA and GT ≤ GP for any terminations.
        let s = stable_amp();
        let gs = Complex::from_polar(0.4, 1.0);
        let gl = Complex::from_polar(0.3, -0.3);
        let gt = transducer_gain(&s, gs, gl);
        let ga = available_gain(&s, gs);
        let gp = operating_gain(&s, gl);
        assert!(gt <= ga + 1e-12, "GT={gt} GA={ga}");
        assert!(gt <= gp + 1e-12, "GT={gt} GP={gp}");
    }

    #[test]
    fn simultaneous_match_maximizes_transducer_gain() {
        let s = stable_amp();
        let (gms, gml) = simultaneous_conjugate_match(&s).expect("stable");
        let g_matched = transducer_gain(&s, gms, gml);
        let mag = maximum_available_gain(&s).unwrap();
        assert!(
            (g_matched - mag).abs() / mag < 1e-9,
            "match gain {g_matched} vs MAG {mag}"
        );
        // Any perturbation must not do better.
        for d in [0.05, -0.05] {
            let g2 = transducer_gain(&s, gms + Complex::real(d), gml);
            assert!(g2 <= g_matched + 1e-9);
        }
    }

    #[test]
    fn msg_of_unilateral_device_is_infinite() {
        let s = SParams::new(
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(3.0),
            Complex::ZERO,
            50.0,
        );
        assert!(maximum_stable_gain(&s).is_infinite());
    }

    #[test]
    fn passive_attenuator_gain_is_its_loss() {
        // 6 dB matched pad: GT at matched ports = |S21|² = 1/4.
        let pad = Abcd::shunt_admittance(cx(1.0 / 150.0, 0.0))
            .cascade(&Abcd::series_impedance(cx(37.5, 0.0)))
            .cascade(&Abcd::shunt_admittance(cx(1.0 / 150.0, 0.0)));
        let s = pad.to_s(50.0).unwrap();
        let gt = transducer_gain(&s, Complex::ZERO, Complex::ZERO);
        assert!((gt - 0.25).abs() < 1e-9);
        // Available gain of a matched passive pad equals GT.
        let ga = available_gain(&s, Complex::ZERO);
        assert!((ga - 0.25).abs() < 1e-9);
    }

    #[test]
    fn unstable_device_has_no_mag() {
        // Pozar's conditionally stable FET example: K ≈ 0.607.
        let s = SParams::new(
            Complex::from_polar(0.894, (-60.6f64).to_radians()),
            Complex::from_polar(0.020, 62.4f64.to_radians()),
            Complex::from_polar(3.122, 123.6f64.to_radians()),
            Complex::from_polar(0.781, (-27.6f64).to_radians()),
            50.0,
        );
        assert!(crate::stability::rollett_k(&s) < 1.0);
        assert!(maximum_available_gain(&s).is_none());
        assert!(simultaneous_conjugate_match(&s).is_none());
    }
}
