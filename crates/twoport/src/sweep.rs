//! Frequency-swept network responses.
//!
//! A [`FrequencyResponse`] is the thing a vector network analyzer produces
//! and the thing every experiment in the paper plots: S-parameters (and
//! optionally noise parameters) on a frequency grid, with helpers for the
//! dB series and worst-case extraction the band-design objectives need.

use crate::noise::NoiseParams;
use crate::params::SParams;
use rfkit_num::units::db_from_amplitude_ratio;
use rfkit_num::Complex;

/// S-parameters (and optional noise parameters) on a frequency grid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrequencyResponse {
    points: Vec<ResponsePoint>,
}

/// One frequency point of a [`FrequencyResponse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Scattering parameters at this frequency.
    pub s: SParams,
    /// Noise parameters, when the analysis produced them.
    pub noise: Option<NoiseParams>,
}

impl FrequencyResponse {
    /// Creates an empty response.
    pub fn new() -> Self {
        FrequencyResponse { points: Vec::new() }
    }

    /// Builds a response by evaluating `eval` at every frequency of an
    /// increasing grid — in parallel through `rfkit-par`, with the points
    /// assembled in grid order. Returns `None` if `eval` fails at any
    /// frequency.
    ///
    /// This is the swept-analysis workhorse: each frequency point of a
    /// network solve is independent, so dense sweeps scale with cores
    /// while the assembled response is identical to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is not strictly increasing.
    pub fn from_fn_par<F>(freqs: &[f64], eval: F) -> Option<FrequencyResponse>
    where
        F: Fn(f64) -> Option<(SParams, Option<NoiseParams>)> + Sync,
    {
        let evaluated = rfkit_par::par_map(freqs, |&f| eval(f));
        let mut resp = FrequencyResponse::new();
        for (&f, point) in freqs.iter().zip(evaluated) {
            let (s, noise) = point?;
            resp.push(f, s, noise);
        }
        Some(resp)
    }

    /// Appends a point; frequencies must be pushed in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` does not exceed the last stored frequency.
    pub fn push(&mut self, freq_hz: f64, s: SParams, noise: Option<NoiseParams>) {
        if let Some(last) = self.points.last() {
            assert!(
                freq_hz > last.freq_hz,
                "frequencies must be strictly increasing"
            );
        }
        self.points.push(ResponsePoint { freq_hz, s, noise });
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the stored points.
    pub fn iter(&self) -> std::slice::Iter<'_, ResponsePoint> {
        self.points.iter()
    }

    /// The frequency grid in Hz.
    pub fn freqs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.freq_hz).collect()
    }

    /// Magnitude of the selected S-parameter in dB at each point;
    /// `which` is `(row, col)` with 1-based RF convention, e.g. `(2, 1)`
    /// for S21.
    ///
    /// # Panics
    ///
    /// Panics for indices outside `1..=2`.
    pub fn s_db(&self, which: (usize, usize)) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| db_from_amplitude_ratio(select(p.s, which).abs()))
            .collect()
    }

    /// Noise figure in dB for a matched (Γs = 0) source at each point;
    /// `None` entries where noise data is missing.
    pub fn nf_db(&self) -> Vec<Option<f64>> {
        self.points
            .iter()
            .map(|p| p.noise.map(|n| n.nf_db(Complex::ZERO)))
            .collect()
    }

    /// Restricts to points within `[f_lo, f_hi]` (inclusive).
    pub fn band(&self, f_lo: f64, f_hi: f64) -> FrequencyResponse {
        FrequencyResponse {
            points: self
                .points
                .iter()
                .filter(|p| p.freq_hz >= f_lo && p.freq_hz <= f_hi)
                .copied()
                .collect(),
        }
    }

    /// Worst (largest) |S11| in dB over the stored points — the input
    /// return-loss figure of merit. Returns `None` when empty.
    pub fn worst_input_match_db(&self) -> Option<f64> {
        self.s_db((1, 1))
            .into_iter()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest |S21| in dB over the stored points — the worst-case gain.
    /// Returns `None` when empty.
    pub fn min_gain_db(&self) -> Option<f64> {
        self.s_db((2, 1))
            .into_iter()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Largest matched-source noise figure in dB over the stored points.
    /// Returns `None` when no point carries noise data.
    pub fn max_nf_db(&self) -> Option<f64> {
        self.nf_db()
            .into_iter()
            .flatten()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The stored S rows as `(freq, SParams)` pairs, e.g. for
    /// [`crate::touchstone::write_s2p`].
    pub fn s_rows(&self) -> Vec<(f64, SParams)> {
        self.points.iter().map(|p| (p.freq_hz, p.s)).collect()
    }

    /// Group delay `τg = −dφ/dω` of the selected S-parameter in seconds at
    /// each point, from the unwrapped phase (central differences, one-sided
    /// at the grid ends). GNSS receivers care about this: differential
    /// group delay across the band corrupts the code/carrier alignment.
    ///
    /// Returns an empty vector for fewer than 2 points.
    ///
    /// # Panics
    ///
    /// Panics for S-parameter indices outside `1..=2`.
    pub fn group_delay_s(&self, which: (usize, usize)) -> Vec<f64> {
        let n = self.points.len();
        if n < 2 {
            return Vec::new();
        }
        // Unwrap the phase.
        let mut phase: Vec<f64> = self
            .points
            .iter()
            .map(|p| select(p.s, which).arg())
            .collect();
        for i in 1..n {
            let mut d = phase[i] - phase[i - 1];
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            phase[i] = phase[i - 1] + d;
        }
        let w: Vec<f64> = self
            .points
            .iter()
            .map(|p| 2.0 * std::f64::consts::PI * p.freq_hz)
            .collect();
        (0..n)
            .map(|i| {
                let (a, b) = if i == 0 {
                    (0, 1)
                } else if i == n - 1 {
                    (n - 2, n - 1)
                } else {
                    (i - 1, i + 1)
                };
                -(phase[b] - phase[a]) / (w[b] - w[a])
            })
            .collect()
    }

    /// Differential group delay of S21 over the stored points:
    /// `max(τg) − min(τg)` in seconds. Returns `None` with fewer than 2
    /// points.
    pub fn differential_group_delay_s(&self) -> Option<f64> {
        let tg = self.group_delay_s((2, 1));
        if tg.is_empty() {
            return None;
        }
        let max = tg.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = tg.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(max - min)
    }
}

impl FromIterator<ResponsePoint> for FrequencyResponse {
    fn from_iter<I: IntoIterator<Item = ResponsePoint>>(iter: I) -> Self {
        let mut resp = FrequencyResponse::new();
        for p in iter {
            resp.push(p.freq_hz, p.s, p.noise);
        }
        resp
    }
}

impl<'a> IntoIterator for &'a FrequencyResponse {
    type Item = &'a ResponsePoint;
    type IntoIter = std::slice::Iter<'a, ResponsePoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

fn select(s: SParams, which: (usize, usize)) -> Complex {
    match which {
        (1, 1) => s.s11(),
        (1, 2) => s.s12(),
        (2, 1) => s.s21(),
        (2, 2) => s.s22(),
        _ => panic!("S-parameter index must be in 1..=2, got {which:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(f: f64, s21_mag: f64, s11_mag: f64, nf_factor: Option<f64>) -> ResponsePoint {
        ResponsePoint {
            freq_hz: f,
            s: SParams::new(
                Complex::real(s11_mag),
                Complex::ZERO,
                Complex::real(s21_mag),
                Complex::ZERO,
                50.0,
            ),
            noise: nf_factor.map(|fm| NoiseParams::new(fm, 5.0, Complex::ZERO, 50.0)),
        }
    }

    fn sample() -> FrequencyResponse {
        [
            point(1.0e9, 10.0, 0.30, Some(1.10)),
            point(1.4e9, 8.0, 0.20, Some(1.15)),
            point(1.8e9, 6.0, 0.40, Some(1.25)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_enforces_increasing_frequency() {
        let mut r = FrequencyResponse::new();
        r.push(1e9, point(1e9, 1.0, 0.1, None).s, None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.push(0.5e9, point(0.5e9, 1.0, 0.1, None).s, None);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn db_series() {
        let r = sample();
        let s21 = r.s_db((2, 1));
        assert!((s21[0] - 20.0).abs() < 1e-9);
        let s11 = r.s_db((1, 1));
        assert!((s11[1] - (-13.979)).abs() < 1e-3);
    }

    #[test]
    fn band_filtering() {
        let r = sample();
        let b = r.band(1.1e9, 1.7e9);
        assert_eq!(b.len(), 1);
        assert_eq!(b.freqs(), vec![1.4e9]);
    }

    #[test]
    fn worst_case_extraction() {
        let r = sample();
        // Worst S11 is the 0.40 point → about −7.96 dB.
        assert!((r.worst_input_match_db().unwrap() + 7.9588).abs() < 1e-3);
        // Min gain is 6× → 15.56 dB.
        assert!((r.min_gain_db().unwrap() - 15.563).abs() < 1e-3);
        // Max NF from factor 1.25 → 0.969 dB.
        assert!((r.max_nf_db().unwrap() - 0.9691).abs() < 1e-3);
    }

    #[test]
    fn empty_response_yields_none() {
        let r = FrequencyResponse::new();
        assert!(r.is_empty());
        assert!(r.worst_input_match_db().is_none());
        assert!(r.min_gain_db().is_none());
        assert!(r.max_nf_db().is_none());
    }

    #[test]
    fn missing_noise_points_are_skipped() {
        let r: FrequencyResponse = [
            point(1.0e9, 10.0, 0.3, None),
            point(1.4e9, 8.0, 0.2, Some(1.5)),
        ]
        .into_iter()
        .collect();
        let nf = r.nf_db();
        assert!(nf[0].is_none());
        assert!(nf[1].is_some());
        assert!((r.max_nf_db().unwrap() - 1.7609).abs() < 1e-3);
    }

    #[test]
    fn iteration_and_rows() {
        let r = sample();
        assert_eq!(r.iter().count(), 3);
        assert_eq!((&r).into_iter().count(), 3);
        assert_eq!(r.s_rows().len(), 3);
    }

    #[test]
    #[should_panic(expected = "index")]
    fn bad_sparam_index_panics() {
        sample().s_db((3, 1));
    }

    #[test]
    fn group_delay_of_ideal_delay_line() {
        // S21 = exp(-jωτ) with τ = 1 ns: the group delay must be 1 ns at
        // every point, including across phase wraps.
        let tau = 1e-9;
        let mut r = FrequencyResponse::new();
        for k in 0..21 {
            let f = 0.5e9 + k as f64 * 0.1e9;
            let w = 2.0 * std::f64::consts::PI * f;
            let s21 = Complex::from_polar(1.0, -w * tau);
            r.push(
                f,
                SParams::new(Complex::ZERO, s21, s21, Complex::ZERO, 50.0),
                None,
            );
        }
        let tg = r.group_delay_s((2, 1));
        assert_eq!(tg.len(), 21);
        for v in &tg {
            assert!((v - tau).abs() < 1e-12, "τg = {v}");
        }
        assert!(r.differential_group_delay_s().unwrap() < 1e-12);
    }

    #[test]
    fn group_delay_detects_dispersion() {
        // A quadratic phase gives linearly varying group delay.
        let mut r = FrequencyResponse::new();
        for k in 0..11 {
            let f = 1.0e9 + k as f64 * 0.1e9;
            let phi = -1e-19 * (f - 1.0e9).powi(2); // curvature
            let s21 = Complex::from_polar(1.0, phi);
            r.push(
                f,
                SParams::new(Complex::ZERO, s21, s21, Complex::ZERO, 50.0),
                None,
            );
        }
        let dgd = r.differential_group_delay_s().unwrap();
        assert!(dgd > 0.0, "dispersion must show: {dgd}");
    }

    #[test]
    fn group_delay_trivial_cases() {
        let r = FrequencyResponse::new();
        assert!(r.differential_group_delay_s().is_none());
        assert!(r.group_delay_s((2, 1)).is_empty());
    }
}
