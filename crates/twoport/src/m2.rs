//! A tiny 2×2 complex matrix used by every two-port representation.
//!
//! Kept separate from `rfkit_num::CMatrix` because two-port algebra is hot
//! (every frequency point of every optimizer evaluation) and fixed-size
//! closed-form inverses avoid allocation entirely.

use rfkit_num::Complex;

/// A 2×2 complex matrix with closed-form determinant and inverse.
///
/// # Examples
///
/// ```
/// use rfkit_net::M2;
/// use rfkit_num::Complex;
///
/// let i = M2::identity();
/// let a = M2::new(
///     Complex::real(2.0), Complex::ZERO,
///     Complex::ZERO, Complex::real(4.0),
/// );
/// assert_eq!(a.mul(&i), a);
/// assert_eq!(a.det(), Complex::real(8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct M2 {
    /// Element (1,1).
    pub m11: Complex,
    /// Element (1,2).
    pub m12: Complex,
    /// Element (2,1).
    pub m21: Complex,
    /// Element (2,2).
    pub m22: Complex,
}

impl M2 {
    /// Creates a matrix from its four entries in row-major order.
    pub const fn new(m11: Complex, m12: Complex, m21: Complex, m22: Complex) -> Self {
        M2 { m11, m12, m21, m22 }
    }

    /// The 2×2 identity.
    pub const fn identity() -> Self {
        M2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ONE)
    }

    /// The 2×2 zero matrix.
    pub const fn zero() -> Self {
        M2::new(Complex::ZERO, Complex::ZERO, Complex::ZERO, Complex::ZERO)
    }

    /// Determinant `m11·m22 − m12·m21`.
    pub fn det(&self) -> Complex {
        self.m11 * self.m22 - self.m12 * self.m21
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &M2) -> M2 {
        M2::new(
            self.m11 * rhs.m11 + self.m12 * rhs.m21,
            self.m11 * rhs.m12 + self.m12 * rhs.m22,
            self.m21 * rhs.m11 + self.m22 * rhs.m21,
            self.m21 * rhs.m12 + self.m22 * rhs.m22,
        )
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &M2) -> M2 {
        M2::new(
            self.m11 + rhs.m11,
            self.m12 + rhs.m12,
            self.m21 + rhs.m21,
            self.m22 + rhs.m22,
        )
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &M2) -> M2 {
        M2::new(
            self.m11 - rhs.m11,
            self.m12 - rhs.m12,
            self.m21 - rhs.m21,
            self.m22 - rhs.m22,
        )
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex) -> M2 {
        M2::new(self.m11 * k, self.m12 * k, self.m21 * k, self.m22 * k)
    }

    /// Closed-form inverse.
    ///
    /// Returns `None` when the determinant magnitude underflows to zero.
    pub fn inverse(&self) -> Option<M2> {
        let d = self.det();
        if rfkit_num::is_exact_zero(d.abs()) {
            return None;
        }
        Some(M2::new(
            self.m22 / d,
            -self.m12 / d,
            -self.m21 / d,
            self.m11 / d,
        ))
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> M2 {
        M2::new(
            self.m11.conj(),
            self.m21.conj(),
            self.m12.conj(),
            self.m22.conj(),
        )
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> M2 {
        M2::new(self.m11, self.m21, self.m12, self.m22)
    }

    /// Congruence transform `T · self · T†` (noise-correlation transform).
    pub fn congruence(&self, t: &M2) -> M2 {
        t.mul(self).mul(&t.adjoint())
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: [Complex; 2]) -> [Complex; 2] {
        [
            self.m11 * v[0] + self.m12 * v[1],
            self.m21 * v[0] + self.m22 * v[1],
        ]
    }

    /// `true` when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.m11.is_finite() && self.m12.is_finite() && self.m21.is_finite() && self.m22.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn sample() -> M2 {
        M2::new(cx(1.0, 0.5), cx(-2.0, 1.0), cx(0.0, 3.0), cx(4.0, -1.0))
    }

    #[test]
    fn identity_behaviour() {
        let a = sample();
        assert_eq!(a.mul(&M2::identity()), a);
        assert_eq!(M2::identity().mul(&a), a);
        assert_eq!(M2::identity().det(), Complex::ONE);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = sample();
        let inv = a.inverse().unwrap();
        let p = a.mul(&inv);
        assert!((p.m11 - Complex::ONE).abs() < 1e-13);
        assert!(p.m12.abs() < 1e-13);
        assert!(p.m21.abs() < 1e-13);
        assert!((p.m22 - Complex::ONE).abs() < 1e-13);
    }

    #[test]
    fn singular_has_no_inverse() {
        let a = M2::new(cx(1.0, 0.0), cx(2.0, 0.0), cx(2.0, 0.0), cx(4.0, 0.0));
        assert!(a.inverse().is_none());
    }

    #[test]
    fn det_multiplicative() {
        let a = sample();
        let b = M2::new(cx(0.3, 0.0), cx(1.0, -1.0), cx(2.0, 0.0), cx(0.0, 0.5));
        let lhs = a.mul(&b).det();
        let rhs = a.det() * b.det();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn adjoint_and_transpose() {
        let a = sample();
        assert_eq!(a.transpose().m12, a.m21);
        assert_eq!(a.adjoint().m12, a.m21.conj());
        // (AB)† = B†A†
        let b = M2::new(cx(1.0, 1.0), cx(0.0, 0.0), cx(0.5, 0.0), cx(2.0, 0.0));
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!((lhs.m11 - rhs.m11).abs() < 1e-13);
        assert!((lhs.m22 - rhs.m22).abs() < 1e-13);
    }

    #[test]
    fn congruence_preserves_hermitian() {
        // Hermitian input stays Hermitian under congruence.
        let h = M2::new(cx(2.0, 0.0), cx(0.3, 0.4), cx(0.3, -0.4), cx(1.0, 0.0));
        let t = sample();
        let out = h.congruence(&t);
        assert!((out.m12 - out.m21.conj()).abs() < 1e-12);
        assert!(out.m11.im.abs() < 1e-12);
        assert!(out.m22.im.abs() < 1e-12);
    }

    #[test]
    fn matvec_linearity() {
        let a = sample();
        let v = [cx(1.0, 2.0), cx(-0.5, 0.0)];
        let w = [cx(0.0, 1.0), cx(3.0, 0.0)];
        let sum = a.matvec([v[0] + w[0], v[1] + w[1]]);
        let av = a.matvec(v);
        let aw = a.matvec(w);
        assert!((sum[0] - (av[0] + aw[0])).abs() < 1e-13);
        assert!((sum[1] - (av[1] + aw[1])).abs() < 1e-13);
    }

    #[test]
    fn scale_add_sub() {
        let a = sample();
        let two = a.scale(Complex::real(2.0));
        assert_eq!(two, a.add(&a));
        assert_eq!(a.sub(&a), M2::zero());
    }

    #[test]
    fn finite_detection() {
        assert!(sample().is_finite());
        let bad = M2::new(
            cx(f64::NAN, 0.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::ONE,
        );
        assert!(!bad.is_finite());
    }
}
