//! Noise-correlation matrices in the Hillbrand–Russer framework.
//!
//! A noisy linear two-port is represented as a noiseless two-port plus a
//! pair of correlated noise sources. Depending on the representation the
//! source pair is two shunt currents (Y form), two series voltages (Z form)
//! or the classic input voltage + input current pair (chain/ABCD form). The
//! 2×2 Hermitian correlation matrix of the pair transforms between
//! representations by congruence, and cascading networks reduces to
//! `CA_total = CA₁ + A₁·CA₂·A₁†` — which is how the amplifier design flow
//! propagates noise through matching networks and the pHEMT.
//!
//! **Convention**: correlation matrices hold *one-sided* power spectral
//! densities, so a resistor `R` at temperature `T` has `⟨|v|²⟩ = 4kTR`
//! (V²/Hz) and a conductance `G` has `⟨|i|²⟩ = 4kTG` (A²/Hz).

use crate::m2::M2;
use crate::noise::NoiseParams;
use crate::params::{Abcd, NetworkError, YParams, ZParams};
use rfkit_num::units::{K_BOLTZMANN, T0_KELVIN};
use rfkit_num::Complex;

/// Floor applied to `Cvv` when extracting noise parameters so networks with
/// pure current noise (e.g. an ideal shunt resistor) produce finite, correct
/// `F(Ys)` through the (Fmin, Rn, Yopt) parameterization.
const RN_FLOOR_OHM: f64 = 1e-9;

/// A two-port in chain (ABCD) representation together with its chain-form
/// noise-correlation matrix.
///
/// `ca = [[⟨|vₙ|²⟩, ⟨vₙ·iₙ*⟩], [⟨iₙ·vₙ*⟩, ⟨|iₙ|²⟩]]` in V²/Hz, V·A/Hz and
/// A²/Hz (one-sided).
///
/// # Examples
///
/// ```
/// use rfkit_net::{Abcd, NoisyAbcd};
/// use rfkit_num::Complex;
///
/// // A matched 6 dB pad at 290 K has F = 4 (6 dB) from a 50 Ω source.
/// let pad = Abcd::shunt_admittance(Complex::real(1.0 / 150.0))
///     .cascade(&Abcd::series_impedance(Complex::real(37.5)))
///     .cascade(&Abcd::shunt_admittance(Complex::real(1.0 / 150.0)));
/// let noisy = NoisyAbcd::from_passive_abcd(&pad, 290.0).unwrap();
/// let f = noisy.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
/// assert!((f - 4.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyAbcd {
    /// The (noiseless) chain matrix.
    pub abcd: Abcd,
    /// Chain-form noise-correlation matrix.
    pub ca: M2,
}

impl NoisyAbcd {
    /// A noiseless network with the given chain matrix.
    pub fn noiseless(abcd: Abcd) -> Self {
        NoisyAbcd {
            abcd,
            ca: M2::zero(),
        }
    }

    /// An ideal through connection with no noise.
    pub fn through() -> Self {
        NoisyAbcd::noiseless(Abcd::through())
    }

    /// A passive series impedance `z` at temperature `temp` (K): only the
    /// real part generates noise, `⟨|vₙ|²⟩ = 4kT·Re(z)`.
    pub fn passive_series(z: Complex, temp: f64) -> Self {
        let cvv = 4.0 * K_BOLTZMANN * temp * z.re.max(0.0);
        NoisyAbcd {
            abcd: Abcd::series_impedance(z),
            ca: M2::new(
                Complex::real(cvv),
                Complex::ZERO,
                Complex::ZERO,
                Complex::ZERO,
            ),
        }
    }

    /// A passive shunt admittance `y` at temperature `temp` (K):
    /// `⟨|iₙ|²⟩ = 4kT·Re(y)`.
    pub fn passive_shunt(y: Complex, temp: f64) -> Self {
        let cii = 4.0 * K_BOLTZMANN * temp * y.re.max(0.0);
        NoisyAbcd {
            abcd: Abcd::shunt_admittance(y),
            ca: M2::new(
                Complex::ZERO,
                Complex::ZERO,
                Complex::ZERO,
                Complex::real(cii),
            ),
        }
    }

    /// Builds the noisy chain form of an arbitrary **passive** two-port in
    /// thermal equilibrium at `temp` (K), deriving the correlation matrix
    /// from `Re(Y)` (or `Re(Z)` when no Y form exists).
    ///
    /// # Errors
    ///
    /// Returns an error when the network has neither a Y nor a Z
    /// representation *and* is not recognized as lossless; ideal
    /// transformers and throughs are handled (zero noise).
    pub fn from_passive_abcd(abcd: &Abcd, temp: f64) -> Result<Self, NetworkError> {
        if let Ok(y) = abcd.to_y() {
            let cy = re_part_scaled(&y.m, 4.0 * K_BOLTZMANN * temp);
            return NoisyAbcd::from_y_correlation(&y, &cy);
        }
        if let Ok(z) = abcd.to_z() {
            let cz = re_part_scaled(&z.m, 4.0 * K_BOLTZMANN * temp);
            return NoisyAbcd::from_z_correlation(&z, &cz);
        }
        // B == 0 and C == 0: a pure through/transformer, which is lossless.
        Ok(NoisyAbcd::noiseless(*abcd))
    }

    /// Builds the chain form from Y parameters and a Y-form correlation
    /// matrix `CY` (A²/Hz, one-sided).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `Y21 == 0`.
    pub fn from_y_correlation(y: &YParams, cy: &M2) -> Result<Self, NetworkError> {
        let abcd = y.to_abcd()?;
        // Hillbrand–Russer Y→A transform: T = [[0, B], [1, D]].
        let t = M2::new(Complex::ZERO, abcd.b(), Complex::ONE, abcd.d());
        Ok(NoisyAbcd {
            abcd,
            ca: cy.congruence(&t),
        })
    }

    /// Builds the chain form from Z parameters and a Z-form correlation
    /// matrix `CZ` (V²/Hz, one-sided).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `Z21 == 0`.
    pub fn from_z_correlation(z: &ZParams, cz: &M2) -> Result<Self, NetworkError> {
        let abcd = z.to_abcd()?;
        // Hillbrand–Russer Z→A transform: T = [[1, −A], [0, −C]].
        let t = M2::new(Complex::ONE, -abcd.a(), Complex::ZERO, -abcd.c());
        Ok(NoisyAbcd {
            abcd,
            ca: cz.congruence(&t),
        })
    }

    /// Builds the chain form from a noiseless chain matrix plus classic
    /// noise parameters.
    pub fn from_noise_params(abcd: Abcd, np: &NoiseParams) -> Self {
        let kt0 = K_BOLTZMANN * T0_KELVIN;
        let y_opt = np.y_opt();
        let cvv = 4.0 * kt0 * np.rn;
        let cvi = Complex::real(2.0 * kt0 * (np.fmin - 1.0)) - Complex::real(cvv) * y_opt.conj();
        let cii = Complex::real(cvv * y_opt.norm_sqr());
        NoisyAbcd {
            abcd,
            ca: M2::new(Complex::real(cvv), cvi, cvi.conj(), cii),
        }
    }

    /// Cascade: `self` followed by `next`.
    ///
    /// The noise of the second stage is referred to the input through the
    /// first stage's chain matrix: `CA = CA₁ + A₁·CA₂·A₁†`.
    pub fn cascade(&self, next: &NoisyAbcd) -> NoisyAbcd {
        NoisyAbcd {
            abcd: self.abcd.cascade(&next.abcd),
            ca: self.ca.add(&next.ca.congruence(&self.abcd.m)),
        }
    }

    /// Extracts the classic noise parameters (referenced to `z0`).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidReference`] for non-positive `z0`.
    pub fn noise_params(&self, z0: f64) -> Result<NoiseParams, NetworkError> {
        if z0 <= 0.0 {
            return Err(NetworkError::InvalidReference(z0));
        }
        let kt0 = K_BOLTZMANN * T0_KELVIN;
        if self.ca.m11.is_exact_zero() && self.ca.m22.is_exact_zero() && self.ca.m12.is_exact_zero()
        {
            return Ok(NoiseParams::noiseless(z0));
        }
        let cvv = self.ca.m11.re.max(4.0 * kt0 * RN_FLOOR_OHM);
        let cvi = self.ca.m12;
        let cii = self.ca.m22.re.max(0.0);
        let rn = cvv / (4.0 * kt0);
        let b_opt = cvi.im / cvv;
        let g_opt_sq = (cii / cvv - b_opt * b_opt).max(0.0);
        let g_opt = g_opt_sq.sqrt();
        let y_opt = Complex::new(g_opt, b_opt);
        let fmin = (1.0 + (cvi.re + g_opt * cvv) / (2.0 * kt0)).max(1.0);
        let y0 = 1.0 / z0;
        let gamma_opt = (Complex::real(y0) - y_opt) / (Complex::real(y0) + y_opt);
        Ok(NoiseParams::new(fmin, rn, gamma_opt, z0))
    }
}

/// `scale · Re(M)` as a real diagonal-symmetric M2 (entry-wise real part).
fn re_part_scaled(m: &M2, scale: f64) -> M2 {
    M2::new(
        Complex::real(m.m11.re * scale),
        Complex::real(m.m12.re * scale),
        Complex::real(m.m21.re * scale),
        Complex::real(m.m22.re * scale),
    )
}

/// Transforms a Y-form correlation matrix to Z form: `CZ = Z·CY·Z†`.
pub fn cy_to_cz(cy: &M2, z: &ZParams) -> M2 {
    cy.congruence(&z.m)
}

/// Transforms a Z-form correlation matrix to Y form: `CY = Y·CZ·Y†`.
pub fn cz_to_cy(cz: &M2, y: &YParams) -> M2 {
    cz.congruence(&y.m)
}

/// Thermal Y-form correlation matrix of a passive network at `temp` kelvin:
/// `CY = 4kT·Re(Y)`.
pub fn thermal_cy(y: &YParams, temp: f64) -> M2 {
    re_part_scaled(&y.m, 4.0 * K_BOLTZMANN * temp)
}

/// Thermal Z-form correlation matrix of a passive network at `temp` kelvin:
/// `CZ = 4kT·Re(Z)`.
pub fn thermal_cz(z: &ZParams, temp: f64) -> M2 {
    re_part_scaled(&z.m, 4.0 * K_BOLTZMANN * temp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::available_gain;
    use crate::noise::{friis, CascadeStage};

    fn pad_6db() -> Abcd {
        Abcd::shunt_admittance(Complex::real(1.0 / 150.0))
            .cascade(&Abcd::series_impedance(Complex::real(37.5)))
            .cascade(&Abcd::shunt_admittance(Complex::real(1.0 / 150.0)))
    }

    #[test]
    fn series_resistor_noise_factor() {
        // Series 50 Ω at T0 from a 50 Ω source: GA = 1/2 → F = 2.
        let r = NoisyAbcd::passive_series(Complex::real(50.0), T0_KELVIN);
        let np = r.noise_params(50.0).unwrap();
        let f = np.noise_factor(Complex::ZERO);
        assert!((f - 2.0).abs() < 1e-9, "F = {f}");
    }

    #[test]
    fn shunt_resistor_noise_factor() {
        // Shunt 50 Ω at T0 from a 50 Ω source: GA = ... F = 1/GA.
        let y = Complex::real(1.0 / 50.0);
        let sh = NoisyAbcd::passive_shunt(y, T0_KELVIN);
        let s = sh.abcd.to_s(50.0).unwrap();
        let ga = available_gain(&s, Complex::ZERO);
        let f = sh.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        assert!((f - 1.0 / ga).abs() < 1e-9, "F = {f}, 1/GA = {}", 1.0 / ga);
    }

    #[test]
    fn passive_attenuator_noise_figure_equals_attenuation() {
        let noisy = NoisyAbcd::from_passive_abcd(&pad_6db(), T0_KELVIN).unwrap();
        let np = noisy.noise_params(50.0).unwrap();
        let f = np.noise_factor(Complex::ZERO);
        assert!((f - 4.0).abs() < 1e-6, "6 dB pad must have F = 4, got {f}");
        // Matched pad: Γopt ≈ 0 and Fmin = F(0).
        assert!(np.gamma_opt.abs() < 1e-6);
        assert!((np.fmin - 4.0).abs() < 1e-6);
    }

    #[test]
    fn cold_passive_network_is_noiseless() {
        let noisy = NoisyAbcd::from_passive_abcd(&pad_6db(), 0.0).unwrap();
        let f = noisy
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cascade_of_pads_matches_friis() {
        let pad = NoisyAbcd::from_passive_abcd(&pad_6db(), T0_KELVIN).unwrap();
        let two = pad.cascade(&pad);
        let f_total = two.noise_params(50.0).unwrap().noise_factor(Complex::ZERO);
        // Friis with matched stages: G = 1/4, F = 4 each.
        let expect = friis(&[
            CascadeStage {
                gain: 0.25,
                noise_factor: 4.0,
            },
            CascadeStage {
                gain: 0.25,
                noise_factor: 4.0,
            },
        ]);
        assert!(
            (f_total - expect).abs() < 1e-6,
            "cascade F = {f_total}, Friis = {expect}"
        );
        // 12 dB pad → F = 16.
        assert!((f_total - 16.0).abs() < 1e-5);
    }

    #[test]
    fn noise_params_roundtrip_through_ca() {
        let np = NoiseParams::new(1.25, 9.0, Complex::from_polar(0.4, 0.9), 50.0);
        let noisy = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let back = noisy.noise_params(50.0).unwrap();
        assert!(
            (back.fmin - np.fmin).abs() < 1e-9,
            "fmin {} vs {}",
            back.fmin,
            np.fmin
        );
        assert!((back.rn - np.rn).abs() < 1e-9);
        assert!((back.gamma_opt - np.gamma_opt).abs() < 1e-9);
    }

    #[test]
    fn noiseless_input_network_preserves_noise_params() {
        // A noiseless through in front changes nothing.
        let np = NoiseParams::new(1.3, 10.0, Complex::from_polar(0.3, -0.5), 50.0);
        let dev = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let chained = NoisyAbcd::through().cascade(&dev);
        let back = chained.noise_params(50.0).unwrap();
        assert!((back.fmin - np.fmin).abs() < 1e-12);
    }

    #[test]
    fn input_attenuator_raises_fmin_by_its_loss() {
        // Matched pad (loss L) + device: Fmin_total = L·Fmin_dev... exactly:
        // F = F_pad + (F_dev − 1)/G_pad at the pad's matched optimum.
        let np = NoiseParams::new(1.2, 8.0, Complex::ZERO, 50.0);
        let dev = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let pad = NoisyAbcd::from_passive_abcd(&pad_6db(), T0_KELVIN).unwrap();
        let total = pad.cascade(&dev);
        let f = total
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        let expect = 4.0 + (1.2 - 1.0) / 0.25;
        assert!((f - expect).abs() < 1e-6, "F = {f}, expect {expect}");
    }

    #[test]
    fn y_and_z_paths_agree_for_pi_network() {
        // The pad has both Y and Z forms; both constructions must agree.
        let abcd = pad_6db();
        let y = abcd.to_y().unwrap();
        let z = abcd.to_z().unwrap();
        let via_y = NoisyAbcd::from_y_correlation(&y, &thermal_cy(&y, T0_KELVIN)).unwrap();
        let via_z = NoisyAbcd::from_z_correlation(&z, &thermal_cz(&z, T0_KELVIN)).unwrap();
        assert!((via_y.ca.m11 - via_z.ca.m11).abs() < 1e-25);
        assert!((via_y.ca.m12 - via_z.ca.m12).abs() < 1e-25);
        assert!((via_y.ca.m22 - via_z.ca.m22).abs() < 1e-25);
    }

    #[test]
    fn cy_cz_transforms_are_inverses() {
        let abcd = pad_6db();
        let y = abcd.to_y().unwrap();
        let z = abcd.to_z().unwrap();
        let cy = thermal_cy(&y, T0_KELVIN);
        let cz = cy_to_cz(&cy, &z);
        let cy2 = cz_to_cy(&cz, &y);
        assert!((cy.m11 - cy2.m11).abs() < 1e-25);
        assert!((cy.m12 - cy2.m12).abs() < 1e-25);
        assert!((cy.m22 - cy2.m22).abs() < 1e-25);
    }

    #[test]
    fn lossless_transformer_adds_no_noise() {
        let t = Abcd::transformer(3.0);
        let noisy = NoisyAbcd::from_passive_abcd(&t, T0_KELVIN).unwrap();
        assert_eq!(noisy.ca, M2::zero());
    }

    #[test]
    fn reactive_elements_add_no_noise() {
        // A lossless series inductor at 1 GHz.
        let zl = Complex::imag(2.0 * std::f64::consts::PI * 1e9 * 5e-9);
        let noisy = NoisyAbcd::passive_series(zl, T0_KELVIN);
        let f = noisy
            .noise_params(50.0)
            .unwrap()
            .noise_factor(Complex::ZERO);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_matrix_is_hermitian_after_cascade() {
        let np = NoiseParams::new(1.4, 12.0, Complex::from_polar(0.5, 1.2), 50.0);
        let dev = NoisyAbcd::from_noise_params(Abcd::through(), &np);
        let pad = NoisyAbcd::from_passive_abcd(&pad_6db(), T0_KELVIN).unwrap();
        let total = pad.cascade(&dev).cascade(&pad).cascade(&dev);
        assert!((total.ca.m12 - total.ca.m21.conj()).abs() < 1e-25);
        assert!(total.ca.m11.im.abs() < 1e-28);
        assert!(total.ca.m22.im.abs() < 1e-28);
        assert!(total.ca.m11.re >= 0.0 && total.ca.m22.re >= 0.0);
    }
}
