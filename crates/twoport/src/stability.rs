//! Linear stability measures of a two-port.
//!
//! A GNSS antenna amplifier must be unconditionally stable well beyond its
//! operating band (any antenna mismatch must not start an oscillation), so
//! the design flow constrains these quantities from 100 MHz to several GHz.

use crate::params::SParams;
use rfkit_num::Complex;

/// Rollett stability factor
/// `K = (1 − |S11|² − |S22|² + |Δ|²) / (2|S12·S21|)`.
///
/// `K > 1` together with `|Δ| < 1` means unconditional stability. Returns
/// infinity for a unilateral device (`S12 == 0`).
pub fn rollett_k(s: &SParams) -> f64 {
    let num = 1.0 - s.s11().norm_sqr() - s.s22().norm_sqr() + s.delta().norm_sqr();
    let den = 2.0 * (s.s12() * s.s21()).abs();
    if rfkit_num::is_exact_zero(den) {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Edwards–Sinsky geometric stability factor seen from the load plane:
/// `μ = (1 − |S11|²) / (|S22 − Δ·S11*| + |S12·S21|)`.
///
/// `μ > 1` alone is necessary and sufficient for unconditional stability.
pub fn mu_load(s: &SParams) -> f64 {
    let num = 1.0 - s.s11().norm_sqr();
    let den = (s.s22() - s.delta() * s.s11().conj()).abs() + (s.s12() * s.s21()).abs();
    if rfkit_num::is_exact_zero(den) {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Geometric stability factor seen from the source plane (`μ'`):
/// `μ' = (1 − |S22|²) / (|S11 − Δ·S22*| + |S12·S21|)`.
pub fn mu_source(s: &SParams) -> f64 {
    let num = 1.0 - s.s22().norm_sqr();
    let den = (s.s11() - s.delta() * s.s22().conj()).abs() + (s.s12() * s.s21()).abs();
    if rfkit_num::is_exact_zero(den) {
        f64::INFINITY
    } else {
        num / den
    }
}

/// Auxiliary stability parameter `B1 = 1 + |S11|² − |S22|² − |Δ|²`;
/// `B1 > 0` selects the usable root in matching formulas.
pub fn b1(s: &SParams) -> f64 {
    1.0 + s.s11().norm_sqr() - s.s22().norm_sqr() - s.delta().norm_sqr()
}

/// `true` when the two-port is unconditionally stable (`K > 1` and
/// `|Δ| < 1`).
pub fn is_unconditionally_stable(s: &SParams) -> bool {
    rollett_k(s) > 1.0 && s.delta().abs() < 1.0
}

/// Center and radius of the **load-plane** stability circle (the locus of
/// loads giving `|Γin| = 1`).
pub fn load_stability_circle(s: &SParams) -> (Complex, f64) {
    let delta = s.delta();
    let den = s.s22().norm_sqr() - delta.norm_sqr();
    let center = (s.s22() - delta * s.s11().conj()).conj() / Complex::real(den);
    let radius = ((s.s12() * s.s21()).abs() / den).abs();
    (center, radius)
}

/// Center and radius of the **source-plane** stability circle.
pub fn source_stability_circle(s: &SParams) -> (Complex, f64) {
    let delta = s.delta();
    let den = s.s11().norm_sqr() - delta.norm_sqr();
    let center = (s.s11() - delta * s.s22().conj()).conj() / Complex::real(den);
    let radius = ((s.s12() * s.s21()).abs() / den).abs();
    (center, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gains::gamma_in;

    fn stable_amp() -> SParams {
        SParams::new(
            Complex::from_polar(0.3, 2.0),
            Complex::from_polar(0.03, 0.5),
            Complex::from_polar(3.0, -1.0),
            Complex::from_polar(0.4, -2.5),
            50.0,
        )
    }

    fn unstable_amp() -> SParams {
        // Pozar's conditionally stable FET example: K ≈ 0.607, |Δ| ≈ 0.696.
        SParams::new(
            Complex::from_polar(0.894, (-60.6f64).to_radians()),
            Complex::from_polar(0.020, 62.4f64.to_radians()),
            Complex::from_polar(3.122, 123.6f64.to_radians()),
            Complex::from_polar(0.781, (-27.6f64).to_radians()),
            50.0,
        )
    }

    #[test]
    fn k_and_mu_agree_on_stability_verdict() {
        let s = stable_amp();
        assert!(rollett_k(&s) > 1.0);
        assert!(mu_load(&s) > 1.0);
        assert!(mu_source(&s) > 1.0);
        assert!(is_unconditionally_stable(&s));
        let u = unstable_amp();
        assert!(rollett_k(&u) < 1.0);
        assert!(mu_load(&u) < 1.0);
        assert!(mu_source(&u) < 1.0);
        assert!(!is_unconditionally_stable(&u));
    }

    #[test]
    fn passive_network_is_unconditionally_stable() {
        // Matched 6 dB pad.
        let s = SParams::new(
            Complex::ZERO,
            Complex::real(0.5),
            Complex::real(0.5),
            Complex::ZERO,
            50.0,
        );
        assert!(is_unconditionally_stable(&s));
        assert!(mu_load(&s) > 1.0);
    }

    #[test]
    fn unilateral_device_k_is_infinite() {
        let s = SParams::new(
            Complex::from_polar(0.5, 1.0),
            Complex::ZERO,
            Complex::real(4.0),
            Complex::from_polar(0.4, 0.0),
            50.0,
        );
        assert!(rollett_k(&s).is_infinite());
    }

    #[test]
    fn stability_circle_boundary_gives_unit_gamma_in() {
        // Points on the load stability circle must map to |Γin| = 1.
        let s = unstable_amp();
        let (c, r) = load_stability_circle(&s);
        for k in 0..8 {
            let ang = k as f64 * std::f64::consts::PI / 4.0;
            let gl = c + Complex::from_polar(r, ang);
            let gin = gamma_in(&s, gl);
            assert!(
                (gin.abs() - 1.0).abs() < 1e-9,
                "|Γin| = {} at angle {ang}",
                gin.abs()
            );
        }
    }

    #[test]
    fn source_circle_boundary_gives_unit_gamma_out() {
        let s = unstable_amp();
        let (c, r) = source_stability_circle(&s);
        for k in 0..8 {
            let ang = k as f64 * std::f64::consts::PI / 4.0;
            let gs = c + Complex::from_polar(r, ang);
            let gout = crate::gains::gamma_out(&s, gs);
            assert!((gout.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stable_device_circle_excludes_origin() {
        // For an unconditionally stable device the load stability circle must
        // not contain the center of the Smith chart.
        let s = stable_amp();
        let (c, r) = load_stability_circle(&s);
        assert!((c.abs() - r).abs() > 0.0);
        assert!(
            c.abs() > r,
            "origin inside stability circle of stable device"
        );
    }

    #[test]
    fn b1_positive_for_stable_amp() {
        assert!(b1(&stable_amp()) > 0.0);
    }
}
