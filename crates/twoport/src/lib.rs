//! # rfkit-net
//!
//! Two-port and N-port microwave network algebra for the rfkit suite:
//!
//! * [`SParams`], [`YParams`], [`ZParams`], [`Abcd`] representations with
//!   all pairwise conversions and connection rules (cascade, parallel,
//!   series);
//! * power gains ([`gains`]) and stability measures ([`stability`]);
//! * classic noise parameters ([`noise`]) and Hillbrand–Russer
//!   noise-correlation matrices ([`correlation`]) for cascading noisy
//!   stages;
//! * N-port S matrices with termination reduction ([`nport`]) — used for
//!   the T splitter;
//! * Touchstone I/O ([`touchstone`]) and swept responses ([`sweep`]).
//!
//! ## Example: gain and noise of a padded amplifier
//!
//! ```
//! use rfkit_net::{Abcd, NoisyAbcd, NoiseParams};
//! use rfkit_num::Complex;
//!
//! // 0.9 dB NF device behind a small series loss:
//! let device = NoisyAbcd::from_noise_params(
//!     Abcd::through(),
//!     &NoiseParams::new(1.23, 8.0, Complex::ZERO, 50.0),
//! );
//! let loss = NoisyAbcd::passive_series(Complex::real(5.0), 290.0);
//! let chain = loss.cascade(&device);
//! let f = chain.noise_params(50.0)?.noise_factor(Complex::ZERO);
//! assert!(f > 1.23); // the resistor in front always costs noise
//! # Ok::<(), rfkit_net::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod circles;
pub mod correlation;
pub mod deembed;
pub mod gains;
mod m2;
pub mod noise;
pub mod nport;
mod params;
pub mod stability;
pub mod sweep;
pub mod tabulated;
pub mod touchstone;

pub use correlation::NoisyAbcd;
pub use m2::M2;
pub use noise::{CascadeStage, NoiseParams};
pub use nport::{NPort, NPortError};
pub use params::{Abcd, NetworkError, SParams, YParams, ZParams};
pub use sweep::{FrequencyResponse, ResponsePoint};
pub use tabulated::{TabulatedError, TabulatedTwoPort};
