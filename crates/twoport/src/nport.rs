//! N-port scattering matrices and port-termination reduction.
//!
//! The T splitter the paper uses in the antenna front end is a 3-port; this
//! module holds arbitrary N-port S matrices and reduces them to smaller
//! networks by terminating ports, which is how the dual-output front end is
//! analysed (each receiver chain sees the splitter with the other output
//! terminated).

use crate::params::SParams;
use rfkit_num::{CMatrix, Complex};

/// Error from N-port operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NPortError {
    /// A port index was out of range.
    PortOutOfRange {
        /// The offending index.
        port: usize,
        /// Number of ports in the network.
        n_ports: usize,
    },
    /// The operation requires exactly two remaining ports.
    NotTwoPort(usize),
}

impl std::fmt::Display for NPortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NPortError::PortOutOfRange { port, n_ports } => {
                write!(f, "port {port} out of range for {n_ports}-port network")
            }
            NPortError::NotTwoPort(n) => {
                write!(f, "operation requires a two-port, network has {n} ports")
            }
        }
    }
}

impl std::error::Error for NPortError {}

/// An N-port scattering matrix referenced to a single real impedance.
#[derive(Debug, Clone, PartialEq)]
pub struct NPort {
    s: CMatrix,
    z0: f64,
}

impl NPort {
    /// Creates an N-port from a square scattering matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `z0 <= 0`.
    pub fn new(s: CMatrix, z0: f64) -> Self {
        assert!(s.is_square(), "scattering matrix must be square");
        assert!(z0 > 0.0, "reference impedance must be positive");
        NPort { s, z0 }
    }

    /// Builds a 3-port ideal (lossless, matched-reference) T junction:
    /// `Sii = −1/3`, `Sij = 2/3`. This is the textbook parallel junction of
    /// three identical lines; it cannot be matched at all ports
    /// simultaneously, which is why real designs add isolation resistors.
    pub fn ideal_tee(z0: f64) -> Self {
        let s = CMatrix::from_fn(3, 3, |i, j| {
            if i == j {
                Complex::real(-1.0 / 3.0)
            } else {
                Complex::real(2.0 / 3.0)
            }
        });
        NPort::new(s, z0)
    }

    /// Builds an ideal Wilkinson power divider (port 1 = input): matched at
    /// all ports, −3 dB to each output with isolation between them.
    pub fn ideal_wilkinson(z0: f64) -> Self {
        let k = Complex::new(0.0, -1.0 / 2f64.sqrt());
        let mut s = CMatrix::zeros(3, 3);
        s[(0, 1)] = k;
        s[(0, 2)] = k;
        s[(1, 0)] = k;
        s[(2, 0)] = k;
        NPort::new(s, z0)
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.s.rows()
    }

    /// Reference impedance (ohms).
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// Scattering coefficient `S(i, j)` with zero-based port indices.
    ///
    /// # Errors
    ///
    /// Returns [`NPortError::PortOutOfRange`] for bad indices.
    pub fn s(&self, i: usize, j: usize) -> Result<Complex, NPortError> {
        let n = self.n_ports();
        if i >= n || j >= n {
            return Err(NPortError::PortOutOfRange {
                port: i.max(j),
                n_ports: n,
            });
        }
        Ok(self.s[(i, j)])
    }

    /// Terminates port `k` with reflection coefficient `gamma`, producing an
    /// (N−1)-port. The surviving ports keep their relative order.
    ///
    /// Uses `S'ᵢⱼ = Sᵢⱼ + Sᵢₖ·Γ·Sₖⱼ / (1 − Sₖₖ·Γ)`.
    ///
    /// # Errors
    ///
    /// Returns [`NPortError::PortOutOfRange`] for a bad index.
    pub fn terminate(&self, k: usize, gamma: Complex) -> Result<NPort, NPortError> {
        let n = self.n_ports();
        if k >= n {
            return Err(NPortError::PortOutOfRange {
                port: k,
                n_ports: n,
            });
        }
        let den = Complex::ONE - self.s[(k, k)] * gamma;
        let keep: Vec<usize> = (0..n).filter(|&p| p != k).collect();
        let s = CMatrix::from_fn(n - 1, n - 1, |i, j| {
            let (pi, pj) = (keep[i], keep[j]);
            self.s[(pi, pj)] + self.s[(pi, k)] * gamma * self.s[(k, pj)] / den
        });
        Ok(NPort::new(s, self.z0))
    }

    /// Terminates port `k` in the reference impedance (Γ = 0).
    ///
    /// # Errors
    ///
    /// Returns [`NPortError::PortOutOfRange`] for a bad index.
    pub fn terminate_matched(&self, k: usize) -> Result<NPort, NPortError> {
        self.terminate(k, Complex::ZERO)
    }

    /// Converts a 2-port [`NPort`] into [`SParams`].
    ///
    /// # Errors
    ///
    /// Returns [`NPortError::NotTwoPort`] unless exactly two ports remain.
    pub fn to_two_port(&self) -> Result<SParams, NPortError> {
        if self.n_ports() != 2 {
            return Err(NPortError::NotTwoPort(self.n_ports()));
        }
        Ok(SParams::new(
            self.s[(0, 0)],
            self.s[(0, 1)],
            self.s[(1, 0)],
            self.s[(1, 1)],
            self.z0,
        ))
    }

    /// `true` when the matrix is unitary within `tol` (lossless network).
    pub fn is_lossless(&self, tol: f64) -> bool {
        let product = self
            .s
            .adjoint()
            .matmul(&self.s)
            .expect("square matrices chain");
        let n = self.n_ports();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { Complex::ONE } else { Complex::ZERO };
                if (product[(i, j)] - expect).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when the matrix is symmetric within `tol` (reciprocal network).
    pub fn is_reciprocal(&self, tol: f64) -> bool {
        let n = self.n_ports();
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.s[(i, j)] - self.s[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_tee_is_lossless_and_reciprocal() {
        let tee = NPort::ideal_tee(50.0);
        assert!(tee.is_lossless(1e-12));
        assert!(tee.is_reciprocal(1e-12));
        assert_eq!(tee.n_ports(), 3);
    }

    #[test]
    fn tee_split_loses_power_into_mismatch() {
        // With port 3 matched, the through path of an ideal tee delivers
        // |S21|² = 4/9 of the power and reflects 1/9.
        let tee = NPort::ideal_tee(50.0);
        let two = tee.terminate_matched(2).unwrap().to_two_port().unwrap();
        assert!((two.s21().norm_sqr() - 4.0 / 9.0).abs() < 1e-12);
        assert!((two.s11().norm_sqr() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn wilkinson_is_matched_and_isolating() {
        let w = NPort::ideal_wilkinson(50.0);
        assert!(w.s(0, 0).unwrap().abs() < 1e-12);
        assert!(w.s(1, 2).unwrap().abs() < 1e-12, "output ports isolated");
        assert!(
            (w.s(1, 0).unwrap().norm_sqr() - 0.5).abs() < 1e-12,
            "3 dB split"
        );
        // The isolation resistor makes it lossy for odd-mode signals,
        // so the matrix is NOT unitary.
        assert!(!w.is_lossless(1e-6));
        assert!(w.is_reciprocal(1e-12));
    }

    #[test]
    fn wilkinson_terminated_is_a_clean_two_port() {
        let w = NPort::ideal_wilkinson(50.0);
        let two = w.terminate_matched(2).unwrap().to_two_port().unwrap();
        assert!(two.s11().abs() < 1e-12);
        assert!(two.s22().abs() < 1e-12);
        assert!((two.s21().norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn terminating_with_short_reflects() {
        // A 2-port through terminated in a short at port 2 gives Γin = -1.
        let mut s = CMatrix::zeros(2, 2);
        s[(0, 1)] = Complex::ONE;
        s[(1, 0)] = Complex::ONE;
        let through = NPort::new(s, 50.0);
        let one = through.terminate(1, -Complex::ONE).unwrap();
        assert_eq!(one.n_ports(), 1);
        assert!((one.s(0, 0).unwrap() + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn termination_matches_two_port_gamma_in_formula() {
        let s2 = SParams::new(
            Complex::from_polar(0.4, 1.0),
            Complex::from_polar(0.1, -0.2),
            Complex::from_polar(2.5, 0.7),
            Complex::from_polar(0.3, 2.0),
            50.0,
        );
        let np = NPort::new(
            CMatrix::from_rows(&[&[s2.s11(), s2.s12()], &[s2.s21(), s2.s22()]]),
            50.0,
        );
        let gl = Complex::from_polar(0.6, -1.1);
        let reduced = np.terminate(1, gl).unwrap();
        let expect = crate::gains::gamma_in(&s2, gl);
        assert!((reduced.s(0, 0).unwrap() - expect).abs() < 1e-13);
    }

    #[test]
    fn port_out_of_range_errors() {
        let tee = NPort::ideal_tee(50.0);
        assert!(matches!(
            tee.terminate(3, Complex::ZERO),
            Err(NPortError::PortOutOfRange { .. })
        ));
        assert!(matches!(
            tee.s(0, 5),
            Err(NPortError::PortOutOfRange { .. })
        ));
        assert!(matches!(tee.to_two_port(), Err(NPortError::NotTwoPort(3))));
    }
}
