//! Fixture de-embedding.
//!
//! A VNA measures the device *plus* its launch structures. When the
//! launches are known (modelled microstrip lines, characterized adapters),
//! the device response is recovered by inverting the chain:
//! `A_dev = A_left⁻¹ · A_meas · A_right⁻¹`. This is how the paper-style
//! measured s-parameter plots are referenced to the amplifier proper.

use crate::params::{Abcd, NetworkError, SParams};

/// Inverts a chain matrix.
///
/// # Errors
///
/// Returns [`NetworkError::NotInvertible`] when `det(A) == 0` (never the
/// case for a physical two-port, whose chain determinant is ±1-ish for
/// reciprocal networks).
pub fn invert_abcd(a: &Abcd) -> Result<Abcd, NetworkError> {
    let inv = a.m.inverse().ok_or(NetworkError::NotInvertible("ABCD"))?;
    Ok(Abcd { m: inv })
}

/// Removes known left/right fixtures from a measured two-port:
/// `A_dev = A_left⁻¹ · A_meas · A_right⁻¹`.
///
/// Pass [`Abcd::through`] for a side with no fixture.
///
/// # Errors
///
/// Propagates conversion errors (a measurement with `S21 == 0` has no
/// chain form) and singular-fixture errors.
pub fn deembed(measured: &SParams, left: &Abcd, right: &Abcd) -> Result<SParams, NetworkError> {
    let a_meas = measured.to_abcd()?;
    let li = invert_abcd(left)?;
    let ri = invert_abcd(right)?;
    li.cascade(&a_meas).cascade(&ri).to_s(measured.z0)
}

/// Convenience: de-embeds identical fixtures from both ports (the common
/// symmetric-launch case).
///
/// # Errors
///
/// See [`deembed`].
pub fn deembed_symmetric(measured: &SParams, fixture: &Abcd) -> Result<SParams, NetworkError> {
    deembed(measured, fixture, fixture)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::Complex;

    fn device_s() -> SParams {
        SParams::new(
            Complex::from_polar(0.4, -1.2),
            Complex::from_polar(0.05, 0.8),
            Complex::from_polar(3.5, 2.0),
            Complex::from_polar(0.35, -0.5),
            50.0,
        )
    }

    fn launch() -> Abcd {
        // A short lossy 50 Ω-ish line.
        Abcd::transmission_line(Complex::new(0.8, 45.0), Complex::real(51.0), 0.008)
    }

    #[test]
    fn embed_then_deembed_is_identity() {
        let dev = device_s();
        let fixture = launch();
        let a_dev = dev.to_abcd().unwrap();
        let measured = fixture
            .cascade(&a_dev)
            .cascade(&fixture)
            .to_s(50.0)
            .unwrap();
        // The raw measurement differs from the device…
        assert!((measured.s21() - dev.s21()).abs() > 1e-3);
        // …and de-embedding restores it.
        let recovered = deembed_symmetric(&measured, &fixture).unwrap();
        for (a, b) in [
            (recovered.s11(), dev.s11()),
            (recovered.s12(), dev.s12()),
            (recovered.s21(), dev.s21()),
            (recovered.s22(), dev.s22()),
        ] {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn asymmetric_fixtures() {
        let dev = device_s();
        let left = launch();
        let right = Abcd::series_impedance(Complex::new(1.0, 8.0));
        let measured = left
            .cascade(&dev.to_abcd().unwrap())
            .cascade(&right)
            .to_s(50.0)
            .unwrap();
        let recovered = deembed(&measured, &left, &right).unwrap();
        assert!((recovered.s21() - dev.s21()).abs() < 1e-10);
        assert!((recovered.s11() - dev.s11()).abs() < 1e-10);
    }

    #[test]
    fn through_fixture_is_neutral() {
        let dev = device_s();
        let recovered = deembed(&dev, &Abcd::through(), &Abcd::through()).unwrap();
        assert!((recovered.s21() - dev.s21()).abs() < 1e-12);
    }

    #[test]
    fn invert_abcd_roundtrip() {
        let a = launch();
        let ai = invert_abcd(&a).unwrap();
        let id = a.cascade(&ai);
        assert!((id.a() - Complex::ONE).abs() < 1e-12);
        assert!(id.b().abs() < 1e-9);
        assert!(id.c().abs() < 1e-12);
        assert!((id.d() - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn isolation_measurement_cannot_be_deembedded() {
        let s = SParams::new(
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            50.0,
        );
        assert!(deembed_symmetric(&s, &launch()).is_err());
    }

    #[test]
    fn deembedding_with_noise_amplifies_but_stays_close() {
        // Small measurement error stays small after de-embedding through a
        // low-loss fixture.
        let dev = device_s();
        let fixture = launch();
        let measured = fixture
            .cascade(&dev.to_abcd().unwrap())
            .cascade(&fixture)
            .to_s(50.0)
            .unwrap();
        let noisy = SParams::new(
            measured.s11() + Complex::new(0.002, -0.001),
            measured.s12() + Complex::new(-0.001, 0.002),
            measured.s21() + Complex::new(0.002, 0.002),
            measured.s22() + Complex::new(-0.002, 0.001),
            50.0,
        );
        let recovered = deembed_symmetric(&noisy, &fixture).unwrap();
        assert!((recovered.s21() - dev.s21()).abs() < 0.05);
        assert!((recovered.s11() - dev.s11()).abs() < 0.05);
    }
}
