//! Two-port parameter representations and conversions.
//!
//! Four representations cover all the connection topologies the suite needs:
//!
//! * **S** (scattering) — what instruments measure and what the design flow
//!   optimizes; referenced to a real impedance `z0`.
//! * **Y** (admittance) — parallel connection adds Y matrices.
//! * **Z** (impedance) — series connection adds Z matrices.
//! * **ABCD** (chain) — cascade multiplies ABCD matrices.
//!
//! Sign conventions: both port currents of Y/Z flow *into* the network; the
//! ABCD output current flows *out of* port 2 toward the load (the usual
//! textbook convention, so `cascade` is a plain matrix product).

use crate::m2::M2;
use rfkit_num::Complex;

/// Error produced by representation conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The conversion requires inverting a singular matrix (e.g. converting
    /// an ideal series element to Z parameters).
    NotInvertible(&'static str),
    /// A parameter that must be nonzero for this conversion is zero (e.g.
    /// `S21 == 0` when converting to ABCD).
    DegenerateParameter(&'static str),
    /// The reference impedance is not positive.
    InvalidReference(f64),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NotInvertible(what) => {
                write!(f, "conversion failed: {what} matrix is singular")
            }
            NetworkError::DegenerateParameter(what) => {
                write!(f, "conversion failed: parameter {what} is zero")
            }
            NetworkError::InvalidReference(z0) => {
                write!(f, "reference impedance must be positive, got {z0}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Scattering parameters referenced to a real impedance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SParams {
    /// The 2×2 scattering matrix.
    pub m: M2,
    /// Reference impedance in ohms (same at both ports).
    pub z0: f64,
}

/// Admittance (Y) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct YParams {
    /// The 2×2 admittance matrix in siemens.
    pub m: M2,
}

/// Impedance (Z) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ZParams {
    /// The 2×2 impedance matrix in ohms.
    pub m: M2,
}

/// Chain (ABCD) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Abcd {
    /// The 2×2 chain matrix `[[A, B], [C, D]]` (B in ohms, C in siemens).
    pub m: M2,
}

impl Default for Abcd {
    /// The identity chain — a through connection.
    fn default() -> Self {
        Abcd { m: M2::identity() }
    }
}

impl SParams {
    /// Creates S-parameters from the four entries and a reference impedance.
    ///
    /// # Panics
    ///
    /// Panics if `z0 <= 0`.
    pub fn new(s11: Complex, s12: Complex, s21: Complex, s22: Complex, z0: f64) -> Self {
        assert!(z0 > 0.0, "reference impedance must be positive");
        SParams {
            m: M2::new(s11, s12, s21, s22),
            z0,
        }
    }

    /// S11 (input reflection with matched output).
    pub fn s11(&self) -> Complex {
        self.m.m11
    }
    /// S12 (reverse transmission).
    pub fn s12(&self) -> Complex {
        self.m.m12
    }
    /// S21 (forward transmission).
    pub fn s21(&self) -> Complex {
        self.m.m21
    }
    /// S22 (output reflection with matched input).
    pub fn s22(&self) -> Complex {
        self.m.m22
    }

    /// Determinant Δ = S11·S22 − S12·S21, used by stability analysis.
    pub fn delta(&self) -> Complex {
        self.m.det()
    }

    /// Converts to Z parameters: `Z = z0 (I + S)(I − S)⁻¹`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NotInvertible`] when `I − S` is singular
    /// (e.g. an ideal open).
    pub fn to_z(&self) -> Result<ZParams, NetworkError> {
        let i = M2::identity();
        let num = i.add(&self.m);
        let den = i
            .sub(&self.m)
            .inverse()
            .ok_or(NetworkError::NotInvertible("I - S"))?;
        Ok(ZParams {
            m: num.mul(&den).scale(Complex::real(self.z0)),
        })
    }

    /// Converts to Y parameters: `Y = (1/z0)(I − S)(I + S)⁻¹`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NotInvertible`] when `I + S` is singular
    /// (e.g. an ideal short).
    pub fn to_y(&self) -> Result<YParams, NetworkError> {
        let i = M2::identity();
        let num = i.sub(&self.m);
        let den = i
            .add(&self.m)
            .inverse()
            .ok_or(NetworkError::NotInvertible("I + S"))?;
        Ok(YParams {
            m: num.mul(&den).scale(Complex::real(1.0 / self.z0)),
        })
    }

    /// Converts to chain parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `S21 == 0`
    /// (no forward path — the chain form does not exist).
    pub fn to_abcd(&self) -> Result<Abcd, NetworkError> {
        let s11 = self.s11();
        let s12 = self.s12();
        let s21 = self.s21();
        let s22 = self.s22();
        if rfkit_num::is_exact_zero(s21.abs()) {
            return Err(NetworkError::DegenerateParameter("S21"));
        }
        let z0 = Complex::real(self.z0);
        let two_s21 = Complex::real(2.0) * s21;
        let one = Complex::ONE;
        let a = ((one + s11) * (one - s22) + s12 * s21) / two_s21;
        let b = z0 * ((one + s11) * (one + s22) - s12 * s21) / two_s21;
        let c = ((one - s11) * (one - s22) - s12 * s21) / (two_s21 * z0);
        let d = ((one - s11) * (one + s22) + s12 * s21) / two_s21;
        Ok(Abcd {
            m: M2::new(a, b, c, d),
        })
    }

    /// `true` when the matrix is reciprocal (S12 == S21) within `tol`.
    pub fn is_reciprocal(&self, tol: f64) -> bool {
        (self.s12() - self.s21()).abs() <= tol
    }

    /// `true` when the network is passive at this frequency: the matrix
    /// `I − S†S` is positive semi-definite within `tol`.
    pub fn is_passive(&self, tol: f64) -> bool {
        let p = M2::identity().sub(&self.m.adjoint().mul(&self.m));
        // 2x2 Hermitian PSD test: nonneg diagonal and determinant.
        p.m11.re >= -tol && p.m22.re >= -tol && p.det().re >= -tol * tol
    }
}

impl YParams {
    /// Creates Y parameters from the four entries.
    pub fn new(y11: Complex, y12: Complex, y21: Complex, y22: Complex) -> Self {
        YParams {
            m: M2::new(y11, y12, y21, y22),
        }
    }

    /// Y11 entry.
    pub fn y11(&self) -> Complex {
        self.m.m11
    }
    /// Y12 entry.
    pub fn y12(&self) -> Complex {
        self.m.m12
    }
    /// Y21 entry.
    pub fn y21(&self) -> Complex {
        self.m.m21
    }
    /// Y22 entry.
    pub fn y22(&self) -> Complex {
        self.m.m22
    }

    /// Converts to S parameters referenced to `z0`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidReference`] for non-positive `z0` and
    /// [`NetworkError::NotInvertible`] when `I + z0·Y` is singular.
    pub fn to_s(&self, z0: f64) -> Result<SParams, NetworkError> {
        if z0 <= 0.0 {
            return Err(NetworkError::InvalidReference(z0));
        }
        let i = M2::identity();
        let yz = self.m.scale(Complex::real(z0));
        let num = i.sub(&yz);
        let den = i
            .add(&yz)
            .inverse()
            .ok_or(NetworkError::NotInvertible("I + z0 Y"))?;
        Ok(SParams {
            m: num.mul(&den),
            z0,
        })
    }

    /// Converts to Z parameters by matrix inversion.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NotInvertible`] for singular Y.
    pub fn to_z(&self) -> Result<ZParams, NetworkError> {
        Ok(ZParams {
            m: self.m.inverse().ok_or(NetworkError::NotInvertible("Y"))?,
        })
    }

    /// Converts to chain parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `Y21 == 0`.
    pub fn to_abcd(&self) -> Result<Abcd, NetworkError> {
        let y21 = self.y21();
        if rfkit_num::is_exact_zero(y21.abs()) {
            return Err(NetworkError::DegenerateParameter("Y21"));
        }
        let a = -self.y22() / y21;
        let b = -Complex::ONE / y21;
        let c = -self.m.det() / y21;
        let d = -self.y11() / y21;
        Ok(Abcd {
            m: M2::new(a, b, c, d),
        })
    }

    /// Parallel connection: port voltages shared, currents add, so Y adds.
    pub fn parallel(&self, other: &YParams) -> YParams {
        YParams {
            m: self.m.add(&other.m),
        }
    }
}

impl ZParams {
    /// Creates Z parameters from the four entries.
    pub fn new(z11: Complex, z12: Complex, z21: Complex, z22: Complex) -> Self {
        ZParams {
            m: M2::new(z11, z12, z21, z22),
        }
    }

    /// Z11 entry.
    pub fn z11(&self) -> Complex {
        self.m.m11
    }
    /// Z12 entry.
    pub fn z12(&self) -> Complex {
        self.m.m12
    }
    /// Z21 entry.
    pub fn z21(&self) -> Complex {
        self.m.m21
    }
    /// Z22 entry.
    pub fn z22(&self) -> Complex {
        self.m.m22
    }

    /// Converts to S parameters referenced to `z0`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidReference`] for non-positive `z0` and
    /// [`NetworkError::NotInvertible`] when `Z + z0·I` is singular.
    pub fn to_s(&self, z0: f64) -> Result<SParams, NetworkError> {
        if z0 <= 0.0 {
            return Err(NetworkError::InvalidReference(z0));
        }
        let zi = M2::identity().scale(Complex::real(z0));
        let num = self.m.sub(&zi);
        let den = self
            .m
            .add(&zi)
            .inverse()
            .ok_or(NetworkError::NotInvertible("Z + z0 I"))?;
        Ok(SParams {
            m: num.mul(&den),
            z0,
        })
    }

    /// Converts to Y parameters by matrix inversion.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NotInvertible`] for singular Z.
    pub fn to_y(&self) -> Result<YParams, NetworkError> {
        Ok(YParams {
            m: self.m.inverse().ok_or(NetworkError::NotInvertible("Z"))?,
        })
    }

    /// Converts to chain parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `Z21 == 0`.
    pub fn to_abcd(&self) -> Result<Abcd, NetworkError> {
        let z21 = self.z21();
        if rfkit_num::is_exact_zero(z21.abs()) {
            return Err(NetworkError::DegenerateParameter("Z21"));
        }
        let a = self.z11() / z21;
        let b = self.m.det() / z21;
        let c = Complex::ONE / z21;
        let d = self.z22() / z21;
        Ok(Abcd {
            m: M2::new(a, b, c, d),
        })
    }

    /// Series connection: port currents shared, voltages add, so Z adds.
    pub fn series(&self, other: &ZParams) -> ZParams {
        ZParams {
            m: self.m.add(&other.m),
        }
    }
}

impl Abcd {
    /// Creates chain parameters from `[[A, B], [C, D]]`.
    pub fn new(a: Complex, b: Complex, c: Complex, d: Complex) -> Self {
        Abcd {
            m: M2::new(a, b, c, d),
        }
    }

    /// The identity chain — an ideal through connection.
    pub fn through() -> Self {
        Abcd::default()
    }

    /// Chain of an ideal series impedance `z`.
    pub fn series_impedance(z: Complex) -> Self {
        Abcd::new(Complex::ONE, z, Complex::ZERO, Complex::ONE)
    }

    /// Chain of an ideal shunt admittance `y`.
    pub fn shunt_admittance(y: Complex) -> Self {
        Abcd::new(Complex::ONE, Complex::ZERO, y, Complex::ONE)
    }

    /// Chain of an ideal transformer with turns ratio `n` (port1:port2).
    pub fn transformer(n: f64) -> Self {
        Abcd::new(
            Complex::real(n),
            Complex::ZERO,
            Complex::ZERO,
            Complex::real(1.0 / n),
        )
    }

    /// Chain of a transmission line with propagation constant `gamma`
    /// (per meter), characteristic impedance `zc` and length `len` meters.
    pub fn transmission_line(gamma: Complex, zc: Complex, len: f64) -> Self {
        let gl = gamma.scale(len);
        let ch = gl.cosh();
        let sh = gl.sinh();
        Abcd::new(ch, zc * sh, sh / zc, ch)
    }

    /// A entry (dimensionless).
    pub fn a(&self) -> Complex {
        self.m.m11
    }
    /// B entry (ohms).
    pub fn b(&self) -> Complex {
        self.m.m12
    }
    /// C entry (siemens).
    pub fn c(&self) -> Complex {
        self.m.m21
    }
    /// D entry (dimensionless).
    pub fn d(&self) -> Complex {
        self.m.m22
    }

    /// Cascade: `self` followed by `next` (matrix product).
    pub fn cascade(&self, next: &Abcd) -> Abcd {
        Abcd {
            m: self.m.mul(&next.m),
        }
    }

    /// Converts to S parameters referenced to `z0`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidReference`] for non-positive `z0` and
    /// [`NetworkError::DegenerateParameter`] when the denominator
    /// `A + B/z0 + C·z0 + D` vanishes.
    pub fn to_s(&self, z0: f64) -> Result<SParams, NetworkError> {
        if z0 <= 0.0 {
            return Err(NetworkError::InvalidReference(z0));
        }
        let z0c = Complex::real(z0);
        let (a, b, c, d) = (self.a(), self.b(), self.c(), self.d());
        let den = a + b / z0c + c * z0c + d;
        if rfkit_num::is_exact_zero(den.abs()) {
            return Err(NetworkError::DegenerateParameter("A + B/z0 + C z0 + D"));
        }
        let s11 = (a + b / z0c - c * z0c - d) / den;
        let s12 = Complex::real(2.0) * self.m.det() / den;
        let s21 = Complex::real(2.0) / den;
        let s22 = (-a + b / z0c - c * z0c + d) / den;
        Ok(SParams {
            m: M2::new(s11, s12, s21, s22),
            z0,
        })
    }

    /// Converts to Z parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `C == 0`
    /// (e.g. an ideal series element has no Z form).
    pub fn to_z(&self) -> Result<ZParams, NetworkError> {
        let c = self.c();
        if rfkit_num::is_exact_zero(c.abs()) {
            return Err(NetworkError::DegenerateParameter("C"));
        }
        Ok(ZParams {
            m: M2::new(
                self.a() / c,
                self.m.det() / c,
                Complex::ONE / c,
                self.d() / c,
            ),
        })
    }

    /// Converts to Y parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DegenerateParameter`] when `B == 0`
    /// (e.g. an ideal shunt element has no Y form).
    pub fn to_y(&self) -> Result<YParams, NetworkError> {
        let b = self.b();
        if rfkit_num::is_exact_zero(b.abs()) {
            return Err(NetworkError::DegenerateParameter("B"));
        }
        Ok(YParams {
            m: M2::new(
                self.d() / b,
                -self.m.det() / b,
                -Complex::ONE / b,
                self.a() / b,
            ),
        })
    }

    /// Input impedance seen at port 1 with `z_load` terminating port 2.
    pub fn input_impedance(&self, z_load: Complex) -> Complex {
        (self.a() * z_load + self.b()) / (self.c() * z_load + self.d())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// A numerically friendly, non-reciprocal reference two-port
    /// (a rough FET-like S matrix at 50 Ω).
    fn fet_like() -> SParams {
        SParams::new(
            Complex::from_polar(0.8, -1.0),
            Complex::from_polar(0.05, 0.7),
            Complex::from_polar(4.0, 2.2),
            Complex::from_polar(0.5, -0.6),
            50.0,
        )
    }

    fn assert_m2_close(a: &M2, b: &M2, tol: f64) {
        assert!((a.m11 - b.m11).abs() < tol, "m11 {} vs {}", a.m11, b.m11);
        assert!((a.m12 - b.m12).abs() < tol, "m12 {} vs {}", a.m12, b.m12);
        assert!((a.m21 - b.m21).abs() < tol, "m21 {} vs {}", a.m21, b.m21);
        assert!((a.m22 - b.m22).abs() < tol, "m22 {} vs {}", a.m22, b.m22);
    }

    #[test]
    fn s_to_z_roundtrip() {
        let s = fet_like();
        let back = s.to_z().unwrap().to_s(50.0).unwrap();
        assert_m2_close(&s.m, &back.m, 1e-12);
    }

    #[test]
    fn s_to_y_roundtrip() {
        let s = fet_like();
        let back = s.to_y().unwrap().to_s(50.0).unwrap();
        assert_m2_close(&s.m, &back.m, 1e-12);
    }

    #[test]
    fn s_to_abcd_roundtrip() {
        let s = fet_like();
        let back = s.to_abcd().unwrap().to_s(50.0).unwrap();
        assert_m2_close(&s.m, &back.m, 1e-12);
    }

    #[test]
    fn z_y_are_inverses() {
        let s = fet_like();
        let z = s.to_z().unwrap();
        let y = s.to_y().unwrap();
        let prod = z.m.mul(&y.m);
        assert_m2_close(&prod, &M2::identity(), 1e-12);
    }

    #[test]
    fn abcd_through_is_neutral() {
        let s = fet_like();
        let a = s.to_abcd().unwrap();
        let chained = Abcd::through().cascade(&a).cascade(&Abcd::through());
        assert_m2_close(&chained.m, &a.m, 1e-13);
    }

    #[test]
    fn series_impedance_s_params() {
        // A 50 Ω series resistor between 50 Ω ports:
        // S11 = Z/(Z+2Z0) = 1/3, S21 = 2Z0/(Z+2Z0) = 2/3.
        let a = Abcd::series_impedance(cx(50.0, 0.0));
        let s = a.to_s(50.0).unwrap();
        assert!((s.s11() - Complex::real(1.0 / 3.0)).abs() < 1e-12);
        assert!((s.s21() - Complex::real(2.0 / 3.0)).abs() < 1e-12);
        assert!(s.is_reciprocal(1e-12));
        assert!(s.is_passive(1e-9));
    }

    #[test]
    fn shunt_admittance_s_params() {
        // A 50 Ω shunt resistor: y·z0 = 1 → S11 = -1/3, S21 = 2/3.
        let a = Abcd::shunt_admittance(cx(1.0 / 50.0, 0.0));
        let s = a.to_s(50.0).unwrap();
        assert!((s.s11() + Complex::real(1.0 / 3.0)).abs() < 1e-12);
        assert!((s.s21() - Complex::real(2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn cascade_matches_known_attenuator() {
        // Two identical 3-resistor pi attenuators cascade to double the dB loss.
        // Build a 6.02 dB (voltage factor N = 2) matched pi pad:
        // shunt R = Z0(N+1)/(N-1) = 150 Ω, series R = Z0(N²-1)/(2N) = 37.5 Ω.
        let r_shunt = Abcd::shunt_admittance(cx(1.0 / 150.0, 0.0));
        let r_series = Abcd::series_impedance(cx(37.5, 0.0));
        let pad = r_shunt.cascade(&r_series).cascade(&r_shunt);
        let s = pad.to_s(50.0).unwrap();
        assert!(s.s11().abs() < 1e-9, "pad must be matched");
        assert!(
            (s.s21().abs() - 0.5).abs() < 1e-9,
            "pad must have |S21| = 1/2"
        );
        let two = pad.cascade(&pad).to_s(50.0).unwrap();
        assert!((two.s21().abs() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn quarter_wave_line_inverts_impedance() {
        // Lossless λ/4 line: Zin = Zc²/ZL.
        let beta = cx(0.0, std::f64::consts::PI / 2.0); // γ·len = jπ/2 with len=1
        let line = Abcd::transmission_line(beta, cx(70.7, 0.0), 1.0);
        let zin = line.input_impedance(cx(100.0, 0.0));
        assert!((zin.re - 70.7 * 70.7 / 100.0).abs() < 1e-6);
        assert!(zin.im.abs() < 1e-6);
    }

    #[test]
    fn matched_line_is_reflectionless() {
        let gamma = cx(0.1, 2.0);
        let line = Abcd::transmission_line(gamma, cx(50.0, 0.0), 0.3);
        let s = line.to_s(50.0).unwrap();
        assert!(s.s11().abs() < 1e-12);
        assert!(s.s22().abs() < 1e-12);
        // |S21| = exp(-α·len)
        assert!((s.s21().abs() - (-0.03f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn transformer_scales_impedance() {
        let t = Abcd::transformer(2.0);
        let zin = t.input_impedance(cx(50.0, 0.0));
        assert!((zin.re - 200.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_series_composition() {
        let y1 = YParams::new(cx(0.02, 0.0), cx(-0.01, 0.0), cx(-0.01, 0.0), cx(0.02, 0.0));
        let y2 = y1;
        let par = y1.parallel(&y2);
        assert_eq!(par.y11(), cx(0.04, 0.0));
        let z1 = ZParams::new(cx(10.0, 0.0), cx(5.0, 0.0), cx(5.0, 0.0), cx(10.0, 0.0));
        let ser = z1.series(&z1);
        assert_eq!(ser.z21(), cx(10.0, 0.0));
    }

    #[test]
    fn degenerate_conversions_error() {
        // Isolation network: S21 = 0 has no ABCD form.
        let s = SParams::new(
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            50.0,
        );
        assert!(matches!(
            s.to_abcd(),
            Err(NetworkError::DegenerateParameter("S21"))
        ));
        // Ideal series element: C = 0 has no Z form.
        let a = Abcd::series_impedance(cx(10.0, 0.0));
        assert!(matches!(
            a.to_z(),
            Err(NetworkError::DegenerateParameter("C"))
        ));
        // Ideal shunt element: B = 0 has no Y form.
        let a = Abcd::shunt_admittance(cx(0.1, 0.0));
        assert!(matches!(
            a.to_y(),
            Err(NetworkError::DegenerateParameter("B"))
        ));
    }

    #[test]
    fn invalid_reference_impedance() {
        let y = YParams::new(cx(0.02, 0.0), Complex::ZERO, Complex::ZERO, cx(0.02, 0.0));
        assert!(matches!(
            y.to_s(-1.0),
            Err(NetworkError::InvalidReference(_))
        ));
    }

    #[test]
    fn passivity_detects_active_network() {
        let s = fet_like(); // |S21| = 4 → active
        assert!(!s.is_passive(1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sparams_new_rejects_bad_z0() {
        SParams::new(
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            Complex::ZERO,
            0.0,
        );
    }
}
