//! Noise parameters of a two-port and the classic noise-figure formulas.
//!
//! A noisy linear two-port is fully described for noise purposes by the
//! quartet (`Fmin`, `Rn`, `Γopt`) — minimum noise factor, equivalent noise
//! resistance and optimum source reflection coefficient. The amplifier
//! design flow trades `F(Γs)` against transducer gain; this module supplies
//! both directions of the parameter algebra plus the Friis cascade formula.

use crate::gains::{impedance_from_reflection, reflection_coefficient};
use rfkit_num::units::{nf_db_from_factor, T0_KELVIN};
use rfkit_num::Complex;

/// Noise parameters of a linear two-port at one frequency.
///
/// All quantities are linear (`fmin` is a noise *factor*, not dB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Minimum noise factor (≥ 1).
    pub fmin: f64,
    /// Equivalent noise resistance in ohms.
    pub rn: f64,
    /// Optimum source reflection coefficient (referenced to `z0`).
    pub gamma_opt: Complex,
    /// Reference impedance for `gamma_opt`, ohms.
    pub z0: f64,
}

impl NoiseParams {
    /// Creates noise parameters.
    ///
    /// # Panics
    ///
    /// Panics if `fmin < 1`, `rn < 0` or `z0 <= 0` — physically meaningless
    /// inputs that would silently corrupt downstream optimization.
    pub fn new(fmin: f64, rn: f64, gamma_opt: Complex, z0: f64) -> Self {
        assert!(fmin >= 1.0, "noise factor must be >= 1, got {fmin}");
        assert!(rn >= 0.0, "noise resistance must be >= 0, got {rn}");
        assert!(z0 > 0.0, "reference impedance must be positive");
        NoiseParams {
            fmin,
            rn,
            gamma_opt,
            z0,
        }
    }

    /// The ideal noiseless two-port: `F = 1` for every source.
    pub fn noiseless(z0: f64) -> Self {
        NoiseParams::new(1.0, 0.0, Complex::ZERO, z0)
    }

    /// Optimum source admittance `Yopt` corresponding to `gamma_opt`.
    pub fn y_opt(&self) -> Complex {
        let z = impedance_from_reflection(self.gamma_opt, self.z0);
        z.recip()
    }

    /// Noise factor for a source admittance `ys` (siemens):
    /// `F = Fmin + (Rn/Gs)·|Ys − Yopt|²`.
    ///
    /// Returns infinity for a reactive source (`Gs <= 0`), which cannot
    /// deliver noise power to compare against.
    pub fn noise_factor_ys(&self, ys: Complex) -> f64 {
        let gs = ys.re;
        if gs <= 0.0 {
            return f64::INFINITY;
        }
        self.fmin + self.rn / gs * (ys - self.y_opt()).norm_sqr()
    }

    /// Noise factor for a source reflection coefficient `Γs`:
    /// `F = Fmin + 4·rn·|Γs − Γopt|² / ((1 − |Γs|²)·|1 + Γopt|²)`
    /// with `rn = Rn/z0`.
    pub fn noise_factor(&self, gamma_s: Complex) -> f64 {
        let den = (1.0 - gamma_s.norm_sqr()) * (Complex::ONE + self.gamma_opt).norm_sqr();
        if den <= 0.0 {
            return f64::INFINITY;
        }
        self.fmin + 4.0 * (self.rn / self.z0) * (gamma_s - self.gamma_opt).norm_sqr() / den
    }

    /// Noise factor with a source impedance `zs` (ohms).
    pub fn noise_factor_zs(&self, zs: Complex) -> f64 {
        self.noise_factor(reflection_coefficient(zs, self.z0))
    }

    /// Minimum noise figure in dB.
    pub fn nf_min_db(&self) -> f64 {
        nf_db_from_factor(self.fmin)
    }

    /// Noise figure in dB for a source reflection coefficient.
    pub fn nf_db(&self, gamma_s: Complex) -> f64 {
        nf_db_from_factor(self.noise_factor(gamma_s))
    }

    /// Equivalent noise temperature (K) at the optimum source.
    pub fn t_min_kelvin(&self) -> f64 {
        (self.fmin - 1.0) * T0_KELVIN
    }
}

/// One stage of a noise cascade: available gain and noise factor, both
/// linear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeStage {
    /// Available power gain (linear).
    pub gain: f64,
    /// Noise factor (linear).
    pub noise_factor: f64,
}

/// Friis formula: total noise factor of a cascade,
/// `F = F1 + (F2 − 1)/G1 + (F3 − 1)/(G1·G2) + …`.
///
/// Returns 1.0 (noiseless) for an empty cascade.
///
/// # Examples
///
/// ```
/// use rfkit_net::noise::{friis, CascadeStage};
/// // A 0.5 dB NF LNA with 15 dB gain in front of a 10 dB NF receiver
/// // keeps the system NF near the LNA's.
/// let lna = CascadeStage { gain: 31.62, noise_factor: 1.122 };
/// let rx = CascadeStage { gain: 1.0, noise_factor: 10.0 };
/// let f = friis(&[lna, rx]);
/// assert!(f < 1.5);
/// ```
pub fn friis(stages: &[CascadeStage]) -> f64 {
    let mut f_total = 1.0;
    let mut gain_product = 1.0;
    for stage in stages {
        f_total += (stage.noise_factor - 1.0) / gain_product;
        gain_product *= stage.gain;
    }
    f_total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_lna_noise() -> NoiseParams {
        // ATF-54143-class values at 1.5 GHz: NFmin ≈ 0.45 dB, Rn ≈ 7 Ω,
        // Γopt ≈ 0.35 ∠ 40°.
        NoiseParams::new(
            1.109,
            7.0,
            Complex::from_polar(0.35, 40f64.to_radians()),
            50.0,
        )
    }

    #[test]
    fn minimum_is_attained_at_gamma_opt() {
        let np = typical_lna_noise();
        let f_opt = np.noise_factor(np.gamma_opt);
        assert!((f_opt - np.fmin).abs() < 1e-12);
        // Any other source is worse.
        for k in 0..12 {
            let g = Complex::from_polar(0.5, k as f64 * 0.5);
            assert!(np.noise_factor(g) >= np.fmin - 1e-12);
        }
    }

    #[test]
    fn ys_and_gamma_formulas_agree() {
        let np = typical_lna_noise();
        for k in 0..8 {
            let gs = Complex::from_polar(0.3, k as f64 * 0.8);
            let zs = impedance_from_reflection(gs, 50.0);
            let f1 = np.noise_factor(gs);
            let f2 = np.noise_factor_ys(zs.recip());
            assert!(
                (f1 - f2).abs() < 1e-9 * f1,
                "Γ formula {f1} vs Y formula {f2}"
            );
        }
    }

    #[test]
    fn zs_wrapper_matches_gamma() {
        let np = typical_lna_noise();
        let zs = Complex::new(30.0, 20.0);
        let f1 = np.noise_factor_zs(zs);
        let f2 = np.noise_factor(reflection_coefficient(zs, 50.0));
        assert_eq!(f1, f2);
    }

    #[test]
    fn noiseless_two_port_has_unit_factor() {
        let np = NoiseParams::noiseless(50.0);
        assert_eq!(np.noise_factor(Complex::ZERO), 1.0);
        assert_eq!(np.noise_factor(Complex::from_polar(0.6, 1.0)), 1.0);
        assert_eq!(np.nf_min_db(), 0.0);
        assert_eq!(np.t_min_kelvin(), 0.0);
    }

    #[test]
    fn reactive_source_is_infinite() {
        let np = typical_lna_noise();
        // |Γs| = 1 → purely reactive source
        assert!(np.noise_factor(Complex::ONE).is_infinite());
        assert!(np.noise_factor_ys(Complex::imag(0.01)).is_infinite());
    }

    #[test]
    fn nf_db_conversion() {
        let np = NoiseParams::new(2.0, 5.0, Complex::ZERO, 50.0);
        assert!((np.nf_min_db() - 3.0103).abs() < 1e-3);
        assert!((np.t_min_kelvin() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn friis_single_stage_is_its_factor() {
        let f = friis(&[CascadeStage {
            gain: 10.0,
            noise_factor: 1.5,
        }]);
        assert_eq!(f, 1.5);
        assert_eq!(friis(&[]), 1.0);
    }

    #[test]
    fn friis_high_front_gain_suppresses_second_stage() {
        let front = CascadeStage {
            gain: 100.0,
            noise_factor: 1.2,
        };
        let back = CascadeStage {
            gain: 10.0,
            noise_factor: 15.0,
        };
        let f = friis(&[front, back]);
        assert!((f - (1.2 + 14.0 / 100.0)).abs() < 1e-12);
        // Reversing the order is catastrophically worse.
        let f_rev = friis(&[back, front]);
        assert!(f_rev > 10.0 * f);
    }

    #[test]
    fn friis_attenuator_first_adds_its_loss() {
        // 3 dB pad (G = 0.5, F = 2) before an F = 2 amp: F_total = 2 + 1/0.5 = 4 (6 dB).
        let pad = CascadeStage {
            gain: 0.5,
            noise_factor: 2.0,
        };
        let amp = CascadeStage {
            gain: 100.0,
            noise_factor: 2.0,
        };
        let f = friis(&[pad, amp]);
        assert!((f - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise factor")]
    fn rejects_sub_unity_fmin() {
        NoiseParams::new(0.9, 5.0, Complex::ZERO, 50.0);
    }
}
