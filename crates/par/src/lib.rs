//! # rfkit-par
//!
//! Dependency-free parallel evaluation engine for the rfkit workspace.
//!
//! The crate provides an ordered parallel map over slices and index ranges,
//! built entirely on `std`: a lazily-started persistent worker pool,
//! chunked work distribution through a single atomic index, and panic
//! propagation back to the caller. It exists because every hot loop in the
//! reproduction — optimizer population evaluation, Monte-Carlo yield runs,
//! band-objective frequency sweeps, extraction residuals — is
//! embarrassingly parallel across items, and the offline build environment
//! rules out rayon.
//!
//! ## Determinism contract
//!
//! `par_map` and friends return results in **input order**, and the worker
//! pool never touches an RNG. Callers keep every random draw in their
//! serial control loop and hand the engine pure `Fn + Sync` evaluations,
//! so a fixed seed yields bit-identical output at any thread count. The
//! optimizers in `rfkit-opt` are structured this way and covered by a
//! `RFKIT_THREADS=1` vs `RFKIT_THREADS=4` determinism test.
//!
//! ## Thread count
//!
//! The effective thread count is, in priority order: `ParConfig::threads`
//! if non-zero, else the `RFKIT_THREADS` environment variable, else
//! [`std::thread::available_parallelism`]. Batches at or below
//! `ParConfig::serial_threshold` run serially on the caller — dispatching
//! a handful of microsecond-scale evaluations costs more than it saves.
//! Nested calls (a `par_map` inside a worker) also run serially, which
//! makes composition deadlock-free by construction.
//!
//! ## Example
//!
//! ```
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let squares = rfkit_par::par_map(&xs, |x| x * x);
//! assert_eq!(squares[17], 17.0 * 17.0);
//! ```

#![warn(missing_docs)]

// UNSAFE AUDIT: rfkit-par is the only workspace crate allowed to contain
// `unsafe` (enforced by the `unsafe-outside-par` lint in rfkit-analyze;
// every other library crate carries `#![forbid(unsafe_code)]`). The crate
// uses unsafe for exactly three things, each with a SAFETY comment at the
// site, which the analyzer also checks for:
//   1. writing each result slot exactly once from whichever worker claims
//      its index (`Slot<R>`: disjoint writes, no reads until the latch
//      drains, then a layout-compatible Vec reinterpretation);
//   2. erasing the lifetime of the caller's borrowed closure so it can
//      cross into the pool queue (the caller blocks on a latch until every
//      helper is done with it);
//   3. the `Send`/`Sync` impls that state those two invariants to the
//      compiler.
// Audit checklist: any new unsafe block must (a) keep all writes disjoint,
// (b) never extend a borrow beyond the latch it is guarded by, and
// (c) carry a SAFETY comment within the five lines above it.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};
use std::thread;

/// Hard ceiling on pool size; `RFKIT_THREADS` is clamped to this.
const MAX_THREADS: usize = 64;

// Pool telemetry (rfkit-obs, runtime-gated, write-only: never read back
// by the engine, so it cannot perturb scheduling or results).
static OBS_TASKS: rfkit_obs::Counter = rfkit_obs::Counter::new("par.tasks");
static OBS_BATCHES: rfkit_obs::Counter = rfkit_obs::Counter::new("par.batches");
static OBS_SERIAL_FALLBACK: rfkit_obs::Counter = rfkit_obs::Counter::new("par.serial_fallback");
static OBS_ITEMS_PER_PARTICIPANT: rfkit_obs::Hist =
    rfkit_obs::Hist::new("par.items_per_participant");
static OBS_QUEUE_WAIT_US: rfkit_obs::Hist = rfkit_obs::Hist::new("par.queue_wait_us");

/// Tuning knobs for a parallel map call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Number of participating threads including the caller.
    /// `0` means auto: `RFKIT_THREADS` if set, else `available_parallelism()`.
    pub threads: usize,
    /// Batches of at most this many items run serially on the caller.
    pub serial_threshold: usize,
    /// Items claimed per atomic fetch. `0` means auto:
    /// `max(1, n / (threads * 4))`, which balances steal granularity
    /// against contention on the shared index.
    pub chunk: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: 0,
            serial_threshold: 16,
            chunk: 0,
        }
    }
}

impl ParConfig {
    /// Config that always runs serially, regardless of environment.
    pub fn serial() -> Self {
        ParConfig {
            threads: 1,
            ..ParConfig::default()
        }
    }

    /// Config pinned to exactly `threads` participants with no serial
    /// fallback threshold (used by benches and determinism tests).
    pub fn exact(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
            serial_threshold: 0,
            chunk: 0,
        }
    }
}

/// Effective auto thread count: `RFKIT_THREADS` if set to a positive
/// integer, else `available_parallelism()`, clamped to [`MAX_THREADS`].
///
/// Read dynamically on every call so tests and callers can vary
/// `RFKIT_THREADS` at runtime.
pub fn num_threads() -> usize {
    let n = match std::env::var("RFKIT_THREADS") {
        Ok(s) => s.trim().parse::<usize>().ok().filter(|&v| v >= 1),
        Err(_) => None,
    };
    n.unwrap_or_else(|| thread::available_parallelism().map_or(1, |p| p.get()))
        .min(MAX_THREADS)
}

/// True while the current thread is executing inside a parallel region;
/// nested parallel maps detect this and run serially.
pub fn in_parallel_region() -> bool {
    IN_PAR.with(|flag| flag.get())
}

/// Ordered parallel map over a slice with auto configuration.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_cfg(&ParConfig::default(), items, f)
}

/// Ordered parallel map over a slice where the closure also receives the
/// item index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_cfg(&ParConfig::default(), items, f)
}

/// [`par_map`] with explicit configuration.
pub fn par_map_cfg<T, R, F>(cfg: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_collect(items.len(), cfg, |i| f(&items[i]))
}

/// [`par_map_indexed`] with explicit configuration.
pub fn par_map_indexed_cfg<T, R, F>(cfg: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_collect(items.len(), cfg, |i| f(i, &items[i]))
}

/// Core primitive: evaluate `f(0), f(1), …, f(n-1)` across the pool and
/// collect the results in index order.
///
/// This is the right entry point when there is no input slice — e.g. a
/// Monte-Carlo loop over unit indices or a multistart loop over seeds.
///
/// # Panics
///
/// If `f` panics on any index, the first panic payload is re-thrown on
/// the caller after all in-flight work has drained. Results computed
/// before the panic are leaked, not dropped.
pub fn par_collect<R, F>(n: usize, cfg: &ParConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = if cfg.threads == 0 {
        num_threads()
    } else {
        cfg.threads.min(MAX_THREADS)
    };
    if n <= cfg.serial_threshold || threads <= 1 || in_parallel_region() {
        if rfkit_obs::enabled() {
            OBS_SERIAL_FALLBACK.add(1);
            OBS_TASKS.add(n as u64);
        }
        return (0..n).map(f).collect();
    }

    let chunk = if cfg.chunk == 0 {
        (n / (threads * 4)).max(1)
    } else {
        cfg.chunk
    };

    // No point dispatching more helpers than there are chunks beyond the
    // caller's own share.
    let total_chunks = n.div_ceil(chunk);
    let wanted_helpers = (threads - 1).min(total_chunks.saturating_sub(1));
    let helpers = Pool::global().ensure_workers(wanted_helpers);
    if helpers == 0 {
        if rfkit_obs::enabled() {
            OBS_SERIAL_FALLBACK.add(1);
            OBS_TASKS.add(n as u64);
        }
        return (0..n).map(f).collect();
    }

    // Telemetry is gated once per batch; queue wait is measured from just
    // before submit to each participant's first successful claim.
    let armed = rfkit_obs::enabled();
    if armed {
        OBS_BATCHES.add(1);
        OBS_TASKS.add(n as u64);
    }
    let submit_us = if armed { rfkit_obs::now_us() } else { 0 };

    let results: Vec<Slot<R>> = (0..n).map(|_| Slot::new()).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let latch = Latch::new(helpers);

    let work = || {
        let _region = RegionGuard::enter();
        // Call-path anchor for aggregate profiles: spans opened by the
        // evaluated closure nest under `par.task` on every participant.
        // Pool workers have no caller stack of their own, so without
        // this anchor their spans would sit at the profile root,
        // indistinguishable from top-level phases.
        let _task = rfkit_obs::span("par.task");
        let mut my_items = 0u64;
        let mut first_claim = true;
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            if armed && first_claim {
                first_claim = false;
                OBS_QUEUE_WAIT_US.record(rfkit_obs::now_us().saturating_sub(submit_us));
            }
            #[allow(clippy::needless_range_loop)] // i is the work-item id, not just an index
            for i in start..(start + chunk).min(n) {
                my_items += 1;
                let value = f(i);
                // SAFETY: the chunked atomic index hands each i to exactly
                // one participant, so this is the only write to slot i, and
                // the caller does not read slots until the latch drains.
                unsafe { (*results[i].0.get()).write(value) };
            }
        }));
        if armed && my_items > 0 {
            OBS_ITEMS_PER_PARTICIPANT.record(my_items);
        }
        if let Err(payload) = outcome {
            abort.store(true, Ordering::Relaxed);
            latch.record_panic(payload);
        }
    };

    {
        // The guard's Drop waits for every helper to finish before `work`,
        // `results`, `next`, `abort` or `latch` can leave scope — even if
        // something on the caller path unwinds first.
        let _wait = WaitGuard(&latch);
        let task: &(dyn Fn() + Sync) = &work;
        // SAFETY: the lifetime is erased so the borrow can cross into the
        // pool's queue; the pointer is only dereferenced by helpers that
        // count down `latch` afterwards, and `_wait` blocks this scope's
        // exit until the count reaches zero, so the referent outlives all
        // uses.
        let task: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(task) };
        let job = Job {
            task: task as *const (dyn Fn() + Sync),
            latch: &latch as *const Latch,
        };
        Pool::global().submit(job, helpers);
        work();
    }

    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }

    // SAFETY: every index was claimed exactly once and no panic occurred,
    // so all n slots are initialized. `Slot<R>` is `repr(transparent)`
    // over `UnsafeCell<MaybeUninit<R>>`, which has the layout of `R`.
    let mut raw = ManuallyDrop::new(results);
    unsafe { Vec::from_raw_parts(raw.as_mut_ptr() as *mut R, raw.len(), raw.capacity()) }
}

thread_local! {
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is inside a parallel region".
struct RegionGuard {
    was: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let was = IN_PAR.with(|flag| flag.replace(true));
        RegionGuard { was }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_PAR.with(|flag| flag.set(was));
    }
}

/// One result slot, written exactly once by whichever participant claims
/// its index.
#[repr(transparent)]
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

impl<R> Slot<R> {
    fn new() -> Self {
        Slot(UnsafeCell::new(MaybeUninit::uninit()))
    }
}

// SAFETY: concurrent access is disjoint by construction (one writer per
// index, no readers until the latch drains); R crosses threads, hence
// the R: Send bound.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Countdown latch with a slot for the first panic payload.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn count_down(&self) {
        let mut rem = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// Blocks on drop until the latch drains; keeps borrowed job state alive
/// for as long as any helper might touch it.
struct WaitGuard<'a>(&'a Latch);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// A unit of work queued to the pool: a type-erased borrow of the
/// caller's closure plus the latch it must count down.
struct Job {
    task: *const (dyn Fn() + Sync),
    latch: *const Latch,
}

// SAFETY: both pointers target stack data of a caller that is blocked (via
// WaitGuard) until the latch — which this job counts down after its last
// use of `task` — reaches zero. The referents are Sync.
unsafe impl Send for Job {}

/// The process-wide persistent worker pool.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            spawned: Mutex::new(0),
        })
    }

    /// Grows the pool to at least `target` workers (capped); returns the
    /// number of workers actually available.
    fn ensure_workers(&'static self, target: usize) -> usize {
        let mut count = self.spawned.lock().unwrap_or_else(PoisonError::into_inner);
        while *count < target.min(MAX_THREADS - 1) {
            let spawned = thread::Builder::new()
                .name(format!("rfkit-par-{}", *count))
                .spawn(move || self.worker_main());
            if spawned.is_err() {
                break;
            }
            *count += 1;
        }
        (*count).min(target)
    }

    fn submit(&self, job: Job, copies: usize) {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        for _ in 0..copies {
            queue.push_back(job.clone());
        }
        drop(queue);
        self.available.notify_all();
    }

    fn worker_main(&self) {
        IN_PAR.with(|flag| flag.set(true));
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self
                        .available
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // SAFETY: the submitting caller is latched until count_down,
            // so both referents are alive for the duration of this block.
            unsafe {
                let task = &*job.task;
                // Backstop only: tasks built by par_collect already catch
                // their own unwinds.
                let _ = catch_unwind(AssertUnwindSafe(task));
                (*job.latch).count_down();
            }
        }
    }
}

impl Clone for Job {
    fn clone(&self) -> Self {
        Job {
            task: self.task,
            latch: self.latch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> ParConfig {
        ParConfig::exact(4)
    }

    #[test]
    fn matches_serial_on_adversarial_sizes() {
        // 0, 1, below the default threshold, at it, and far above the
        // thread count.
        for n in [0usize, 1, 15, 16, 17, 64, 1000, 4097] {
            let items: Vec<u64> = (0..n as u64).collect();
            let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
            let parallel = par_map_cfg(&cfg4(), &items, |x| x * x + 1);
            assert_eq!(parallel, serial, "n = {n}");
        }
    }

    #[test]
    fn preserves_input_ordering() {
        let items: Vec<usize> = (0..5000).collect();
        let out = par_map_indexed_cfg(&cfg4(), &items, |i, &x| {
            assert_eq!(i, x);
            i * 3
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn par_collect_without_input_slice() {
        let out = par_collect(257, &cfg4(), |i| i as f64 * 0.5);
        assert_eq!(out.len(), 257);
        assert_eq!(out[200], 100.0);
    }

    #[test]
    fn serial_threshold_short_circuits() {
        // Threshold larger than n: must run on the caller thread.
        let caller = thread::current().id();
        let cfg = ParConfig {
            threads: 4,
            serial_threshold: 100,
            chunk: 0,
        };
        let out = par_collect(50, &cfg, |i| {
            assert_eq!(thread::current().id(), caller);
            i
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let outer: Vec<usize> = (0..64).collect();
        let out = par_map_cfg(&cfg4(), &outer, |&i| {
            let inner: Vec<usize> = (0..32).collect();
            par_map_cfg(&cfg4(), &inner, |&j| i * 100 + j)
                .iter()
                .sum::<usize>()
        });
        for (i, v) in out.iter().enumerate() {
            let expected: usize = (0..32).map(|j| i * 100 + j).sum();
            assert_eq!(*v, expected);
        }
    }

    #[test]
    fn propagates_worker_panics() {
        let items: Vec<usize> = (0..512).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_cfg(&cfg4(), &items, |&x| {
                if x == 300 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 300"), "payload: {msg}");
        // The pool must still be usable afterwards.
        let ok = par_map_cfg(&cfg4(), &items, |&x| x + 1);
        assert_eq!(ok[0], 1);
        assert_eq!(ok[511], 512);
    }

    #[test]
    fn pool_survives_many_batches() {
        for round in 0..200 {
            let items: Vec<usize> = (0..97).collect();
            let out = par_map_cfg(&cfg4(), &items, |&x| x + round);
            assert_eq!(out[96], 96 + round);
        }
    }

    #[test]
    fn explicit_chunk_sizes_are_honored() {
        for chunk in [1usize, 2, 7, 64, 10_000] {
            let cfg = ParConfig {
                threads: 4,
                serial_threshold: 0,
                chunk,
            };
            let out = par_collect(333, &cfg, |i| i * 2);
            assert_eq!(out, (0..333).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn num_threads_reads_environment_dynamically() {
        // This is the only test that touches the env var, so there is no
        // cross-test race despite the parallel test harness.
        std::env::set_var("RFKIT_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("RFKIT_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("RFKIT_THREADS");
        assert!(num_threads() >= 1);
    }

    #[test]
    fn non_copy_results_are_moved_intact() {
        let items: Vec<usize> = (0..300).collect();
        let out = par_map_cfg(&cfg4(), &items, |&x| vec![x; 3]);
        assert_eq!(out[299], vec![299, 299, 299]);
        assert_eq!(out.len(), 300);
    }
}
