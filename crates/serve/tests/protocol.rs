//! Protocol robustness blitz: every malformed input — truncated frames,
//! oversized length prefixes, malformed JSON, unknown request types,
//! mid-frame disconnects — must produce a structured error response or a
//! clean close, never a panic, and must never take the server down for
//! the *next* client.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use rfkit_serve::{client, Client, ServeConfig, Server};

fn small_server() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 8,
        // Tiny ceiling so the oversize test is cheap and obviously
        // allocation-free: a 64 KiB limit vs a 2 GiB prefix.
        max_frame_bytes: 64 * 1024,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// After any abuse, the server must still answer a fresh client.
fn assert_still_serving(server: &Server) {
    let mut c = Client::connect(server.local_addr()).expect("fresh connection");
    let r = c.call(&client::ping_json(1)).expect("ping round-trips");
    assert!(r.is_ok(), "ping after abuse: {}", r.raw);
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let server = small_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // A ~2 GiB promise against a 64 KiB ceiling. If the server
    // allocated first, this test would OOM the harness.
    raw.write_all(&0x7fff_ffffu32.to_be_bytes()).unwrap();
    raw.write_all(b"garbage that never amounts to the promise")
        .unwrap();
    let mut reader = raw.try_clone().unwrap();
    let payload = rfkit_serve::read_frame(&mut reader, 1 << 20).expect("error response arrives");
    let resp = rfkit_serve::Response::parse(&payload).unwrap();
    assert_eq!(resp.status, "error");
    assert!(
        resp.error.unwrap().contains("exceeds the maximum"),
        "max-frame error expected"
    );
    // The connection is closed afterwards (cannot resync past unread
    // payload): the next read is EOF — or a reset, since the server
    // closes with our unread garbage still in its receive buffer, which
    // TCP answers with RST rather than FIN.
    assert!(matches!(
        rfkit_serve::read_frame(&mut reader, 1 << 20),
        Err(rfkit_serve::FrameError::Closed | rfkit_serve::FrameError::Io(_))
    ));
    assert_still_serving(&server);
    let stats = server.shutdown();
    assert!(stats.protocol_errors >= 1);
}

#[test]
fn truncated_frame_and_mid_frame_disconnect_close_cleanly() {
    let server = small_server();
    // Disconnect after half a length prefix.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&[0u8, 0]).unwrap();
    }
    // Disconnect mid-payload: promise 100 bytes, send 10, vanish.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"0123456789").unwrap();
    }
    // A clean close at a frame boundary is not a protocol error.
    {
        let _raw = TcpStream::connect(server.local_addr()).unwrap();
    }
    assert_still_serving(&server);
    let stats = server.shutdown();
    assert_eq!(
        stats.workers_spawned, stats.workers_exited,
        "no leaked workers after abuse"
    );
}

#[test]
fn malformed_json_gets_structured_error_and_connection_survives() {
    let server = small_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.call("this is { not json").unwrap();
    assert_eq!(r.status, "error");
    assert!(r.error.unwrap().contains("malformed JSON"));
    // Framing is intact — the same connection keeps working.
    let r = c.call(&client::ping_json(2)).unwrap();
    assert!(r.is_ok());
    // Non-UTF-8 payload: structured error, connection still fine.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&4u32.to_be_bytes()).unwrap();
        raw.write_all(&[0xff, 0xfe, 0x80, 0x81]).unwrap();
        let mut reader = raw.try_clone().unwrap();
        let payload = rfkit_serve::read_frame(&mut reader, 1 << 20).unwrap();
        assert_eq!(
            rfkit_serve::Response::parse(&payload).unwrap().status,
            "error"
        );
        raw.write_all(&{
            let ping = client::ping_json(3);
            let mut buf = Vec::from((ping.len() as u32).to_be_bytes());
            buf.extend_from_slice(ping.as_bytes());
            buf
        })
        .unwrap();
        let payload = rfkit_serve::read_frame(&mut reader, 1 << 20).unwrap();
        assert!(rfkit_serve::Response::parse(&payload).unwrap().is_ok());
    }
    server.shutdown();
}

#[test]
fn unknown_request_type_echoes_id_in_structured_error() {
    let server = small_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.call(r#"{"id":41,"type":"frobnicate"}"#).unwrap();
    assert_eq!(r.status, "error");
    assert_eq!(r.id, 41, "id echoed so pipelined callers can correlate");
    assert!(r.error.unwrap().contains("unknown request type"));
    // Bad field shapes are protocol errors too, with the id preserved.
    let r = c
        .call(r#"{"id":42,"type":"sweep","vars":{"vds":"three"}}"#)
        .unwrap();
    assert_eq!(r.status, "error");
    assert_eq!(r.id, 42);
    let stats = server.shutdown();
    assert!(stats.protocol_errors >= 2);
    assert_eq!(stats.internal_errors, 0);
}

#[test]
fn zero_length_frame_is_recoverable() {
    let server = small_server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap();
    let mut reader = raw.try_clone().unwrap();
    let payload = rfkit_serve::read_frame(&mut reader, 1 << 20).unwrap();
    assert_eq!(
        rfkit_serve::Response::parse(&payload).unwrap().status,
        "error"
    );
    // The stream stayed aligned: a real request still works.
    let ping = client::ping_json(5);
    raw.write_all(&(ping.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(ping.as_bytes()).unwrap();
    let payload = rfkit_serve::read_frame(&mut reader, 1 << 20).unwrap();
    assert!(rfkit_serve::Response::parse(&payload).unwrap().is_ok());
    server.shutdown();
}

#[test]
fn deadline_expires_queued_request_without_evaluating() {
    // One worker pinned by a long design run; a sweep with a 1 ms
    // deadline queued behind it must come back `expired`, unevaluated.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut pinned = Client::connect(server.local_addr()).unwrap();
    pinned.send(&client::design_json(1, 20_000, 7)).unwrap();
    // Wait until the design is actually in flight so the deadline
    // clock of the next request starts while the worker is busy.
    let mut stats_conn = Client::connect(server.local_addr()).unwrap();
    loop {
        let r = stats_conn.call(&client::stats_json(900)).unwrap();
        let in_flight = r
            .result
            .get("in_flight")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if in_flight >= 1.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let vars = lna::snap_to_catalog(lna::DesignVariables {
        vds: 3.0,
        ids: 0.05,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    });
    let sweep = {
        let mut doc = rfkit_obs::json::JsonObj::new();
        doc.num("id", 2.0);
        doc.str("type", "sweep");
        doc.raw("vars", &rfkit_serve::vars_json(&vars));
        doc.num("deadline_ms", 1.0);
        doc.finish()
    };
    pinned.send(&sweep).unwrap();
    // Two responses on this connection: the expired sweep (id 2) and
    // the completed design (id 1), in either order.
    let mut by_id = std::collections::BTreeMap::new();
    for _ in 0..2 {
        let r = pinned.recv().unwrap();
        by_id.insert(r.id, r);
    }
    assert_eq!(by_id[&1].status, "ok", "pinning design completed");
    assert_eq!(by_id[&2].status, "expired");
    let stats = server.shutdown();
    assert_eq!(stats.expired, 1);
}
