//! Clean-shutdown regression: the draining listener stops accepting,
//! admitted requests finish, every thread joins (asserted through the
//! server's own lifecycle counters — no leaked workers or readers), and
//! the final obs flush writes the armed profile to disk.
//!
//! The aggregate-profile arming lives in this file because `rfkit_obs`
//! arming is process state; integration-test binaries are separate
//! processes, so this cannot collide with the other suites.

use std::net::TcpStream;
use std::time::Duration;

use lna::{snap_to_catalog, DesignVariables};
use rfkit_serve::{client, Client, ServeConfig, Server};

fn vars() -> DesignVariables {
    snap_to_catalog(DesignVariables {
        vds: 3.2,
        ids: 0.045,
        l1: 7.5e-9,
        ls_deg: 0.5e-9,
        l2: 9e-9,
        c2: 1.8e-12,
        r_bias: 33.0,
    })
}

#[test]
fn drain_joins_every_thread_and_flushes_the_profile() {
    // Arm aggregate-mode tracing: shutdown's final flush must write the
    // profile document, serve counters included.
    let profile = std::env::temp_dir().join(format!(
        "rfkit_serve_shutdown_profile_{}.json",
        std::process::id()
    ));
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(profile.clone()),
        mode: rfkit_obs::TraceMode::Agg,
    });

    let server = Server::start(ServeConfig {
        workers: 3,
        queue_capacity: 32,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // Several connections' worth of real traffic, fully answered before
    // the drain: admitted work completes.
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(addr).unwrap()).collect();
    for (k, c) in clients.iter_mut().enumerate() {
        for i in 0..4u64 {
            let id = (k as u64) * 10 + i;
            let r = c
                .call(&client::sweep_json(
                    id,
                    &vars(),
                    Some((1.1e9, 1.7e9, 7)),
                    None,
                ))
                .unwrap();
            assert_eq!(r.id, id);
            assert!(r.is_ok(), "{}", r.raw);
        }
    }

    // Pipeline a burst, confirm it is admitted (the drain contract
    // covers admitted work, not bytes still on the wire), then shut
    // down: everything admitted must still be answered — drain, never
    // drop.
    let before = server.stats().accepted;
    clients[0]
        .send(&client::sweep_json(901, &vars(), None, None))
        .unwrap();
    clients[0]
        .send(&client::sweep_json(902, &vars(), None, None))
        .unwrap();
    clients[0].send(&client::stats_json(903)).unwrap();
    while server.stats().accepted < before + 3 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = server.shutdown();

    // Everything admitted was answered.
    let mut got = Vec::new();
    for _ in 0..3 {
        let r = clients[0].recv().expect("drained response delivered");
        got.push((r.id, r.status));
    }
    got.sort();
    assert_eq!(
        got,
        vec![
            (901, "ok".to_string()),
            (902, "ok".to_string()),
            (903, "ok".to_string()),
        ],
        "admitted burst answered through the drain"
    );

    // No leaked threads: spawn and exit counters agree for workers and
    // readers alike, and nothing was silently dropped.
    assert_eq!(stats.workers_spawned, 3);
    assert_eq!(
        stats.workers_exited, stats.workers_spawned,
        "worker threads leaked past shutdown"
    );
    assert_eq!(
        stats.connections_closed, stats.connections_opened,
        "reader threads leaked past shutdown"
    );
    assert_eq!(stats.accepted, stats.completed + stats.expired);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.internal_errors, 0);

    // The listener is gone: a fresh connection is refused, or closes
    // without ever answering a ping.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(_s) => {
            // Accepted by a dying socket backlog at worst; a real
            // request must fail.
            let mut c = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            assert!(
                c.call(&client::ping_json(1)).is_err(),
                "server answered after shutdown"
            );
        }
    }

    // The final flush wrote the aggregate profile, serve names included.
    std::thread::sleep(Duration::from_millis(10));
    let body = std::fs::read_to_string(&profile).expect("profile written by shutdown flush");
    assert!(body.contains("serve.request"), "serve span missing: {body}");
    assert!(
        body.contains("serve.requests.accepted"),
        "serve counters missing from profile"
    );
    let _ = std::fs::remove_file(&profile);
}

#[test]
fn double_shutdown_via_drop_is_idempotent() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert!(c.call(&client::ping_json(1)).unwrap().is_ok());
    drop(server); // Drop path runs the same drain; must not hang or panic.
}
