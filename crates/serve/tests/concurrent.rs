//! Concurrency blitz: the serving path inherits the repo's determinism
//! contract. A fixed-seed request must return bit-identical response
//! payloads whether served alone or interleaved with 16 concurrent
//! mixed-traffic clients, with tracing armed — the caches may only ever
//! substitute a value for itself. Plus the admission-control contract at
//! server level: the K+1th queued request is answered `overloaded` while
//! everything in flight completes.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use lna::{snap_to_catalog, DesignVariables};
use rfkit_num::rng::Rng64;
use rfkit_serve::{client, Client, ServeConfig, Server};

fn catalog_vars(seed: u64) -> DesignVariables {
    let mut rng = Rng64::new(seed);
    snap_to_catalog(DesignVariables {
        vds: rng.uniform(2.0, 4.0),
        ids: rng.uniform(0.02, 0.08),
        l1: rng.uniform(3e-9, 12e-9),
        ls_deg: rng.uniform(0.1e-9, 0.8e-9),
        l2: rng.uniform(5e-9, 15e-9),
        c2: rng.uniform(1e-12, 4e-12),
        r_bias: rng.uniform(15.0, 60.0),
    })
}

/// The three fixed-seed probes compared bit-for-bit. Same ids, same
/// payload bytes, every time they are issued.
fn fixed_probes() -> Vec<String> {
    let vars = catalog_vars(0x5eed);
    vec![
        client::sweep_json(7001, &vars, Some((1.15e9, 1.65e9, 9)), Some(0.25)),
        client::verify_json(7002, &vars, Some((1.15e9, 1.65e9, 9))),
        client::yield_json(7003, &vars, 24, 0xfeed),
    ]
}

#[test]
fn fixed_request_is_bit_identical_alone_vs_16_way_interleaved() {
    // Tracing armed for the whole comparison: telemetry must stay
    // write-only with respect to every served result.
    let trace = std::env::temp_dir().join(format!(
        "rfkit_serve_concurrent_trace_{}.jsonl",
        std::process::id()
    ));
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(trace.clone()),
        ..rfkit_obs::TraceConfig::default()
    });

    let server = Server::start(ServeConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // Baseline: the fixed probes served alone, byte-for-byte.
    let baseline: Vec<String> = {
        let mut c = Client::connect(addr).unwrap();
        fixed_probes()
            .iter()
            .map(|req| c.call_raw(req).unwrap())
            .collect()
    };

    // Storm: 16 clients of mixed traffic (sweeps over a shared pool of
    // snapped candidates, verifies, yields, pings, protocol junk), while
    // the main thread re-issues the fixed probes continuously.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let storm: Vec<_> = (0..16u64)
        .map(|k| {
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let vars = catalog_vars(1 + (i + k) % 6); // shared pool: cache traffic
                    let req = match i % 5 {
                        0 => client::verify_json(k * 1000 + i, &vars, None),
                        1 => client::yield_json(k * 1000 + i, &vars, 8, k ^ i),
                        2 => client::ping_json(k * 1000 + i),
                        _ => client::sweep_json(k * 1000 + i, &vars, None, Some(0.25)),
                    };
                    let resp = c.call(&req).unwrap();
                    assert!(
                        matches!(resp.status.as_str(), "ok" | "degraded" | "infeasible"),
                        "storm request got {}",
                        resp.raw
                    );
                    i += 1;
                }
            })
        })
        .collect();

    let mut probe_conn = Client::connect(addr).unwrap();
    for round in 0..12 {
        for (probe, expect) in fixed_probes().iter().zip(&baseline) {
            let got = probe_conn.call_raw(probe).unwrap();
            assert_eq!(
                &got, expect,
                "round {round}: fixed-seed response diverged under 16-way interleaving"
            );
        }
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in storm {
        h.join().expect("storm client panicked");
    }

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.internal_errors, 0);
    assert!(
        stats.design_cache_hits > 0,
        "repeated sweeps must hit the shared design cache"
    );
    assert!(
        stats.plan_cache_hits > 0,
        "repeated verifies must hit the shared plan cache"
    );

    // The armed run actually traced the serving path.
    rfkit_obs::flush();
    let body = std::fs::read_to_string(&trace).expect("trace written");
    assert!(
        body.contains("serve.request"),
        "serve.request span/latency missing from armed trace"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn kth_plus_one_queued_request_is_overloaded_while_in_flight_completes() {
    const K: usize = 3;
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: K,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Pin the lone worker with a long design run, confirmed in flight
    // via the inline stats path before any sweep is queued.
    let mut pinned = Client::connect(addr).unwrap();
    pinned.send(&client::design_json(1, 20_000, 3)).unwrap();
    let mut stats_conn = Client::connect(addr).unwrap();
    loop {
        let r = stats_conn.call(&client::stats_json(900)).unwrap();
        let in_flight = r.result.get("in_flight").and_then(|v| v.as_f64());
        if in_flight == Some(1.0) {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }

    // Fill the queue to capacity, then overflow it by one.
    let vars = catalog_vars(0xabcd);
    for i in 0..=K as u64 {
        pinned
            .send(&client::sweep_json(2 + i, &vars, None, None))
            .unwrap();
    }

    let mut by_id: BTreeMap<u64, String> = BTreeMap::new();
    for _ in 0..K + 2 {
        let r = pinned.recv().unwrap();
        by_id.insert(r.id, r.status);
    }
    assert_eq!(by_id[&1], "ok", "in-flight design completed");
    for i in 0..K as u64 {
        assert_eq!(by_id[&(2 + i)], "ok", "queued sweep {i} completed");
    }
    assert_eq!(
        by_id[&(2 + K as u64)],
        "overloaded",
        "the K+1th queued request gets explicit backpressure"
    );

    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.protocol_errors, 0);
}
