//! Degradation through the wire: with `rfkit-faults` armed at the
//! `band.point` site, a served sweep must come back `degraded` with
//! grid-ordered per-point diagnostics — and the flagged partial must be
//! excluded from the shared design cache, so a later request outside the
//! fault window gets clean metrics instead of a poisoned memo.
//!
//! Compiled only with `--features rfkit-faults`.
#![cfg(feature = "rfkit-faults")]

use lna::{snap_to_catalog, BandSpec, DesignVariables};
use rfkit_robust::faults::{self, FaultKind, FaultPlan};
use rfkit_serve::{client, Client, ServeConfig, Server};

fn nominal() -> DesignVariables {
    snap_to_catalog(DesignVariables {
        vds: 3.0,
        ids: 0.050,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    })
}

#[test]
fn served_sweep_degrades_with_grid_ordered_diagnostics_and_no_cache_poison() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Kill two in-band points of the requested band by their exact
    // frequency bits — the same data-derived keys the evaluation uses.
    let band = (1.15e9, 1.65e9, 9usize);
    let spec = BandSpec::new(band.0, band.1, band.2);
    let bad = [2usize, 6];
    let keys: Vec<u64> = bad.iter().map(|&i| spec.grid()[i].to_bits()).collect();
    let vars = nominal();

    let degraded_raw = {
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "band.point",
            FaultKind::PointFailure,
            &keys,
        ));
        // Twice under faults: the first result must NOT be memoized, so
        // the second is degraded again rather than a cache hit of a
        // partial.
        let first = c
            .call(&client::sweep_json(1, &vars, Some(band), Some(0.5)))
            .unwrap();
        let second = c
            .call(&client::sweep_json(2, &vars, Some(band), Some(0.5)))
            .unwrap();
        assert_eq!(first.status, "degraded");
        assert_eq!(second.status, "degraded");

        // Grid-ordered diagnostics: exactly the injected points, with
        // ascending indices and the band's own frequencies.
        for resp in [&first, &second] {
            assert_eq!(resp.diagnostics.len(), bad.len());
            for (diag, &idx) in resp.diagnostics.iter().zip(&bad) {
                assert_eq!(diag.index, idx);
                assert_eq!(diag.at, spec.grid()[idx]);
                assert!(!diag.detail.is_empty());
            }
        }
        // Metrics still present: a flagged partial, not an opaque 500.
        assert!(first.result.get("worst_nf_db").is_some());
        first.raw
    };

    // Outside the fault window: the same request now completes — proof
    // the degraded result was never cached. Then repeat: the clean
    // result IS memoized.
    let clean = c
        .call(&client::sweep_json(3, &vars, Some(band), Some(0.5)))
        .unwrap();
    assert_eq!(clean.status, "ok", "degraded result must not be memoized");
    assert_ne!(clean.raw, degraded_raw);
    let again = c
        .call(&client::sweep_json(4, &vars, Some(band), Some(0.5)))
        .unwrap();
    assert_eq!(again.status, "ok");

    let stats = server.shutdown();
    assert_eq!(
        stats.design_cache_uncacheable, 2,
        "both degraded evaluations refused memoization"
    );
    assert!(
        stats.design_cache_hits >= 1,
        "the clean evaluation was memoized and re-served"
    );
    assert_eq!(stats.degraded, 2);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn strict_policy_maps_to_failed_with_diagnostics() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let band = (1.2e9, 1.6e9, 7usize);
    let spec = BandSpec::new(band.0, band.1, band.2);
    // Index 2 (1.333 GHz) does not collide with the out-of-band
    // stability grid; index 3 would be exactly 1.4 GHz, which appears
    // there too and would fire the bit-keyed fault at both points.
    let keys = [spec.grid()[2].to_bits()];
    let vars = nominal();
    {
        let _g = faults::scoped(FaultPlan::new().fail_keys(
            "band.point",
            FaultKind::PointFailure,
            &keys,
        ));
        // Default policy is strict: one injected failure exceeds it.
        let r = c
            .call(&client::sweep_json(1, &vars, Some(band), None))
            .unwrap();
        assert_eq!(r.status, "failed");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].index, 2);
    }
    let r = c
        .call(&client::sweep_json(2, &vars, Some(band), None))
        .unwrap();
    assert_eq!(r.status, "ok", "failed result must not be memoized either");
    server.shutdown();
}
