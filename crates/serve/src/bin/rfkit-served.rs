//! Standalone server: `rfkit-served [--addr HOST:PORT] [--workers N]
//! [--queue K] [--deadline-ms D]`.
//!
//! Prints the bound address on stdout, serves until stdin reaches EOF
//! (Ctrl-D, or the supervisor closing the pipe — the zero-dep stand-in
//! for signal handling), then drains and reports the final counters.

use std::io::Read;

use rfkit_serve::{ServeConfig, Server};

fn main() {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--workers" => cfg.workers = take("--workers").parse().expect("--workers: usize"),
            "--queue" => {
                cfg.queue_capacity = take("--queue").parse().expect("--queue: usize");
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms =
                    Some(take("--deadline-ms").parse().expect("--deadline-ms: u64"));
            }
            other => {
                eprintln!(
                    "rfkit-served: unknown argument `{other}` \
                     (known: --addr --workers --queue --deadline-ms)"
                );
                std::process::exit(2);
            }
        }
    }

    let server = Server::start(cfg).expect("bind and start server");
    println!("rfkit-served listening on {}", server.local_addr());
    println!("serving until stdin closes (Ctrl-D to stop)");

    // Block until EOF on stdin; bytes received are ignored.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    let stats = server.shutdown();
    println!(
        "rfkit-served: drained; accepted={} completed={} degraded={} \
         rejected={} expired={} protocol_errors={}",
        stats.accepted,
        stats.completed,
        stats.degraded,
        stats.rejected,
        stats.expired,
        stats.protocol_errors
    );
}
