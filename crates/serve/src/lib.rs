//! # rfkit-serve — design-as-a-service batch server
//!
//! The front door of the stack: a zero-dependency batch server on
//! `std::net` that accepts band-sweep, full design/optimize, netlist
//! verification, and yield-analysis requests over a length-prefixed
//! framed JSON protocol (the `rfkit-obs` JSON writer/parser is the wire
//! codec — see [`protocol`] for the frame layout and request model).
//!
//! Architecture, in request order:
//!
//! * **Acceptor** (`serve-accept` thread) accepts connections and spawns
//!   one reader thread per connection.
//! * **Readers** decode frames defensively — oversized length prefixes
//!   are rejected *before allocation*, malformed JSON and unknown types
//!   get structured `error` responses, disconnects close cleanly; a
//!   protocol error never panics a thread. Cheap `ping`/`stats` requests
//!   are answered inline; evaluation requests go to the scheduler.
//! * **Scheduler**: bounded work-stealing queues (one deque per worker,
//!   round-robin submission, steal-from-deepest). Past the admission
//!   bound the request is answered `overloaded` — explicit backpressure,
//!   never a silent drop. Per-request deadlines are enforced at dequeue:
//!   a request that waited too long is answered `expired` unevaluated.
//! * **Workers** (`serve-worker-N` threads) evaluate requests with warm
//!   per-worker [`rfkit_circuit::AcWorkspace`]s; compiled `StampPlan`s
//!   and snapped-design band metrics are shared cross-request through
//!   the process-wide plan cache and per-band [`lna::DesignCache`]s.
//!   Degraded/failed sweeps surface grid-ordered per-point diagnostics
//!   (`BandOutcome` mapped onto the wire) and are never memoized.
//! * **Shutdown** drains: the listener stops accepting, admitted work
//!   finishes, every thread joins, and a final `rfkit_obs::flush()`
//!   writes the armed profile.
//!
//! Determinism: a request's result payload is a pure function of the
//! request (the caches only substitute values for themselves), so the
//! same fixed-seed request returns bit-identical bytes whether served
//! alone or interleaved with concurrent mixed traffic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
mod scheduler;
pub mod server;

pub use client::Client;
pub use protocol::{
    read_frame, vars_json, write_frame, FrameError, Request, RequestBody, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, Server, StatsSnapshot};
