//! Work-stealing request scheduler with bounded admission.
//!
//! Each worker owns a deque; submissions round-robin across them and a
//! worker that drains its own queue steals from the tail of the deepest
//! sibling, so one expensive request cannot strand cheap ones behind it.
//! Admission is bounded: past `capacity` queued requests, `submit` hands
//! the item back with [`Refusal::Overloaded`] so the caller can answer
//! with explicit backpressure — the scheduler never drops work silently.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

// Queue depth observed at each admission (runtime-gated, write-only).
static OBS_QUEUE_DEPTH: rfkit_obs::Hist = rfkit_obs::Hist::new("serve.queue.depth");

/// Why a submission was refused. The item is handed back alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Refusal {
    /// The bounded queue is at capacity — backpressure, not a drop.
    Overloaded,
    /// The scheduler is draining for shutdown.
    Draining,
}

pub(crate) struct Scheduler<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

struct State<T> {
    queues: Vec<VecDeque<T>>,
    queued: usize,
    next_rr: usize,
    draining: bool,
}

impl<T> Scheduler<T> {
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        Scheduler {
            state: Mutex::new(State {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                next_rr: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` and returns the queue depth after admission, or
    /// refuses and hands the item back so the caller can respond.
    pub fn submit(&self, item: T) -> Result<usize, (T, Refusal)> {
        let mut s = self.lock();
        if s.draining {
            return Err((item, Refusal::Draining));
        }
        if s.queued >= self.capacity {
            return Err((item, Refusal::Overloaded));
        }
        let w = s.next_rr;
        s.next_rr = (s.next_rr + 1) % s.queues.len();
        s.queues[w].push_back(item);
        s.queued += 1;
        let depth = s.queued;
        drop(s);
        OBS_QUEUE_DEPTH.record(depth as u64);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Next item for `worker`: own queue front-first, then a steal from
    /// the tail of the deepest sibling. Blocks while idle; returns
    /// `None` once draining *and* every queue is empty.
    pub fn next(&self, worker: usize) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = Self::pop(&mut s, worker) {
                return Some(item);
            }
            if s.draining {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn pop(s: &mut State<T>, worker: usize) -> Option<T> {
        if let Some(item) = s.queues[worker].pop_front() {
            s.queued -= 1;
            return Some(item);
        }
        let victim = (0..s.queues.len())
            .filter(|&v| v != worker && !s.queues[v].is_empty())
            .max_by_key(|&v| s.queues[v].len())?;
        let item = s.queues[victim].pop_back()?;
        s.queued -= 1;
        Some(item)
    }

    /// Queued (admitted, not yet started) request count.
    pub fn depth(&self) -> usize {
        self.lock().queued
    }

    /// Marks the scheduler draining: new submissions are refused, every
    /// parked worker wakes, and workers exit once the queues are empty —
    /// queued work still completes.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.ready.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    /// The backpressure contract at scheduler level with an airtight
    /// gate: while one request is in flight and K are queued, the K+1th
    /// is refused `Overloaded`; everything admitted still completes.
    #[test]
    fn kth_plus_one_is_refused_while_in_flight_completes() {
        const K: usize = 3;
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, K));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<u32>();

        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                while let Some(item) = sched.next(0) {
                    if item == 0 {
                        started_tx.send(()).unwrap();
                        gate_rx.recv().unwrap(); // hold the item in flight
                    }
                    done_tx.send(item).unwrap();
                }
            })
        };

        sched.submit(0).unwrap();
        started_rx.recv().unwrap(); // item 0 is now in flight, not queued
        for i in 1..=K as u32 {
            assert_eq!(sched.submit(i).unwrap(), i as usize);
        }
        assert_eq!(sched.depth(), K);
        let (refused, why) = sched.submit(99).unwrap_err();
        assert_eq!(refused, 99);
        assert_eq!(why, Refusal::Overloaded);

        gate_tx.send(()).unwrap(); // release the in-flight item
        sched.drain();
        worker.join().unwrap();
        let done: Vec<u32> = done_rx.try_iter().collect();
        assert_eq!(done, vec![0, 1, 2, 3], "admitted work completed in order");
        assert!(matches!(sched.submit(100), Err((100, Refusal::Draining))));
    }

    /// Round-robin submission spreads items across worker queues; a lone
    /// active worker steals every sibling's item, so nothing is stranded.
    #[test]
    fn lone_worker_steals_strands_nothing() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(4, 64));
        for i in 0..8 {
            sched.submit(i).unwrap();
        }
        sched.drain();
        let mut got = Vec::new();
        while let Some(item) = sched.next(0) {
            got.push(item);
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(sched.depth(), 0);
    }
}
