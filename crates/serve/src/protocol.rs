//! Wire protocol: length-prefixed JSON frames plus the request/response
//! model, reusing the `rfkit-obs` JSON writer/parser.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+---------------------------+
//! | length: u32 BE | payload: `length` bytes   |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is one UTF-8 JSON object. The length prefix is validated
//! against the configured ceiling **before** any allocation, so a
//! hostile prefix can never OOM the server; a zero length is equally
//! invalid. Both sides speak the same frames — responses are framed
//! exactly like requests.
//!
//! # Requests
//!
//! Every request is an object with a `type` field, an optional numeric
//! `id` (echoed verbatim on the response; defaults to 0), and an
//! optional `deadline_ms` (queue-to-start budget). The work types:
//!
//! | `type`   | fields                                              |
//! |----------|-----------------------------------------------------|
//! | `ping`   | —                                                   |
//! | `stats`  | —                                                   |
//! | `sweep`  | `vars`, optional `band`, optional `policy`          |
//! | `verify` | `vars`, optional `band`                             |
//! | `design` | optional `goals`, `max_evals`, `seed`, `band`       |
//! | `yield`  | `vars`, optional `band`, `spec`, `units`, `seed`    |
//!
//! `vars` is the seven-field design vector (`vds`, `ids`, `l1`,
//! `ls_deg`, `l2`, `c2`, `r_bias`, all SI floats); `band` is
//! `{"f_lo": Hz, "f_hi": Hz, "points": N}` (default: the GNSS band);
//! `policy` is `{"max_fail_frac": f}` (default: strict).
//!
//! # Responses
//!
//! `{"id": .., "status": .., "result": {..}, "diagnostics": [..],
//! "error": ".."}` where `status` is one of `ok`, `degraded`,
//! `infeasible`, `failed`, `overloaded`, `expired`, or `error`.
//! Degraded and failed evaluations carry grid-ordered per-point
//! `diagnostics` instead of an opaque 500-style error.

use std::io::{self, Read, Write};

use lna::{BandSpec, DegradePolicy, DesignGoals, DesignVariables, PointDiagnostic, YieldSpec};
use rfkit_obs::json::{self, fmt_f64, Json, JsonObj};

/// Default ceiling on one frame's payload: 1 MiB.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary: normal EOF.
    Closed,
    /// The peer disconnected mid-frame (prefix or payload cut short).
    Truncated,
    /// Zero-length payload — not a valid frame.
    Empty,
    /// The length prefix exceeds the ceiling; the payload was never
    /// allocated or read, so the only safe continuation is to close.
    Oversized(usize),
    /// The payload is not valid UTF-8. The frame was fully consumed, so
    /// the stream is still frame-aligned and the connection can keep
    /// serving.
    NotUtf8,
    /// Transport error.
    Io(io::Error),
}

impl FrameError {
    /// `true` when the stream is still frame-aligned after this error
    /// and the connection can keep serving.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::NotUtf8 | FrameError::Empty)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "frame truncated by disconnect"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the maximum"),
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one frame, enforcing `max_payload` before allocating.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<String, FrameError> {
    let mut prefix = [0u8; 4];
    fill(r, &mut prefix, true)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max_payload {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    fill(r, &mut payload, false)?;
    String::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

/// Reads exactly `buf.len()` bytes. `at_boundary` distinguishes a clean
/// close (EOF before the first prefix byte) from a mid-frame truncation.
fn fill(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one frame (prefix + payload + flush).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 framing"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// One parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed on the response (0 when
    /// absent). Responses on one connection may arrive out of request
    /// order — the id is how pipelined callers match them up.
    pub id: u64,
    /// Queue-to-start budget in milliseconds: an admitted request that
    /// waits longer is answered `expired` without being evaluated.
    pub deadline_ms: Option<u64>,
    /// The work item.
    pub body: RequestBody,
}

/// The work item of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe, answered inline by the connection reader.
    Ping,
    /// Server and cache statistics snapshot, answered inline.
    Stats,
    /// Band sweep of one design through the shared design cache.
    Sweep {
        /// Design vector to evaluate.
        vars: DesignVariables,
        /// Band to sweep.
        band: BandSpec,
        /// Tolerance for transient per-point failures.
        policy: DegradePolicy,
    },
    /// Netlist verification sweep: builds the reference netlist for the
    /// design vector and runs it through the process-wide shared
    /// `StampPlan` cache with the worker's warm `AcWorkspace`.
    Verify {
        /// Design vector whose netlist to verify.
        vars: DesignVariables,
        /// Frequency grid to sweep.
        band: BandSpec,
    },
    /// Full design/optimize run (the objective spec rides in `goals`).
    Design {
        /// Goal-attainment objective spec.
        goals: DesignGoals,
        /// Objective-evaluation budget.
        max_evals: usize,
        /// Optimizer seed.
        seed: u64,
        /// Band to design for.
        band: BandSpec,
    },
    /// Monte-Carlo yield analysis of one design.
    Yield {
        /// Design vector to manufacture.
        vars: DesignVariables,
        /// Band to grade over.
        band: BandSpec,
        /// Pass/fail specification.
        spec: YieldSpec,
        /// Units to manufacture.
        units: usize,
        /// Tolerance-draw seed base.
        seed: u64,
        /// Tolerance for transient per-unit failures.
        policy: DegradePolicy,
    },
}

impl RequestBody {
    /// Short wire name of this request type.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Stats => "stats",
            RequestBody::Sweep { .. } => "sweep",
            RequestBody::Verify { .. } => "verify",
            RequestBody::Design { .. } => "design",
            RequestBody::Yield { .. } => "yield",
        }
    }
}

/// Hard cap on requested grid sizes: enough for any real sweep, small
/// enough that a hostile request cannot pin a worker indefinitely.
const MAX_BAND_POINTS: usize = 4096;
/// Design budget clamp (floor keeps the optimizer meaningful, ceiling
/// bounds worst-case request cost).
const DESIGN_EVALS_RANGE: (usize, usize) = (60, 40_000);
/// Yield unit-count clamp.
const MAX_YIELD_UNITS: usize = 2048;

fn req_num(obj: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field `{ctx}{key}`"))?;
    if !v.is_finite() {
        return Err(format!("field `{ctx}{key}` is not finite"));
    }
    Ok(v)
}

fn opt_num(obj: &Json, ctx: &str, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("field `{ctx}{key}` is not a number"))?;
            if !v.is_finite() {
                return Err(format!("field `{ctx}{key}` is not finite"));
            }
            Ok(v)
        }
    }
}

fn parse_vars(doc: &Json) -> Result<DesignVariables, String> {
    let v = doc
        .get("vars")
        .ok_or_else(|| "missing object `vars`".to_string())?;
    Ok(DesignVariables {
        vds: req_num(v, "vars.", "vds")?,
        ids: req_num(v, "vars.", "ids")?,
        l1: req_num(v, "vars.", "l1")?,
        ls_deg: req_num(v, "vars.", "ls_deg")?,
        l2: req_num(v, "vars.", "l2")?,
        c2: req_num(v, "vars.", "c2")?,
        r_bias: req_num(v, "vars.", "r_bias")?,
    })
}

fn parse_band(doc: &Json) -> Result<BandSpec, String> {
    let Some(b) = doc.get("band") else {
        return Ok(BandSpec::gnss());
    };
    let f_lo = req_num(b, "band.", "f_lo")?;
    let f_hi = req_num(b, "band.", "f_hi")?;
    let points = req_num(b, "band.", "points")? as usize;
    if f_lo <= 0.0 || f_hi <= f_lo {
        return Err("band requires 0 < f_lo < f_hi".into());
    }
    if !(2..=MAX_BAND_POINTS).contains(&points) {
        return Err(format!("band.points must be in 2..={MAX_BAND_POINTS}"));
    }
    Ok(BandSpec::new(f_lo, f_hi, points))
}

fn parse_policy(doc: &Json, default: DegradePolicy) -> Result<DegradePolicy, String> {
    let Some(p) = doc.get("policy") else {
        return Ok(default);
    };
    let frac = req_num(p, "policy.", "max_fail_frac")?;
    if !(0.0..=1.0).contains(&frac) {
        return Err("policy.max_fail_frac must be in [0, 1]".into());
    }
    Ok(DegradePolicy::lenient(frac))
}

fn parse_goals(doc: &Json) -> Result<DesignGoals, String> {
    let d = DesignGoals::default();
    let Some(g) = doc.get("goals") else {
        return Ok(d);
    };
    Ok(DesignGoals {
        nf_db: opt_num(g, "goals.", "nf_db", d.nf_db)?,
        gain_db: opt_num(g, "goals.", "gain_db", d.gain_db)?,
        return_loss_db: opt_num(g, "goals.", "return_loss_db", d.return_loss_db)?,
        nf_weight: opt_num(g, "goals.", "nf_weight", d.nf_weight)?,
        gain_weight: opt_num(g, "goals.", "gain_weight", d.gain_weight)?,
        stability_margin: opt_num(g, "goals.", "stability_margin", d.stability_margin)?,
    })
}

fn parse_spec(doc: &Json) -> Result<YieldSpec, String> {
    let d = YieldSpec::default();
    let Some(s) = doc.get("spec") else {
        return Ok(d);
    };
    Ok(YieldSpec {
        max_nf_db: opt_num(s, "spec.", "max_nf_db", d.max_nf_db)?,
        min_gain_db: opt_num(s, "spec.", "min_gain_db", d.min_gain_db)?,
        max_s11_db: opt_num(s, "spec.", "max_s11_db", d.max_s11_db)?,
        require_stability: match s.get("require_stability") {
            None | Some(Json::Null) => d.require_stability,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("spec.require_stability must be a bool".into()),
        },
    })
}

impl Request {
    /// Parses and validates one request payload. On failure the error
    /// carries the request id when one was readable (0 otherwise) so the
    /// caller can still correlate the error response.
    pub fn parse(payload: &str) -> Result<Request, (u64, String)> {
        let doc = json::parse(payload).map_err(|e| (0, format!("malformed JSON: {e}")))?;
        let id = doc
            .get("id")
            .and_then(Json::as_f64)
            .map(|v| v.max(0.0) as u64)
            .unwrap_or(0);
        let kind = match doc.get("type").and_then(Json::as_str) {
            Some(k) => k,
            None => return Err((id, "missing string field `type`".into())),
        };
        let deadline_ms = doc
            .get("deadline_ms")
            .and_then(Json::as_f64)
            .map(|v| v.max(0.0) as u64);
        let body = match kind {
            "ping" => RequestBody::Ping,
            "stats" => RequestBody::Stats,
            "sweep" => RequestBody::Sweep {
                vars: parse_vars(&doc).map_err(|m| (id, m))?,
                band: parse_band(&doc).map_err(|m| (id, m))?,
                policy: parse_policy(&doc, DegradePolicy::strict()).map_err(|m| (id, m))?,
            },
            "verify" => RequestBody::Verify {
                vars: parse_vars(&doc).map_err(|m| (id, m))?,
                band: parse_band(&doc).map_err(|m| (id, m))?,
            },
            "design" => {
                let evals = opt_num(&doc, "", "max_evals", 1200.0).map_err(|m| (id, m))?;
                RequestBody::Design {
                    goals: parse_goals(&doc).map_err(|m| (id, m))?,
                    max_evals: (evals as usize).clamp(DESIGN_EVALS_RANGE.0, DESIGN_EVALS_RANGE.1),
                    seed: opt_num(&doc, "", "seed", 0x1a5 as f64).map_err(|m| (id, m))? as u64,
                    band: parse_band(&doc).map_err(|m| (id, m))?,
                }
            }
            "yield" => {
                let units = opt_num(&doc, "", "units", 64.0).map_err(|m| (id, m))?;
                RequestBody::Yield {
                    vars: parse_vars(&doc).map_err(|m| (id, m))?,
                    band: parse_band(&doc).map_err(|m| (id, m))?,
                    spec: parse_spec(&doc).map_err(|m| (id, m))?,
                    units: (units as usize).clamp(1, MAX_YIELD_UNITS),
                    seed: opt_num(&doc, "", "seed", 1.0).map_err(|m| (id, m))? as u64,
                    policy: parse_policy(&doc, DegradePolicy::lenient(1.0)).map_err(|m| (id, m))?,
                }
            }
            other => return Err((id, format!("unknown request type `{other}`"))),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }
}

/// A parsed response frame — the client-side view.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed request id (0 when the server could not read one).
    pub id: u64,
    /// Terminal status: `ok`, `degraded`, `infeasible`, `failed`,
    /// `overloaded`, `expired`, or `error`.
    pub status: String,
    /// Type-specific result object (`Json::Null` when absent).
    pub result: Json,
    /// Grid-ordered per-point diagnostics for degraded/failed work.
    pub diagnostics: Vec<PointDiagnostic>,
    /// Human-readable reason for `error`/`overloaded`/`expired`.
    pub error: Option<String>,
    /// The raw payload, byte-for-byte — determinism tests compare this.
    pub raw: String,
}

impl Response {
    /// Parses one response payload.
    pub fn parse(payload: &str) -> Result<Response, String> {
        let doc = json::parse(payload)?;
        let id = doc
            .get("id")
            .and_then(Json::as_f64)
            .map(|v| v.max(0.0) as u64)
            .unwrap_or(0);
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| "response missing `status`".to_string())?
            .to_string();
        let diagnostics = doc
            .get("diagnostics")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|d| {
                        Some(PointDiagnostic {
                            index: d.get("index")?.as_f64()? as usize,
                            at: d.get("at")?.as_f64()?,
                            detail: d.get("detail")?.as_str()?.to_string(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(Response {
            id,
            status,
            result: doc.get("result").cloned().unwrap_or(Json::Null),
            diagnostics,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
            raw: payload.to_string(),
        })
    }

    /// `true` when the request completed cleanly.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// Serializes a design vector as the wire `vars` object.
pub fn vars_json(vars: &DesignVariables) -> String {
    let mut o = JsonObj::new();
    o.num("vds", vars.vds);
    o.num("ids", vars.ids);
    o.num("l1", vars.l1);
    o.num("ls_deg", vars.ls_deg);
    o.num("l2", vars.l2);
    o.num("c2", vars.c2);
    o.num("r_bias", vars.r_bias);
    o.finish()
}

pub(crate) fn response_base(id: u64, status: &str) -> JsonObj {
    let mut o = JsonObj::new();
    o.num("id", id as f64);
    o.str("status", status);
    o
}

pub(crate) fn error_response(id: u64, detail: &str) -> String {
    let mut o = response_base(id, "error");
    o.str("error", detail);
    o.finish()
}

pub(crate) fn overloaded_response(id: u64, capacity: usize) -> String {
    let mut o = response_base(id, "overloaded");
    o.str(
        "error",
        &format!("queue at capacity ({capacity}); retry with backoff"),
    );
    o.num("queue_capacity", capacity as f64);
    o.finish()
}

pub(crate) fn expired_response(id: u64, waited_ms: u64, deadline_ms: u64) -> String {
    let mut o = response_base(id, "expired");
    o.str(
        "error",
        &format!("queued {waited_ms} ms, past the {deadline_ms} ms deadline"),
    );
    o.finish()
}

pub(crate) fn diagnostics_json(diags: &[PointDiagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = JsonObj::new();
        o.num("index", d.index as f64);
        o.num("at", d.at);
        o.str("detail", &d.detail);
        out.push_str(&o.finish());
    }
    out.push(']');
    out
}

pub(crate) fn metrics_json(m: &lna::BandMetrics) -> String {
    let mut o = JsonObj::new();
    o.num("worst_nf_db", m.worst_nf_db);
    o.num("min_gain_db", m.min_gain_db);
    o.num("worst_s11_db", m.worst_s11_db);
    o.num("worst_s22_db", m.worst_s22_db);
    o.num("min_mu", m.min_mu);
    o.num("min_k", m.min_k);
    o.finish()
}

/// Serializes an `f64` slice as a JSON array (shortest-roundtrip float
/// formatting, like every number on this wire).
pub(crate) fn f64_array_json(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(x));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"type":"ping"}"#).unwrap();
        let mut cursor = &buf[..];
        let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(got, r#"{"type":"ping"}"#);
        // Stream exhausted: next read is a clean close.
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let err = read_frame(&mut &buf[..], 1 << 20).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(n) if n == u32::MAX as usize));
        assert!(!err.recoverable());
    }

    #[test]
    fn truncation_is_distinguished_from_clean_close() {
        // Prefix promises 100 bytes, stream carries 3.
        let mut buf = Vec::from(100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut &buf[..], 1 << 20),
            Err(FrameError::Truncated)
        ));
        // Half a prefix is also a truncation, not a close.
        let half = [0u8, 0];
        assert!(matches!(
            read_frame(&mut &half[..], 1 << 20),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_parse_validates() {
        let r = Request::parse(r#"{"id":7,"type":"ping"}"#).unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.body, RequestBody::Ping);

        let (id, msg) = Request::parse(r#"{"id":9,"type":"frobnicate"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unknown request type"));

        let (_, msg) = Request::parse(r#"{"type":"sweep"}"#).unwrap_err();
        assert!(msg.contains("vars"));

        let (_, msg) = Request::parse("{not json").unwrap_err();
        assert!(msg.contains("malformed JSON"));

        // Band validation: inverted edges are rejected, not panicked on.
        let bad = r#"{"type":"sweep","vars":{"vds":3,"ids":0.05,"l1":6.8e-9,
            "ls_deg":0.4e-9,"l2":1e-8,"c2":2.2e-12,"r_bias":30},
            "band":{"f_lo":2e9,"f_hi":1e9,"points":5}}"#;
        let (_, msg) = Request::parse(bad).unwrap_err();
        assert!(msg.contains("f_lo < f_hi"));
    }

    #[test]
    fn response_parse_round_trips_diagnostics() {
        let payload = format!(
            r#"{{"id":3,"status":"degraded","result":{{"worst_nf_db":0.7}},"diagnostics":{}}}"#,
            diagnostics_json(&[PointDiagnostic {
                index: 4,
                at: 1.3e9,
                detail: "injected point failure".into(),
            }])
        );
        let r = Response::parse(&payload).unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.status, "degraded");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].index, 4);
        assert_eq!(r.diagnostics[0].at, 1.3e9);
    }
}
