//! The batch server: accept loop, per-connection readers, work-stealing
//! workers with warm per-worker solver state, shared caches, admission
//! control, per-request deadlines, and draining shutdown.

use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use lna::{
    cached_sweep, design_lna, reference_netlist, yield_analysis_robust, BandOutcome, BandSpec,
    BuildConfig, DesignCache, DesignConfig, DesignVariables, LnaDesign, PointDiagnostic,
    YieldOutcome, DEFAULT_CACHE_CAPACITY,
};
use rfkit_circuit::{shared_plan_cache, AcWorkspace};
use rfkit_device::Phemt;
use rfkit_obs::json::{fmt_f64, JsonObj};

use crate::protocol::{self, FrameError, Request, RequestBody};
use crate::scheduler::{Refusal, Scheduler};

// Request-lifecycle telemetry (runtime-gated, write-only; the contract
// checker ties these names to DESIGN.md and the CI trace assertions).
static OBS_ACCEPTED: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.requests.accepted");
static OBS_REJECTED: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.requests.rejected");
static OBS_COMPLETED: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.requests.completed");
static OBS_DEGRADED: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.requests.degraded");
static OBS_EXPIRED: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.requests.expired");
static OBS_PROTOCOL_ERRORS: rfkit_obs::Counter = rfkit_obs::Counter::new("serve.protocol.errors");
static OBS_LATENCY: rfkit_obs::Hist = rfkit_obs::Hist::new("serve.request.latency_us");

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing queued requests.
    pub workers: usize,
    /// Bounded admission queue: past this many queued requests, new work
    /// is answered `overloaded` (explicit backpressure, never a drop).
    pub queue_capacity: usize,
    /// Ceiling on one frame's payload; larger length prefixes are
    /// rejected before any allocation.
    pub max_frame_bytes: usize,
    /// Default queue-to-start deadline applied when a request carries
    /// none. `None` = wait indefinitely.
    pub default_deadline_ms: Option<u64>,
    /// Capacity of each per-band design memo cache.
    pub design_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: None,
            design_cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Monotonic server counters (thread lifecycle included, so shutdown
/// tests can assert nothing leaked).
#[derive(Default)]
struct ServerStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    expired: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
    in_flight: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    workers_spawned: AtomicU64,
    workers_exited: AtomicU64,
    readers_exited: AtomicU64,
}

/// Point-in-time view of the server's counters and cache economics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted (queued or answered inline).
    pub accepted: u64,
    /// Requests refused with `overloaded` or during drain.
    pub rejected: u64,
    /// Requests answered with a terminal evaluation result.
    pub completed: u64,
    /// Completed requests whose result was flagged degraded/failed.
    pub degraded: u64,
    /// Admitted requests answered `expired` past their deadline.
    pub expired: u64,
    /// Malformed frames/JSON/fields observed (each got a structured
    /// error response or a clean close, never a panic).
    pub protocol_errors: u64,
    /// Handler panics converted to structured `error` responses.
    pub internal_errors: u64,
    /// Requests being evaluated right now.
    pub in_flight: u64,
    /// Requests admitted but not yet started.
    pub queue_depth: usize,
    /// Connections accepted / fully closed.
    pub connections_opened: u64,
    /// Reader threads that have exited.
    pub connections_closed: u64,
    /// Worker threads spawned / exited — equal after shutdown, which is
    /// the "no leaked threads" assertion.
    pub workers_spawned: u64,
    /// See `workers_spawned`.
    pub workers_exited: u64,
    /// Shared design-cache hits across all bands served.
    pub design_cache_hits: u64,
    /// Shared design-cache misses.
    pub design_cache_misses: u64,
    /// Evaluations refused memoization (degraded/failed outcomes).
    pub design_cache_uncacheable: u64,
    /// Entries currently memoized.
    pub design_cache_entries: usize,
    /// Process-wide compiled-plan cache hits (shared beyond this server).
    pub plan_cache_hits: u64,
    /// Process-wide compiled-plan cache misses.
    pub plan_cache_misses: u64,
    /// Compiled plans currently cached process-wide.
    pub plan_cache_entries: usize,
}

/// One admitted unit of work: the request plus the connection to answer.
struct Job {
    request: Request,
    conn: Arc<ConnWriter>,
    admitted: Instant,
}

/// Serialized write half of a connection: responses from the reader (for
/// inline/overload answers) and from any worker interleave frame-atomically.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, payload: &str) {
        let mut s = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        // A peer that vanished mid-response is not an error worth
        // propagating; the reader observes the close independently.
        let _ = protocol::write_frame(&mut *s, payload);
    }
}

struct Shared {
    cfg: ServeConfig,
    device: Phemt,
    sched: Scheduler<Job>,
    stats: ServerStats,
    /// Per-band design memo caches, keyed by the band's defining bits.
    /// `DesignCache` itself refuses to memoize degraded/failed outcomes,
    /// so a fault-window result can never poison a later request.
    caches: Mutex<BTreeMap<[u64; 3], Arc<DesignCache>>>,
    /// Raw handles of live connections, kept to unblock readers at
    /// shutdown. Keyed by connection id so a reader can retire its own
    /// entry when it exits — otherwise the stashed clone would hold the
    /// socket open (no FIN to the peer) and leak one fd per connection
    /// for the server's lifetime.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    readers: Mutex<Vec<JoinHandle<()>>>,
    accepting: AtomicBool,
}

impl Shared {
    fn design_cache_for(&self, band: &BandSpec) -> Arc<DesignCache> {
        let key = [
            band.f_lo().to_bits(),
            band.f_hi().to_bits(),
            band.n_points() as u64,
        ];
        Arc::clone(
            self.caches
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert_with(|| Arc::new(DesignCache::new(self.cfg.design_cache_capacity))),
        )
    }

    fn note_protocol_error(&self) {
        OBS_PROTOCOL_ERRORS.add(1);
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running batch server. Dropping it (or calling [`Server::shutdown`])
/// drains and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns workers and the acceptor, and starts serving.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            sched: Scheduler::new(workers_n, cfg.queue_capacity),
            cfg,
            device: Phemt::atf54143_like(),
            stats: ServerStats::default(),
            caches: Mutex::new(BTreeMap::new()),
            conns: Mutex::new(BTreeMap::new()),
            next_conn_id: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            accepting: AtomicBool::new(true),
        });
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let sh = Arc::clone(&shared);
            let h = thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_main(i, &sh))?;
            shared.stats.workers_spawned.fetch_add(1, Ordering::Relaxed);
            workers.push(h);
        }
        let sh = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || acceptor_main(listener, &sh))?;
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server counters and cache economics.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Graceful shutdown: stop accepting, refuse new submissions, finish
    /// everything already admitted, join every thread, then flush the
    /// observability sink so an armed profile reaches disk. Returns the
    /// final counter snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_impl();
        snapshot(&self.shared)
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() {
            return; // already stopped
        }
        // 1. Draining listener: stop accepting, wake accept() with a
        //    no-op connection, reclaim the thread (drops the listener).
        self.shared.accepting.store(false, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. Drain the scheduler: readers now get `Draining` refusals,
        //    workers finish every admitted request, then exit.
        self.shared.sched.drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // 3. Unblock readers parked in read() and join them. Responses
        //    already written stay deliverable to the peer.
        let live = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for s in live.values() {
            let _ = s.shutdown(Shutdown::Both);
        }
        drop(live);
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .readers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // 4. Final flush: an armed aggregate profile / trace reaches disk.
        rfkit_obs::flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let st = &shared.stats;
    let (mut dh, mut dm, mut du, mut de) = (0u64, 0u64, 0u64, 0usize);
    for cache in shared
        .caches
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        dh += cache.hits();
        dm += cache.misses();
        du += cache.uncacheable();
        de += cache.len();
    }
    let (ph, pm, pe) = {
        let pc = shared_plan_cache()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (pc.hits(), pc.misses(), pc.len())
    };
    StatsSnapshot {
        accepted: st.accepted.load(Ordering::Relaxed),
        rejected: st.rejected.load(Ordering::Relaxed),
        completed: st.completed.load(Ordering::Relaxed),
        degraded: st.degraded.load(Ordering::Relaxed),
        expired: st.expired.load(Ordering::Relaxed),
        protocol_errors: st.protocol_errors.load(Ordering::Relaxed),
        internal_errors: st.internal_errors.load(Ordering::Relaxed),
        in_flight: st.in_flight.load(Ordering::Relaxed),
        queue_depth: shared.sched.depth(),
        connections_opened: st.connections_opened.load(Ordering::Relaxed),
        connections_closed: st.connections_closed.load(Ordering::Relaxed),
        workers_spawned: st.workers_spawned.load(Ordering::Relaxed),
        workers_exited: st.workers_exited.load(Ordering::Relaxed),
        design_cache_hits: dh,
        design_cache_misses: dm,
        design_cache_uncacheable: du,
        design_cache_entries: de,
        plan_cache_hits: ph,
        plan_cache_misses: pm,
        plan_cache_entries: pe,
    }
}

fn acceptor_main(listener: TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if !shared.accepting.load(Ordering::Acquire) {
            break; // the shutdown wake-up connection lands here
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .stats
            .connections_opened
            .fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(raw) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(conn_id, raw);
        }
        let sh = Arc::clone(shared);
        match thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || reader_main(stream, conn_id, &sh))
        {
            Ok(h) => shared
                .readers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(h),
            Err(_) => {
                // Spawn failure: drop the connection (registry entry
                // included); the peer sees a close rather than a hang.
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&conn_id);
                shared
                    .stats
                    .connections_closed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn reader_main(mut stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => {
            finish_reader(shared, conn_id);
            return;
        }
    };
    loop {
        let payload = match protocol::read_frame(&mut stream, shared.cfg.max_frame_bytes) {
            Ok(p) => p,
            Err(e) => {
                match &e {
                    FrameError::Closed | FrameError::Io(_) => {}
                    FrameError::Truncated => shared.note_protocol_error(),
                    FrameError::Empty | FrameError::NotUtf8 | FrameError::Oversized(_) => {
                        shared.note_protocol_error();
                        writer.send(&protocol::error_response(0, &e.to_string()));
                    }
                }
                if e.recoverable() {
                    continue;
                }
                break;
            }
        };
        let request = match Request::parse(&payload) {
            Ok(r) => r,
            Err((id, msg)) => {
                shared.note_protocol_error();
                writer.send(&protocol::error_response(id, &msg));
                continue;
            }
        };
        match &request.body {
            // Cheap introspection answered inline: stats must stay
            // observable even when every worker is busy.
            RequestBody::Ping => {
                note_accepted(shared);
                let mut o = protocol::response_base(request.id, "ok");
                o.raw("result", "{\"pong\":1}");
                writer.send(&o.finish());
                note_completed(shared, false);
            }
            RequestBody::Stats => {
                note_accepted(shared);
                writer.send(&stats_response(request.id, shared));
                note_completed(shared, false);
            }
            _ => {
                let job = Job {
                    request,
                    conn: Arc::clone(&writer),
                    admitted: Instant::now(),
                };
                match shared.sched.submit(job) {
                    Ok(_depth) => note_accepted(shared),
                    Err((job, Refusal::Overloaded)) => {
                        OBS_REJECTED.add(1);
                        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        job.conn.send(&protocol::overloaded_response(
                            job.request.id,
                            shared.cfg.queue_capacity,
                        ));
                    }
                    Err((job, Refusal::Draining)) => {
                        OBS_REJECTED.add(1);
                        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        job.conn.send(&protocol::error_response(
                            job.request.id,
                            "server is shutting down",
                        ));
                    }
                }
            }
        }
    }
    finish_reader(shared, conn_id);
}

/// Retires a finished connection: drops the registry's fd clone (so the
/// close actually reaches the peer as EOF once outstanding responses are
/// written) and records the lifecycle counters.
fn finish_reader(shared: &Shared, conn_id: u64) {
    shared
        .conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);
    shared.stats.readers_exited.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .connections_closed
        .fetch_add(1, Ordering::Relaxed);
}

fn note_accepted(shared: &Shared) {
    OBS_ACCEPTED.add(1);
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
}

fn note_completed(shared: &Shared, degraded: bool) {
    OBS_COMPLETED.add(1);
    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
    if degraded {
        OBS_DEGRADED.add(1);
        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_main(worker: usize, shared: &Arc<Shared>) {
    // Per-worker warm solver state: the workspace's factorization and
    // scratch buffers persist across requests, so steady-state verify
    // sweeps allocate nothing. Compiled `StampPlan`s come from the
    // process-wide shared cache.
    let mut ws = AcWorkspace::new();
    while let Some(job) = shared.sched.next(worker) {
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let _span = rfkit_obs::span("serve.request");
        let waited_ms = job.admitted.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let deadline = job.request.deadline_ms.or(shared.cfg.default_deadline_ms);
        let payload = match deadline {
            Some(d) if waited_ms > d => {
                OBS_EXPIRED.add(1);
                shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                protocol::expired_response(job.request.id, waited_ms, d)
            }
            _ => {
                // A panicking handler must cost one structured error
                // response, never the worker thread.
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    handle(shared, &mut ws, &job.request)
                })) {
                    Ok((payload, degraded)) => {
                        note_completed(shared, degraded);
                        payload
                    }
                    Err(_) => {
                        shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                        protocol::error_response(
                            job.request.id,
                            &format!(
                                "internal error: `{}` handler panicked",
                                job.request.body.kind()
                            ),
                        )
                    }
                }
            }
        };
        OBS_LATENCY.record(job.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
        job.conn.send(&payload);
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
    shared.stats.workers_exited.fetch_add(1, Ordering::Relaxed);
}

/// Evaluates one queued request. Returns the response payload and
/// whether the outcome was flagged degraded/failed.
fn handle(shared: &Shared, ws: &mut AcWorkspace, req: &Request) -> (String, bool) {
    match &req.body {
        RequestBody::Sweep { vars, band, policy } => {
            let cache = shared.design_cache_for(band);
            let outcome = cache.evaluate_with(&shared.device, *vars, band, policy);
            sweep_response(req.id, &outcome)
        }
        RequestBody::Verify { vars, band } => verify_response(req.id, vars, band, ws),
        RequestBody::Design {
            goals,
            max_evals,
            seed,
            band,
        } => {
            let cfg = DesignConfig {
                max_evals: *max_evals,
                seed: *seed,
                band: band.clone(),
                improved: true,
            };
            let design = design_lna(&shared.device, goals, &cfg);
            (design_response(req.id, &design), false)
        }
        RequestBody::Yield {
            vars,
            band,
            spec,
            units,
            seed,
            policy,
        } => {
            let outcome = yield_analysis_robust(
                &shared.device,
                vars,
                spec,
                band,
                *units,
                &BuildConfig::default(),
                *seed,
                policy,
            );
            yield_response(req.id, &outcome)
        }
        // Inline types normally never reach a worker; answering them
        // here anyway keeps the dispatch total.
        RequestBody::Ping => {
            let mut o = protocol::response_base(req.id, "ok");
            o.raw("result", "{\"pong\":1}");
            (o.finish(), false)
        }
        RequestBody::Stats => (stats_response(req.id, shared), false),
    }
}

fn sweep_response(id: u64, outcome: &BandOutcome) -> (String, bool) {
    match outcome {
        BandOutcome::Complete(m) => {
            let mut o = protocol::response_base(id, "ok");
            o.raw("result", &protocol::metrics_json(m));
            (o.finish(), false)
        }
        BandOutcome::Degraded {
            metrics,
            diagnostics,
        } => {
            let mut o = protocol::response_base(id, "degraded");
            o.raw("result", &protocol::metrics_json(metrics));
            o.raw("diagnostics", &protocol::diagnostics_json(diagnostics));
            o.str(
                "error",
                "partial: metrics reduce over surviving grid points only",
            );
            (o.finish(), true)
        }
        BandOutcome::Infeasible => {
            let mut o = protocol::response_base(id, "infeasible");
            o.str("error", "bias point unreachable for these design variables");
            (o.finish(), false)
        }
        BandOutcome::Failed { diagnostics } => {
            let mut o = protocol::response_base(id, "failed");
            o.raw("diagnostics", &protocol::diagnostics_json(diagnostics));
            o.str(
                "error",
                &format!(
                    "{} grid points failed beyond the degrade policy",
                    diagnostics.len()
                ),
            );
            (o.finish(), true)
        }
    }
}

fn verify_response(
    id: u64,
    vars: &DesignVariables,
    band: &BandSpec,
    ws: &mut AcWorkspace,
) -> (String, bool) {
    let circuit = reference_netlist(vars);
    let freqs = band.grid();
    let batch = match cached_sweep(&circuit, freqs, ws) {
        Ok(b) => b,
        Err(e) => {
            return (
                protocol::error_response(id, &format!("netlist rejected: {e}")),
                false,
            )
        }
    };
    let mut s21_db = String::from("[");
    let mut s11_db = String::from("[");
    for p in 0..batch.len() {
        if p > 0 {
            s21_db.push(',');
            s11_db.push(',');
        }
        match batch.two_port(p) {
            Some(sp) => {
                s21_db.push_str(&fmt_f64(20.0 * sp.s21().abs().log10()));
                s11_db.push_str(&fmt_f64(20.0 * sp.s11().abs().log10()));
            }
            None => {
                s21_db.push_str("null");
                s11_db.push_str("null");
            }
        }
    }
    s21_db.push(']');
    s11_db.push(']');
    let diagnostics: Vec<PointDiagnostic> = batch
        .failures()
        .iter()
        .map(|(p, e)| PointDiagnostic {
            index: *p,
            at: freqs[*p],
            detail: e.to_string(),
        })
        .collect();
    let failed = diagnostics.len();
    let status = if failed == 0 {
        "ok"
    } else if failed < batch.len() {
        "degraded"
    } else {
        "failed"
    };
    let mut result = JsonObj::new();
    result.num("points", batch.len() as f64);
    result.num("failed", failed as f64);
    result.str("solve_path", batch.stats().path);
    result.raw("s21_db", &s21_db);
    result.raw("s11_db", &s11_db);
    let mut o = protocol::response_base(id, status);
    o.raw("result", &result.finish());
    if failed > 0 {
        o.raw("diagnostics", &protocol::diagnostics_json(&diagnostics));
    }
    (o.finish(), failed > 0)
}

fn design_response(id: u64, design: &LnaDesign) -> String {
    let mut result = JsonObj::new();
    result.raw("snapped", &protocol::vars_json(&design.snapped));
    result.raw("continuous", &protocol::vars_json(&design.continuous));
    result.raw(
        "snapped_metrics",
        &protocol::metrics_json(&design.snapped_metrics),
    );
    result.raw(
        "continuous_metrics",
        &protocol::metrics_json(&design.continuous_metrics),
    );
    result.num("attainment", design.attainment);
    result.num("evaluations", design.evaluations as f64);
    let mut o = protocol::response_base(id, "ok");
    o.raw("result", &result.finish());
    o.finish()
}

fn yield_response(id: u64, outcome: &YieldOutcome) -> (String, bool) {
    let r = &outcome.report;
    let mut result = JsonObj::new();
    result.num("units", r.units as f64);
    result.num("passing", r.passing as f64);
    result.num("yield_fraction", r.yield_fraction());
    result.raw(
        "failures",
        &protocol::f64_array_json(&r.failures.map(|n| n as f64)),
    );
    match r.dominant_failure() {
        Some(name) => result.str("dominant_failure", name),
        None => result.raw("dominant_failure", "null"),
    }
    result.num("excluded_units", outcome.diagnostics.len() as f64);
    let status = if outcome.degraded { "degraded" } else { "ok" };
    let mut o = protocol::response_base(id, status);
    o.raw("result", &result.finish());
    if !outcome.diagnostics.is_empty() {
        o.raw(
            "diagnostics",
            &protocol::diagnostics_json(&outcome.diagnostics),
        );
    }
    (o.finish(), outcome.degraded)
}

fn stats_response(id: u64, shared: &Shared) -> String {
    let s = snapshot(shared);
    let mut design_cache = JsonObj::new();
    design_cache.num("hits", s.design_cache_hits as f64);
    design_cache.num("misses", s.design_cache_misses as f64);
    design_cache.num("uncacheable", s.design_cache_uncacheable as f64);
    design_cache.num("entries", s.design_cache_entries as f64);
    let mut plan_cache = JsonObj::new();
    plan_cache.num("hits", s.plan_cache_hits as f64);
    plan_cache.num("misses", s.plan_cache_misses as f64);
    plan_cache.num("entries", s.plan_cache_entries as f64);
    let mut result = JsonObj::new();
    result.num("accepted", s.accepted as f64);
    result.num("rejected", s.rejected as f64);
    result.num("completed", s.completed as f64);
    result.num("degraded", s.degraded as f64);
    result.num("expired", s.expired as f64);
    result.num("protocol_errors", s.protocol_errors as f64);
    result.num("internal_errors", s.internal_errors as f64);
    result.num("in_flight", s.in_flight as f64);
    result.num("queue_depth", s.queue_depth as f64);
    result.num("workers", s.workers_spawned as f64);
    result.num("pool_threads", rfkit_par::num_threads() as f64);
    result.raw("design_cache", &design_cache.finish());
    result.raw("plan_cache", &plan_cache.finish());
    let mut o = protocol::response_base(id, "ok");
    o.raw("result", &result.finish());
    o.finish()
}
