//! Minimal blocking client for the framed protocol, plus request
//! builders — the same helpers the tests and `bench_serve` use.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use lna::DesignVariables;
use rfkit_obs::json::JsonObj;

use crate::protocol::{self, FrameError, Response, DEFAULT_MAX_FRAME_BYTES};

/// A blocking connection to a [`crate::Server`].
///
/// `call` is the simple request/response mode; `send` + `recv` allow
/// pipelining (responses are matched by `id`, and may arrive out of
/// request order when the server runs several workers).
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends one request payload as a frame.
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        protocol::write_frame(&mut self.stream, payload)
    }

    /// Reads the next response frame, unparsed.
    pub fn recv_raw(&mut self) -> io::Result<String> {
        protocol::read_frame(&mut self.stream, self.max_frame).map_err(|e| match e {
            FrameError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })
    }

    /// Reads and parses the next response frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let raw = self.recv_raw()?;
        Response::parse(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One request, one response (no pipelining).
    pub fn call(&mut self, payload: &str) -> io::Result<Response> {
        self.send(payload)?;
        self.recv()
    }

    /// One request, one raw response payload — determinism tests compare
    /// these byte-for-byte.
    pub fn call_raw(&mut self, payload: &str) -> io::Result<String> {
        self.send(payload)?;
        self.recv_raw()
    }
}

fn base(id: u64, kind: &str) -> JsonObj {
    let mut o = JsonObj::new();
    o.num("id", id as f64);
    o.str("type", kind);
    o
}

fn band_json(band: (f64, f64, usize)) -> String {
    let mut b = JsonObj::new();
    b.num("f_lo", band.0);
    b.num("f_hi", band.1);
    b.num("points", band.2 as f64);
    b.finish()
}

/// Builds a `sweep` request. `band` is `(f_lo, f_hi, points)` (`None` =
/// the GNSS band); `max_fail_frac` selects a lenient degrade policy.
pub fn sweep_json(
    id: u64,
    vars: &DesignVariables,
    band: Option<(f64, f64, usize)>,
    max_fail_frac: Option<f64>,
) -> String {
    let mut o = base(id, "sweep");
    o.raw("vars", &protocol::vars_json(vars));
    if let Some(b) = band {
        o.raw("band", &band_json(b));
    }
    if let Some(frac) = max_fail_frac {
        let mut p = JsonObj::new();
        p.num("max_fail_frac", frac);
        o.raw("policy", &p.finish());
    }
    o.finish()
}

/// Builds a `verify` request (netlist sweep through the shared plan
/// cache).
pub fn verify_json(id: u64, vars: &DesignVariables, band: Option<(f64, f64, usize)>) -> String {
    let mut o = base(id, "verify");
    o.raw("vars", &protocol::vars_json(vars));
    if let Some(b) = band {
        o.raw("band", &band_json(b));
    }
    o.finish()
}

/// Builds a `design` request with the default objective spec.
pub fn design_json(id: u64, max_evals: usize, seed: u64) -> String {
    let mut o = base(id, "design");
    o.num("max_evals", max_evals as f64);
    o.num("seed", seed as f64);
    o.finish()
}

/// Builds a `yield` request.
pub fn yield_json(id: u64, vars: &DesignVariables, units: usize, seed: u64) -> String {
    let mut o = base(id, "yield");
    o.raw("vars", &protocol::vars_json(vars));
    o.num("units", units as f64);
    o.num("seed", seed as f64);
    o.finish()
}

/// Builds a `stats` request.
pub fn stats_json(id: u64) -> String {
    base(id, "stats").finish()
}

/// Builds a `ping` request.
pub fn ping_json(id: u64) -> String {
    base(id, "ping").finish()
}
