//! Property-based tests on the device models: physical invariants that
//! must hold at any bias and frequency. Cases come from a fixed-seed
//! `Rng64` stream (the workspace builds offline, so no proptest), which
//! keeps every run reproducible.

use rfkit_device::dc::{all_models, gds, gm};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_num::rng::Rng64;
use rfkit_num::Complex;

#[test]
fn dc_models_nonnegative_current_and_conductances() {
    let models = all_models();
    let mut rng = Rng64::new(0xde1c_0001);
    for _ in 0..48 {
        let m = &models[rng.index(5)];
        let vgs = rng.uniform(-1.5, 0.8);
        let vds = rng.uniform(0.0, 4.0);
        let p = m.default_params();
        let i = m.ids(&p, vgs, vds);
        assert!(i >= -1e-12, "{}: negative current {i}", m.name());
        assert!(i < 1.0, "{}: absurd current {i}", m.name());
        if vds > 0.05 {
            assert!(
                gm(m.as_ref(), &p, vgs, vds) >= -1e-6,
                "{}: negative gm",
                m.name()
            );
            // Published models legitimately produce a few mS of *negative*
            // output conductance at strong forward gate drive: the Curtice
            // cubic through its V1 = Vgs(1 + β(Vds0 − Vds)) feedback, the
            // TOM through its δ·Vds·I0 self-heating-style denominator.
            // Bound the effect rather than forbid it.
            assert!(
                gds(m.as_ref(), &p, vgs, vds) >= -8e-3,
                "{}: excessive negative gds",
                m.name()
            );
        }
    }
}

#[test]
fn dc_current_monotone_in_vgs() {
    let models = all_models();
    let mut rng = Rng64::new(0xde1c_0002);
    for _ in 0..48 {
        let m = &models[rng.index(5)];
        let vgs = rng.uniform(-1.2, 0.5);
        let dv = rng.uniform(0.01, 0.3);
        let vds = rng.uniform(0.5, 4.0);
        let p = m.default_params();
        assert!(
            m.ids(&p, vgs + dv, vds) >= m.ids(&p, vgs, vds) - 1e-9,
            "{}: Ids must not fall as Vgs rises",
            m.name()
        );
    }
}

#[test]
fn golden_device_noise_params_physical() {
    let d = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xde1c_0003);
    for _ in 0..48 {
        let ids_ma = rng.uniform(12.0, 78.0);
        let vds = rng.uniform(2.0, 4.0);
        let f_ghz = rng.uniform(0.5, 6.0);
        let vgs = d.bias_for_current(vds, ids_ma * 1e-3).expect("in range");
        let op = d.operating_point(vgs, vds);
        let np = d
            .noisy_two_port(f_ghz * 1e9, &op)
            .noise_params(50.0)
            .unwrap();
        assert!(np.fmin >= 1.0, "Fmin >= 1");
        assert!(np.fmin < 10.0, "Fmin sane: {}", np.fmin);
        assert!(np.rn > 0.0 && np.rn < 200.0, "Rn = {}", np.rn);
        assert!(np.gamma_opt.abs() < 1.0, "|Γopt| < 1");
        // F(Γs) >= Fmin for a scatter of sources.
        for k in 0..6 {
            let gs = Complex::from_polar(0.6, k as f64);
            assert!(np.noise_factor(gs) >= np.fmin - 1e-9);
        }
    }
}

#[test]
fn two_port_reciprocity_violated_only_by_gm() {
    // An active FET must NOT be reciprocal (S21 != S12), and the
    // forward path must dominate.
    let d = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xde1c_0004);
    for _ in 0..48 {
        let ids_ma = rng.uniform(12.0, 78.0);
        let f_ghz = rng.uniform(0.5, 6.0);
        let vgs = d.bias_for_current(3.0, ids_ma * 1e-3).unwrap();
        let op = d.operating_point(vgs, 3.0);
        let s = d.noisy_two_port(f_ghz * 1e9, &op).abcd.to_s(50.0).unwrap();
        assert!(s.s21().abs() > s.s12().abs(), "forward dominates reverse");
        assert!(!s.is_reciprocal(1e-3));
    }
}

#[test]
fn noise_monotone_in_drain_temperature() {
    let d = Phemt::atf54143_like();
    let op = d.operating_point(d.bias_for_current(3.0, 0.05).unwrap(), 3.0);
    let ss = d.small_signal(&op);
    let mut rng = Rng64::new(0xde1c_0005);
    for _ in 0..48 {
        let td1 = rng.uniform(300.0, 1500.0);
        let dt = rng.uniform(100.0, 2000.0);
        let f_ghz = rng.uniform(0.8, 4.0);
        let f = |td: f64| {
            ss.noisy_two_port(
                f_ghz * 1e9,
                &NoiseTemperatures {
                    td,
                    ..Default::default()
                },
            )
            .noise_params(50.0)
            .unwrap()
            .fmin
        };
        assert!(f(td1 + dt) >= f(td1) - 1e-12);
    }
}

#[test]
fn bias_solver_inverts_dc_model() {
    let d = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xde1c_0006);
    for _ in 0..48 {
        let ids_ma = rng.uniform(5.0, 90.0);
        let vds = rng.uniform(1.0, 4.0);
        if let Some(vgs) = d.bias_for_current(vds, ids_ma * 1e-3) {
            let i = d.operating_point(vgs, vds).ids;
            assert!((i - ids_ma * 1e-3).abs() < 1e-6);
        }
    }
}

#[test]
fn ft_positive_and_finite() {
    let d = Phemt::atf54143_like();
    let mut rng = Rng64::new(0xde1c_0007);
    for _ in 0..48 {
        let ids_ma = rng.uniform(12.0, 78.0);
        let op = d.operating_point(d.bias_for_current(3.0, ids_ma * 1e-3).unwrap(), 3.0);
        let ft = d.small_signal(&op).intrinsic.ft();
        assert!(ft > 1e9 && ft < 200e9, "fT = {ft}");
    }
}
