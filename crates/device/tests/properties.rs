//! Property-based tests on the device models: physical invariants that
//! must hold at any bias and frequency.

use proptest::prelude::*;
use rfkit_device::dc::{all_models, gds, gm};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_num::Complex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dc_models_nonnegative_current_and_conductances(
        model_idx in 0usize..5,
        vgs in -1.5..0.8f64,
        vds in 0.0..4.0f64,
    ) {
        let models = all_models();
        let m = &models[model_idx];
        let p = m.default_params();
        let i = m.ids(&p, vgs, vds);
        prop_assert!(i >= -1e-12, "{}: negative current {i}", m.name());
        prop_assert!(i < 1.0, "{}: absurd current {i}", m.name());
        if vds > 0.05 {
            prop_assert!(gm(m.as_ref(), &p, vgs, vds) >= -1e-6, "{}: negative gm", m.name());
            // Published models legitimately produce a few mS of *negative*
            // output conductance at strong forward gate drive: the Curtice
            // cubic through its V1 = Vgs(1 + β(Vds0 − Vds)) feedback, the
            // TOM through its δ·Vds·I0 self-heating-style denominator.
            // Bound the effect rather than forbid it.
            prop_assert!(
                gds(m.as_ref(), &p, vgs, vds) >= -8e-3,
                "{}: excessive negative gds", m.name()
            );
        }
    }

    #[test]
    fn dc_current_monotone_in_vgs(
        model_idx in 0usize..5,
        vgs in -1.2..0.5f64,
        dv in 0.01..0.3f64,
        vds in 0.5..4.0f64,
    ) {
        let models = all_models();
        let m = &models[model_idx];
        let p = m.default_params();
        prop_assert!(
            m.ids(&p, vgs + dv, vds) >= m.ids(&p, vgs, vds) - 1e-9,
            "{}: Ids must not fall as Vgs rises", m.name()
        );
    }

    #[test]
    fn golden_device_noise_params_physical(
        ids_ma in 12.0..78.0f64,
        vds in 2.0..4.0f64,
        f_ghz in 0.5..6.0f64,
    ) {
        let d = Phemt::atf54143_like();
        let vgs = d.bias_for_current(vds, ids_ma * 1e-3).expect("in range");
        let op = d.operating_point(vgs, vds);
        let np = d.noisy_two_port(f_ghz * 1e9, &op).noise_params(50.0).unwrap();
        prop_assert!(np.fmin >= 1.0, "Fmin >= 1");
        prop_assert!(np.fmin < 10.0, "Fmin sane: {}", np.fmin);
        prop_assert!(np.rn > 0.0 && np.rn < 200.0, "Rn = {}", np.rn);
        prop_assert!(np.gamma_opt.abs() < 1.0, "|Γopt| < 1");
        // F(Γs) >= Fmin for a scatter of sources.
        for k in 0..6 {
            let gs = Complex::from_polar(0.6, k as f64);
            prop_assert!(np.noise_factor(gs) >= np.fmin - 1e-9);
        }
    }

    #[test]
    fn two_port_reciprocity_violated_only_by_gm(
        ids_ma in 12.0..78.0f64,
        f_ghz in 0.5..6.0f64,
    ) {
        // An active FET must NOT be reciprocal (S21 != S12), and the
        // forward path must dominate.
        let d = Phemt::atf54143_like();
        let vgs = d.bias_for_current(3.0, ids_ma * 1e-3).unwrap();
        let op = d.operating_point(vgs, 3.0);
        let s = d.noisy_two_port(f_ghz * 1e9, &op).abcd.to_s(50.0).unwrap();
        prop_assert!(s.s21().abs() > s.s12().abs(), "forward dominates reverse");
        prop_assert!(!s.is_reciprocal(1e-3));
    }

    #[test]
    fn noise_monotone_in_drain_temperature(
        td1 in 300.0..1500.0f64,
        dt in 100.0..2000.0f64,
        f_ghz in 0.8..4.0f64,
    ) {
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, 0.05).unwrap(), 3.0);
        let ss = d.small_signal(&op);
        let f = |td: f64| {
            ss.noisy_two_port(f_ghz * 1e9, &NoiseTemperatures {
                td, ..Default::default()
            })
            .noise_params(50.0)
            .unwrap()
            .fmin
        };
        prop_assert!(f(td1 + dt) >= f(td1) - 1e-12);
    }

    #[test]
    fn bias_solver_inverts_dc_model(
        ids_ma in 5.0..90.0f64,
        vds in 1.0..4.0f64,
    ) {
        let d = Phemt::atf54143_like();
        if let Some(vgs) = d.bias_for_current(vds, ids_ma * 1e-3) {
            let i = d.operating_point(vgs, vds).ids;
            prop_assert!((i - ids_ma * 1e-3).abs() < 1e-6);
        }
    }

    #[test]
    fn ft_positive_and_finite(
        ids_ma in 12.0..78.0f64,
    ) {
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, ids_ma * 1e-3).unwrap(), 3.0);
        let ft = d.small_signal(&op).intrinsic.ft();
        prop_assert!(ft > 1e9 && ft < 200e9, "fT = {ft}");
    }
}
