//! Large-signal DC drain-current models for pHEMTs.
//!
//! The paper's first step extracts model parameters "including comparisons
//! among several models"; this module implements the five classic FET DC
//! models the comparison needs. Each model is a stateless equation object
//! ([`DcModel`], object safe) that evaluates `I_ds(p, V_gs, V_ds)` for a
//! parameter vector `p` — the extraction machinery in `rfkit-extract`
//! optimizes `p` directly.
//!
//! Conventions: N-channel depletion-mode device, `V_ds ≥ 0` (forward
//! active), currents in amperes, voltages in volts.

use rfkit_opt::Bounds;

/// A DC drain-current equation with named, bounded parameters.
pub trait DcModel: Send + Sync {
    /// Model name for tables and reports.
    fn name(&self) -> &'static str;

    /// Parameter names, in the order `ids` expects them.
    fn param_names(&self) -> &'static [&'static str];

    /// A physically sensible default parameter vector (used to seed
    /// extraction and tests).
    fn default_params(&self) -> Vec<f64>;

    /// Box bounds for extraction.
    fn param_bounds(&self) -> Bounds;

    /// Drain current (A) at the given gate-source / drain-source voltages.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len()` differs from
    /// `param_names().len()`.
    fn ids(&self, params: &[f64], vgs: f64, vds: f64) -> f64;
}

/// Transconductance `∂I_ds/∂V_gs` by central difference.
pub fn gm(model: &dyn DcModel, params: &[f64], vgs: f64, vds: f64) -> f64 {
    let h = 1e-5;
    (model.ids(params, vgs + h, vds) - model.ids(params, vgs - h, vds)) / (2.0 * h)
}

/// Output conductance `∂I_ds/∂V_ds` by central difference.
pub fn gds(model: &dyn DcModel, params: &[f64], vgs: f64, vds: f64) -> f64 {
    let h = 1e-5;
    (model.ids(params, vgs, vds + h) - model.ids(params, vgs, vds - h)) / (2.0 * h)
}

/// Second-order transconductance `∂²I_ds/∂V_gs²` (drives second-order
/// intermodulation).
pub fn gm2(model: &dyn DcModel, params: &[f64], vgs: f64, vds: f64) -> f64 {
    let h = 2e-4;
    (model.ids(params, vgs + h, vds) - 2.0 * model.ids(params, vgs, vds)
        + model.ids(params, vgs - h, vds))
        / (h * h)
}

/// Third-order transconductance `∂³I_ds/∂V_gs³` (drives IM3).
pub fn gm3(model: &dyn DcModel, params: &[f64], vgs: f64, vds: f64) -> f64 {
    let h = 1e-3;
    (model.ids(params, vgs + 2.0 * h, vds) - 2.0 * model.ids(params, vgs + h, vds)
        + 2.0 * model.ids(params, vgs - h, vds)
        - model.ids(params, vgs - 2.0 * h, vds))
        / (2.0 * h * h * h)
}

/// Solves `V_gs` such that `I_ds(V_gs, V_ds) = target` by bisection over
/// `[v_lo, v_hi]`. Returns `None` when the target is not bracketed
/// (current is monotone in `V_gs` for all five models).
pub fn vgs_for_current(
    model: &dyn DcModel,
    params: &[f64],
    vds: f64,
    target: f64,
    v_lo: f64,
    v_hi: f64,
) -> Option<f64> {
    let f_lo = model.ids(params, v_lo, vds) - target;
    let f_hi = model.ids(params, v_hi, vds) - target;
    if f_lo * f_hi > 0.0 {
        return None;
    }
    let (mut lo, mut hi) = (v_lo, v_hi);
    let mut f_lo = f_lo;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let f_mid = model.ids(params, mid, vds) - target;
        if f_mid.abs() < 1e-12 {
            return Some(mid);
        }
        if f_lo * f_mid <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
            f_lo = f_mid;
        }
    }
    Some(0.5 * (lo + hi))
}

fn check_len(params: &[f64], expect: usize, model: &str) {
    assert_eq!(
        params.len(),
        expect,
        "{model} expects {expect} parameters, got {}",
        params.len()
    );
}

/// Curtice quadratic model (1980):
/// `I_ds = β(V_gs − V_t)²·(1 + λV_ds)·tanh(αV_ds)` for `V_gs > V_t`.
///
/// Parameters: `[beta, vt, lambda, alpha]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurticeQuadratic;

impl DcModel for CurticeQuadratic {
    fn name(&self) -> &'static str {
        "Curtice quadratic"
    }
    fn param_names(&self) -> &'static [&'static str] {
        &["beta", "vt", "lambda", "alpha"]
    }
    fn default_params(&self) -> Vec<f64> {
        vec![0.12, -0.55, 0.05, 2.5]
    }
    fn param_bounds(&self) -> Bounds {
        Bounds::new(vec![1e-3, -2.0, 0.0, 0.2], vec![2.0, 0.5, 0.5, 10.0]).expect("valid")
    }
    fn ids(&self, p: &[f64], vgs: f64, vds: f64) -> f64 {
        check_len(p, 4, self.name());
        let (beta, vt, lambda, alpha) = (p[0], p[1], p[2], p[3]);
        let vov = vgs - vt;
        if vov <= 0.0 {
            return 0.0;
        }
        beta * vov * vov * (1.0 + lambda * vds) * (alpha * vds).tanh()
    }
}

/// Curtice cubic model (1985):
/// `I_ds = (A₀ + A₁V₁ + A₂V₁² + A₃V₁³)·tanh(γV_ds)` with
/// `V₁ = V_gs·(1 + β(V_ds0 − V_ds))`, clamped at zero.
///
/// Parameters: `[a0, a1, a2, a3, gamma, beta, vds0]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurticeCubic;

impl DcModel for CurticeCubic {
    fn name(&self) -> &'static str {
        "Curtice cubic"
    }
    fn param_names(&self) -> &'static [&'static str] {
        &["a0", "a1", "a2", "a3", "gamma", "beta", "vds0"]
    }
    fn default_params(&self) -> Vec<f64> {
        vec![0.045, 0.16, 0.12, -0.04, 2.0, 0.02, 2.0]
    }
    fn param_bounds(&self) -> Bounds {
        Bounds::new(
            vec![-0.2, 0.0, -1.0, -1.0, 0.2, -0.2, 0.5],
            vec![0.5, 1.5, 1.5, 1.0, 10.0, 0.2, 5.0],
        )
        .expect("valid")
    }
    fn ids(&self, p: &[f64], vgs: f64, vds: f64) -> f64 {
        check_len(p, 7, self.name());
        let (a0, a1, a2, a3, gamma, beta, vds0) = (p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
        let mut v1 = vgs * (1.0 + beta * (vds0 - vds));
        // The fitted cubic is only physical on its monotone-increasing
        // interval; clamp V1 to the stationary points so the current
        // saturates below pinch-off and above forward drive instead of
        // turning over (Curtice–Ettenberg restrict the fit range the same
        // way).
        if a3 < 0.0 {
            let disc = a2 * a2 - 3.0 * a3 * a1;
            if disc >= 0.0 {
                let root = disc.sqrt();
                // poly' = a1 + 2a2 v + 3a3 v²; with a3 < 0 it is positive
                // between the two stationary points.
                let r1 = (-a2 + root) / (3.0 * a3);
                let r2 = (-a2 - root) / (3.0 * a3);
                let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
                v1 = v1.clamp(lo, hi);
            }
        }
        let poly = a0 + a1 * v1 + a2 * v1 * v1 + a3 * v1 * v1 * v1;
        (poly.max(0.0)) * (gamma * vds).tanh()
    }
}

/// Statz (Raytheon) model (1987):
/// `I_ds = β(V_gs − V_t)²/(1 + b(V_gs − V_t))·(1 + λV_ds)·K(V_ds)` with the
/// polynomial knee `K = 1 − (1 − αV_ds/3)³` for `V_ds < 3/α`, else 1.
///
/// Parameters: `[beta, vt, b, lambda, alpha]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Statz;

impl DcModel for Statz {
    fn name(&self) -> &'static str {
        "Statz"
    }
    fn param_names(&self) -> &'static [&'static str] {
        &["beta", "vt", "b", "lambda", "alpha"]
    }
    fn default_params(&self) -> Vec<f64> {
        vec![0.15, -0.55, 0.9, 0.05, 2.5]
    }
    fn param_bounds(&self) -> Bounds {
        Bounds::new(
            vec![1e-3, -2.0, 0.0, 0.0, 0.2],
            vec![2.0, 0.5, 10.0, 0.5, 10.0],
        )
        .expect("valid")
    }
    fn ids(&self, p: &[f64], vgs: f64, vds: f64) -> f64 {
        check_len(p, 5, self.name());
        let (beta, vt, b, lambda, alpha) = (p[0], p[1], p[2], p[3], p[4]);
        let vov = vgs - vt;
        if vov <= 0.0 {
            return 0.0;
        }
        let knee = if vds < 3.0 / alpha {
            let t = 1.0 - alpha * vds / 3.0;
            1.0 - t * t * t
        } else {
            1.0
        };
        beta * vov * vov / (1.0 + b * vov) * (1.0 + lambda * vds) * knee
    }
}

/// TriQuint TOM model (1990):
/// `I_ds = I₀/(1 + δ·V_ds·I₀)` with
/// `I₀ = β(V_gs − V_t + γV_ds)^Q·tanh(αV_ds)`.
///
/// Parameters: `[beta, vt, gamma, q, alpha, delta]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tom;

impl DcModel for Tom {
    fn name(&self) -> &'static str {
        "TOM"
    }
    fn param_names(&self) -> &'static [&'static str] {
        &["beta", "vt", "gamma", "q", "alpha", "delta"]
    }
    fn default_params(&self) -> Vec<f64> {
        vec![0.12, -0.6, 0.02, 2.0, 2.5, 0.2]
    }
    fn param_bounds(&self) -> Bounds {
        Bounds::new(
            vec![1e-3, -2.0, -0.2, 1.0, 0.2, 0.0],
            vec![2.0, 0.5, 0.2, 3.5, 10.0, 5.0],
        )
        .expect("valid")
    }
    fn ids(&self, p: &[f64], vgs: f64, vds: f64) -> f64 {
        check_len(p, 6, self.name());
        let (beta, vt, gamma, q, alpha, delta) = (p[0], p[1], p[2], p[3], p[4], p[5]);
        let vov = vgs - vt + gamma * vds;
        if vov <= 0.0 {
            return 0.0;
        }
        let i0 = beta * vov.powf(q) * (alpha * vds).tanh();
        i0 / (1.0 + delta * vds * i0)
    }
}

/// Angelov (Chalmers) model (1992):
/// `I_ds = I_pk·(1 + tanh(ψ))·(1 + λV_ds)·tanh(αV_ds)` with
/// `ψ = P₁(V_gs − V_pk) + P₂(V_gs − V_pk)² + P₃(V_gs − V_pk)³`.
///
/// The hyperbolic-tangent gm bell makes this the preferred pHEMT model —
/// and the golden reference device in this reproduction is an Angelov
/// instance.
///
/// Parameters: `[ipk, vpk, p1, p2, p3, lambda, alpha]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Angelov;

impl DcModel for Angelov {
    fn name(&self) -> &'static str {
        "Angelov"
    }
    fn param_names(&self) -> &'static [&'static str] {
        &["ipk", "vpk", "p1", "p2", "p3", "lambda", "alpha"]
    }
    fn default_params(&self) -> Vec<f64> {
        vec![0.10, -0.18, 2.2, 0.25, -0.15, 0.04, 3.0]
    }
    fn param_bounds(&self) -> Bounds {
        Bounds::new(
            vec![5e-3, -1.5, 0.3, -3.0, -5.0, 0.0, 0.2],
            vec![1.0, 0.8, 8.0, 3.0, 5.0, 0.5, 10.0],
        )
        .expect("valid")
    }
    fn ids(&self, p: &[f64], vgs: f64, vds: f64) -> f64 {
        check_len(p, 7, self.name());
        let (ipk, vpk, p1, p2, p3, lambda, alpha) = (p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
        let mut dv = vgs - vpk;
        // Like the Curtice cubic, the cubic ψ is only physical on its
        // monotone-increasing interval: clamp ΔV at the stationary points
        // so a compressive P3 cannot resurrect current below pinch-off.
        if p3 < 0.0 {
            let disc = p2 * p2 - 3.0 * p3 * p1;
            if disc >= 0.0 {
                let root = disc.sqrt();
                let r1 = (-p2 + root) / (3.0 * p3);
                let r2 = (-p2 - root) / (3.0 * p3);
                let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
                dv = dv.clamp(lo, hi);
            }
        }
        let psi = p1 * dv + p2 * dv * dv + p3 * dv * dv * dv;
        ipk * (1.0 + psi.tanh()) * (1.0 + lambda * vds) * (alpha * vds).tanh()
    }
}

/// All five models as trait objects, for comparison sweeps.
pub fn all_models() -> Vec<Box<dyn DcModel>> {
    vec![
        Box::new(CurticeQuadratic),
        Box::new(CurticeCubic),
        Box::new(Statz),
        Box::new(Tom),
        Box::new(Angelov),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<Box<dyn DcModel>> {
        all_models()
    }

    #[test]
    fn zero_vds_gives_zero_current() {
        for m in models() {
            let p = m.default_params();
            let i = m.ids(&p, 0.0, 0.0);
            assert!(i.abs() < 1e-12, "{}: Ids(Vds=0) = {i}", m.name());
        }
    }

    #[test]
    fn deep_pinchoff_gives_zero_or_tiny_current() {
        for m in models() {
            let p = m.default_params();
            let i = m.ids(&p, -3.0, 2.0);
            let i_on = m.ids(&p, 0.3, 2.0);
            assert!(
                i < 0.02 * i_on,
                "{}: pinch-off current {i} vs on-current {i_on}",
                m.name()
            );
        }
    }

    #[test]
    fn current_increases_with_vgs() {
        for m in models() {
            let p = m.default_params();
            let mut last = -1.0;
            for k in 0..10 {
                let vgs = -0.8 + 0.12 * k as f64;
                let i = m.ids(&p, vgs, 2.0);
                assert!(
                    i >= last - 1e-9,
                    "{}: Ids not monotone at Vgs = {vgs}",
                    m.name()
                );
                last = i;
            }
        }
    }

    #[test]
    fn current_saturates_with_vds() {
        for m in models() {
            let p = m.default_params();
            let i1 = m.ids(&p, 0.2, 1.5);
            let i2 = m.ids(&p, 0.2, 3.0);
            // Saturation: doubling Vds changes Ids by < 40 %.
            assert!(
                (i2 - i1).abs() / i1 < 0.4,
                "{}: not saturated, {i1} → {i2}",
                m.name()
            );
            // Triode: far below the knee the current is much smaller.
            let i_lin = m.ids(&p, 0.2, 0.1);
            assert!(i_lin < 0.6 * i1, "{}: no knee, {i_lin} vs {i1}", m.name());
        }
    }

    #[test]
    fn gm_positive_in_active_region() {
        for m in models() {
            let p = m.default_params();
            let g = gm(m.as_ref(), &p, 0.0, 2.0);
            assert!(g > 1e-3, "{}: gm = {g}", m.name());
        }
    }

    #[test]
    fn gds_positive_and_small_in_saturation() {
        for m in models() {
            let p = m.default_params();
            let g = gds(m.as_ref(), &p, 0.0, 2.0);
            let gm_v = gm(m.as_ref(), &p, 0.0, 2.0);
            assert!(g >= 0.0, "{}: gds = {g}", m.name());
            assert!(
                g < gm_v,
                "{}: gds {g} should be well below gm {gm_v}",
                m.name()
            );
        }
    }

    #[test]
    fn angelov_gm_peaks_at_vpk() {
        let m = Angelov;
        let p = m.default_params();
        let vpk = p[1];
        let g_peak = gm(&m, &p, vpk, 2.0);
        // With the cubic ψ the exact peak shifts slightly; sample around it.
        for dv in [-0.3, 0.3] {
            let g = gm(&m, &p, vpk + dv, 2.0);
            assert!(g < g_peak * 1.05, "gm({dv:+}) = {g} vs peak {g_peak}");
        }
    }

    #[test]
    fn angelov_realistic_bias_point() {
        // The golden parameter set should put ~40-80 mA at Vgs=0.55 V... we
        // use Vgs near Vpk: Ids(Vpk) = Ipk·(1+λVds)·tanh(αVds) ≈ Ipk.
        let m = Angelov;
        let p = m.default_params();
        let i = m.ids(&p, p[1], 3.0);
        assert!((i - 0.10).abs() < 0.03, "Ids(Vpk) = {i}");
    }

    #[test]
    fn gm3_changes_sign_through_the_bell() {
        // Third derivative of the Angelov tanh characteristic is positive
        // well below Vpk and negative near/above it — the classic IM3
        // sweet-spot structure.
        let m = Angelov;
        let p = m.default_params();
        let low = gm3(&m, &p, p[1] - 0.5, 2.0);
        let high = gm3(&m, &p, p[1], 2.0);
        assert!(low > 0.0, "gm3 below pinch = {low}");
        assert!(high < 0.0, "gm3 at peak = {high}");
    }

    #[test]
    fn vgs_for_current_inverts_ids() {
        for m in models() {
            let p = m.default_params();
            let target = 0.5 * m.ids(&p, 0.3, 2.0);
            let vgs = vgs_for_current(m.as_ref(), &p, 2.0, target, -2.0, 0.8).expect("bracketed");
            let i = m.ids(&p, vgs, 2.0);
            assert!(
                (i - target).abs() / target < 1e-6,
                "{}: {i} vs {target}",
                m.name()
            );
        }
    }

    #[test]
    fn vgs_for_current_unbracketed_returns_none() {
        let m = Angelov;
        let p = m.default_params();
        assert!(vgs_for_current(&m, &p, 2.0, 10.0, -2.0, 0.8).is_none());
    }

    #[test]
    fn default_params_inside_bounds() {
        for m in models() {
            let b = m.param_bounds();
            assert!(
                b.contains(&m.default_params()),
                "{}: defaults outside bounds",
                m.name()
            );
            assert_eq!(b.dim(), m.param_names().len(), "{}", m.name());
        }
    }

    #[test]
    #[should_panic(expected = "parameters")]
    fn wrong_param_count_panics() {
        Angelov.ids(&[0.1, 0.2], 0.0, 1.0);
    }
}
