//! # rfkit-device
//!
//! pHEMT device models for the GNSS LNA reproduction:
//!
//! * five classic DC drain-current models — Curtice quadratic/cubic,
//!   Statz, TOM and Angelov — behind one object-safe trait ([`dc`]);
//! * the small-signal equivalent circuit with extrinsic shell and the
//!   Pospieszalski two-temperature noise model via correlation matrices
//!   ([`smallsignal`]);
//! * Fukui's empirical noise formula as a cross-check ([`fukui`]);
//! * the packaged-device abstraction tying DC bias to small-signal and
//!   noise behaviour ([`phemt`](crate::Phemt));
//! * the golden reference device producing simulated DC/S-parameter/noise
//!   "measurements" for the extraction experiments ([`golden`]).
//!
//! ## Example
//!
//! ```
//! use rfkit_device::Phemt;
//!
//! let d = Phemt::atf54143_like();
//! let vgs = d.bias_for_current(3.0, 0.060).expect("60 mA bias exists");
//! let op = d.operating_point(vgs, 3.0);
//! let s = d.noisy_two_port(1.575e9, &op).abcd.to_s(50.0)?;
//! assert!(s.s21().abs() > 3.0); // a real amplifier at GPS L1
//! # Ok::<(), rfkit_net::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dc;
pub mod fukui;
pub mod golden;
mod phemt;
pub mod smallsignal;

pub use dc::DcModel;
pub use golden::{DcSample, GoldenDevice, MeasurementNoise};
pub use phemt::{CapacitanceModel, NoiseModel, OperatingPoint, Phemt};
pub use smallsignal::{Extrinsic, Intrinsic, NoiseTemperatures, SmallSignalDevice};
