//! The golden reference device and its simulated measurements.
//!
//! The paper extracts model parameters from DC I-V and S-parameter
//! measurements of a physical pHEMT. This reproduction has no network
//! analyzer, so a fixed Angelov-model device ([`Phemt::atf54143_like`])
//! plays the role of the physical part, and this module produces the data
//! a characterization bench would: DC grids, S-parameter sweeps and noise
//! parameters — all with configurable, reproducible instrument noise.

use crate::phemt::Phemt;
use rfkit_net::{NoiseParams, SParams};
use rfkit_num::rng::Rng64;
use rfkit_num::{linspace, Complex};

/// One sample of a DC I-V characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcSample {
    /// Gate-source voltage (V).
    pub vgs: f64,
    /// Drain-source voltage (V).
    pub vds: f64,
    /// Measured drain current (A).
    pub ids: f64,
}

/// Instrument-noise configuration for the simulated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementNoise {
    /// Relative DC current noise (standard deviation, e.g. 0.005 = 0.5 %).
    pub dc_relative: f64,
    /// Absolute S-parameter noise per real/imag component (linear).
    pub sparam_absolute: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MeasurementNoise {
    fn default() -> Self {
        MeasurementNoise {
            dc_relative: 0.005,
            sparam_absolute: 0.005,
            seed: 0x901d,
        }
    }
}

impl MeasurementNoise {
    /// A noiseless "measurement" (for validating extractors).
    pub fn none() -> Self {
        MeasurementNoise {
            dc_relative: 0.0,
            sparam_absolute: 0.0,
            seed: 0,
        }
    }
}

fn gaussian(rng: &mut Rng64) -> f64 {
    // Marsaglia polar method.
    loop {
        let u: f64 = rng.uniform(-1.0, 1.0);
        let v: f64 = rng.uniform(-1.0, 1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The golden device together with its measurement bench.
pub struct GoldenDevice {
    /// The underlying "physical" device.
    pub device: Phemt,
}

impl Default for GoldenDevice {
    fn default() -> Self {
        GoldenDevice {
            device: Phemt::atf54143_like(),
        }
    }
}

impl GoldenDevice {
    /// The standard characterization bias grid: V_gs from −0.8 to 0.4 V
    /// (11 points), V_ds from 0 to 4 V (11 points).
    pub fn standard_iv_grid() -> (Vec<f64>, Vec<f64>) {
        (linspace(-0.8, 0.4, 11), linspace(0.0, 4.0, 11))
    }

    /// The standard S-parameter frequency grid: 0.5–6 GHz, 23 points.
    pub fn standard_freq_grid() -> Vec<f64> {
        linspace(0.5e9, 6.0e9, 23)
    }

    /// Simulated DC I-V measurement over the cartesian product of the
    /// given bias grids.
    pub fn measure_dc(
        &self,
        vgs_grid: &[f64],
        vds_grid: &[f64],
        noise: &MeasurementNoise,
    ) -> Vec<DcSample> {
        let mut rng = Rng64::new(noise.seed);
        let mut out = Vec::with_capacity(vgs_grid.len() * vds_grid.len());
        for &vgs in vgs_grid {
            for &vds in vds_grid {
                let ids_true = self.device.dc_model.ids(&self.device.dc_params, vgs, vds);
                // Relative noise plus a 1 µA ammeter floor.
                let sigma = noise.dc_relative * ids_true.abs() + 1e-6 * noise.dc_relative * 200.0;
                let ids = ids_true + sigma * gaussian(&mut rng);
                out.push(DcSample { vgs, vds, ids });
            }
        }
        out
    }

    /// Simulated 2-port S-parameter measurement at bias `(vgs, vds)` over
    /// `freqs`, referenced to 50 Ω.
    pub fn measure_sparams(
        &self,
        vgs: f64,
        vds: f64,
        freqs: &[f64],
        noise: &MeasurementNoise,
    ) -> Vec<(f64, SParams)> {
        let mut rng = Rng64::new(noise.seed.wrapping_add(1));
        let op = self.device.operating_point(vgs, vds);
        freqs
            .iter()
            .map(|&f| {
                let s = self
                    .device
                    .noisy_two_port(f, &op)
                    .abcd
                    .to_s(50.0)
                    .expect("golden device has S form");
                let jitter = |rng: &mut Rng64| {
                    Complex::new(
                        noise.sparam_absolute * gaussian(rng),
                        noise.sparam_absolute * gaussian(rng),
                    )
                };
                let noisy = SParams::new(
                    s.s11() + jitter(&mut rng),
                    s.s12() + jitter(&mut rng),
                    s.s21() + jitter(&mut rng),
                    s.s22() + jitter(&mut rng),
                    50.0,
                );
                (f, noisy)
            })
            .collect()
    }

    /// Simulated noise-parameter measurement at bias `(vgs, vds)` over
    /// `freqs` (source-pull + noise-figure meter emulation; returned
    /// noiseless — NF meters average heavily).
    pub fn measure_noise_params(
        &self,
        vgs: f64,
        vds: f64,
        freqs: &[f64],
    ) -> Vec<(f64, NoiseParams)> {
        let op = self.device.operating_point(vgs, vds);
        freqs
            .iter()
            .map(|&f| {
                let np = self
                    .device
                    .noisy_two_port(f, &op)
                    .noise_params(50.0)
                    .expect("golden device yields noise params");
                (f, np)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::stats;

    #[test]
    fn dc_grid_covers_all_bias_pairs() {
        let g = GoldenDevice::default();
        let (vgs, vds) = GoldenDevice::standard_iv_grid();
        let data = g.measure_dc(&vgs, &vds, &MeasurementNoise::none());
        assert_eq!(data.len(), 121);
        // Noiseless data reproduces the model exactly.
        for s in &data {
            let truth = g.device.dc_model.ids(&g.device.dc_params, s.vgs, s.vds);
            assert_eq!(s.ids, truth);
        }
    }

    #[test]
    fn dc_noise_statistics_match_configuration() {
        let g = GoldenDevice::default();
        let noise = MeasurementNoise {
            dc_relative: 0.01,
            ..Default::default()
        };
        // Sample the same bias many times through the grid trick: one bias
        // repeated via a grid of identical values is not possible (strictly
        // increasing grids are not required here), so use many seeds.
        let mut errors = Vec::new();
        for seed in 0..200 {
            let data = g.measure_dc(&[0.0], &[3.0], &MeasurementNoise { seed, ..noise });
            let truth = g.device.dc_model.ids(&g.device.dc_params, 0.0, 3.0);
            errors.push((data[0].ids - truth) / truth);
        }
        let sd = stats::std_dev(&errors);
        assert!((sd - 0.01).abs() < 0.004, "sd = {sd}");
        assert!(
            stats::mean(&errors).abs() < 0.005,
            "bias = {}",
            stats::mean(&errors)
        );
    }

    #[test]
    fn sparams_reproducible_for_fixed_seed() {
        let g = GoldenDevice::default();
        let freqs = GoldenDevice::standard_freq_grid();
        let a = g.measure_sparams(-0.3, 3.0, &freqs, &MeasurementNoise::default());
        let b = g.measure_sparams(-0.3, 3.0, &freqs, &MeasurementNoise::default());
        assert_eq!(a.len(), b.len());
        for ((fa, sa), (fb, sb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(sa.s21(), sb.s21());
        }
    }

    #[test]
    fn sparam_noise_perturbs_but_preserves_shape() {
        let g = GoldenDevice::default();
        let freqs = [1.5e9];
        let vgs = g.device.bias_for_current(3.0, 0.06).unwrap();
        let clean = g.measure_sparams(vgs, 3.0, &freqs, &MeasurementNoise::none());
        let noisy = g.measure_sparams(vgs, 3.0, &freqs, &MeasurementNoise::default());
        let ds21 = (clean[0].1.s21() - noisy[0].1.s21()).abs();
        assert!(ds21 > 0.0, "noise must perturb");
        assert!(ds21 < 0.1, "but only slightly: {ds21}");
        // The device still looks like an amplifier.
        assert!(noisy[0].1.s21().abs() > 3.0);
    }

    #[test]
    fn noise_params_physical_across_band() {
        let g = GoldenDevice::default();
        let vgs = g.device.bias_for_current(3.0, 0.04).unwrap();
        let rows = g.measure_noise_params(vgs, 3.0, &GoldenDevice::standard_freq_grid());
        for (f, np) in &rows {
            assert!(np.fmin >= 1.0, "Fmin >= 1 at {f}");
            assert!(np.rn > 0.0 && np.rn < 100.0, "Rn = {} at {f}", np.rn);
            assert!(np.gamma_opt.abs() < 1.0, "|Γopt| < 1 at {f}");
        }
        // NFmin grows monotonically-ish across the band; check endpoints.
        assert!(rows.last().unwrap().1.fmin > rows[0].1.fmin);
    }
}
