//! Fukui's empirical minimum-noise-figure formula.
//!
//! Fukui (1979): `F_min = 1 + k_f·(f/f_T)·sqrt(g_m·(R_g + R_s))` with a
//! single empirical fitting factor `k_f` (≈ 2–3 for GaAs HEMTs). The suite
//! uses it as a sanity cross-check on the Pospieszalski correlation-matrix
//! result — the two should agree within tens of percent at the band of
//! interest once `k_f` is fitted.

use crate::smallsignal::SmallSignalDevice;

/// Fukui's minimum noise factor (linear) for the device at `freq_hz` with
/// fitting factor `kf`.
///
/// # Panics
///
/// Panics on non-positive frequency.
pub fn fukui_fmin(device: &SmallSignalDevice, freq_hz: f64, kf: f64) -> f64 {
    assert!(freq_hz > 0.0, "frequency must be positive");
    let ft = device.intrinsic.ft();
    let r_total = device.extrinsic.rg + device.extrinsic.rs + device.intrinsic.ri;
    1.0 + kf * (freq_hz / ft) * (device.intrinsic.gm * r_total).sqrt()
}

/// Fits the Fukui factor `k_f` so the formula matches a reference `F_min`
/// at one frequency; returns the fitted factor.
///
/// # Panics
///
/// Panics if `fmin_ref < 1`.
pub fn fit_kf(device: &SmallSignalDevice, freq_hz: f64, fmin_ref: f64) -> f64 {
    assert!(fmin_ref >= 1.0, "noise factor must be >= 1");
    let base = fukui_fmin(device, freq_hz, 1.0) - 1.0;
    if base <= 0.0 {
        return 0.0;
    }
    (fmin_ref - 1.0) / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallsignal::{Extrinsic, Intrinsic, NoiseTemperatures};

    fn device() -> SmallSignalDevice {
        SmallSignalDevice {
            intrinsic: Intrinsic {
                gm: 0.22,
                gds: 0.008,
                cgs: 1.8e-12,
                cgd: 0.22e-12,
                cds: 0.28e-12,
                ri: 1.4,
                tau: 2.0e-12,
            },
            extrinsic: Extrinsic {
                rg: 1.0,
                rd: 2.0,
                rs: 0.55,
                lg: 0.45e-9,
                ld: 0.45e-9,
                ls: 0.22e-9,
                cpg: 0.25e-12,
                cpd: 0.25e-12,
            },
        }
    }

    #[test]
    fn fmin_grows_linearly_with_frequency() {
        let d = device();
        let f1 = fukui_fmin(&d, 1e9, 2.5) - 1.0;
        let f2 = fukui_fmin(&d, 2e9, 2.5) - 1.0;
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fmin_in_reasonable_range_at_gnss() {
        let d = device();
        let f = fukui_fmin(&d, 1.575e9, 2.5);
        let nf_db = 10.0 * f.log10();
        assert!(nf_db > 0.1 && nf_db < 1.5, "Fukui NFmin = {nf_db} dB");
    }

    #[test]
    fn fitted_kf_reproduces_reference() {
        let d = device();
        let kf = fit_kf(&d, 1.5e9, 1.12);
        let back = fukui_fmin(&d, 1.5e9, kf);
        assert!((back - 1.12).abs() < 1e-12);
        assert!(kf > 0.5 && kf < 6.0, "kf = {kf}");
    }

    #[test]
    fn fukui_and_pospieszalski_agree_within_factor() {
        // Fit kf at 1 GHz against the correlation-matrix result, then
        // compare at 3 GHz: both scale ~linearly in f, so they should stay
        // within ~25 %.
        let d = device();
        let temps = NoiseTemperatures::default();
        let posp = |f: f64| d.noisy_two_port(f, &temps).noise_params(50.0).unwrap().fmin;
        let kf = fit_kf(&d, 1.0e9, posp(1.0e9));
        let fukui3 = fukui_fmin(&d, 3.0e9, kf) - 1.0;
        let posp3 = posp(3.0e9) - 1.0;
        let ratio = fukui3 / posp3;
        assert!(
            (0.75..=1.33).contains(&ratio),
            "Fukui/Pospieszalski excess-noise ratio at 3 GHz = {ratio}"
        );
    }

    #[test]
    fn lower_parasitics_mean_lower_noise() {
        let d = device();
        let mut clean = d;
        clean.extrinsic.rg = 0.2;
        clean.extrinsic.rs = 0.1;
        assert!(fukui_fmin(&clean, 1.5e9, 2.5) < fukui_fmin(&d, 1.5e9, 2.5));
    }
}
