//! A complete packaged pHEMT: DC model, bias-dependent capacitances,
//! extrinsic shell and bias-dependent noise, tied together so the design
//! flow can ask "give me the noisy two-port at (V_ds, I_ds)".

use crate::dc::{self, DcModel};
use crate::smallsignal::{Extrinsic, Intrinsic, NoiseTemperatures, SmallSignalDevice};
use rfkit_net::NoisyAbcd;

/// Bias-dependent capacitance law (simplified Angelov form): Cgs grows as
/// the channel opens, Cgd shrinks with drain voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitanceModel {
    /// Cgs at full channel opening (F).
    pub cgs_max: f64,
    /// Cgs floor deep in pinch-off (F).
    pub cgs_min: f64,
    /// Gate voltage where Cgs is halfway (V).
    pub cgs_vm: f64,
    /// Transition steepness (1/V).
    pub cgs_slope: f64,
    /// Zero-bias gate-drain capacitance (F).
    pub cgd0: f64,
    /// Drain-voltage scale of the Cgd roll-off (V).
    pub cgd_vb: f64,
    /// Drain-source capacitance (F), bias independent.
    pub cds: f64,
}

impl CapacitanceModel {
    /// Gate-source capacitance at `vgs`.
    pub fn cgs(&self, vgs: f64) -> f64 {
        self.cgs_min
            + (self.cgs_max - self.cgs_min)
                * 0.5
                * (1.0 + ((vgs - self.cgs_vm) * self.cgs_slope).tanh())
    }

    /// Gate-drain capacitance at `vds`.
    pub fn cgd(&self, vds: f64) -> f64 {
        self.cgd0 / (1.0 + vds / self.cgd_vb)
    }
}

/// Bias-dependent Pospieszalski drain temperature: `Td` scales linearly
/// with drain current (hot electrons), floored at ambient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Gate temperature (K), near ambient.
    pub tg: f64,
    /// Drain temperature (K) at the reference current.
    pub td0: f64,
    /// Reference drain current (A) for `td0`.
    pub ids_ref: f64,
    /// Ambient temperature (K).
    pub ambient: f64,
}

impl NoiseModel {
    /// Noise temperatures at drain current `ids`.
    pub fn temperatures(&self, ids: f64) -> NoiseTemperatures {
        NoiseTemperatures {
            tg: self.tg,
            td: (self.td0 * ids / self.ids_ref).max(self.ambient),
            ambient: self.ambient,
        }
    }
}

/// The DC operating point and the small-signal/nonlinear quantities
/// derived from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Gate-source voltage (V).
    pub vgs: f64,
    /// Drain-source voltage (V).
    pub vds: f64,
    /// Drain current (A).
    pub ids: f64,
    /// Transconductance (S).
    pub gm: f64,
    /// Output conductance (S).
    pub gds: f64,
    /// Second-order transconductance (A/V²).
    pub gm2: f64,
    /// Third-order transconductance (A/V³).
    pub gm3: f64,
}

/// A complete packaged pHEMT.
pub struct Phemt {
    /// The DC drain-current equation.
    pub dc_model: Box<dyn DcModel>,
    /// Its parameter vector.
    pub dc_params: Vec<f64>,
    /// Bias-dependent capacitances.
    pub cap: CapacitanceModel,
    /// Intrinsic channel resistance (Ω).
    pub ri: f64,
    /// Transconductance delay (s).
    pub tau: f64,
    /// Extrinsic parasitic shell.
    pub extrinsic: Extrinsic,
    /// Noise-temperature model.
    pub noise: NoiseModel,
}

impl std::fmt::Debug for Phemt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phemt")
            .field("dc_model", &self.dc_model.name())
            .field("dc_params", &self.dc_params)
            .field("cap", &self.cap)
            .field("ri", &self.ri)
            .field("tau", &self.tau)
            .field("extrinsic", &self.extrinsic)
            .field("noise", &self.noise)
            .finish()
    }
}

impl Phemt {
    /// An ATF-54143-class low-noise enhancement... depletion pHEMT, the
    /// golden reference device of this reproduction (Angelov DC model).
    pub fn atf54143_like() -> Phemt {
        Phemt {
            dc_model: Box::new(dc::Angelov),
            dc_params: dc::Angelov.default_params(),
            cap: CapacitanceModel {
                cgs_max: 2.0e-12,
                cgs_min: 0.9e-12,
                cgs_vm: -0.45,
                cgs_slope: 4.0,
                cgd0: 0.28e-12,
                cgd_vb: 2.2,
                cds: 0.28e-12,
            },
            ri: 1.4,
            tau: 2.0e-12,
            extrinsic: Extrinsic {
                rg: 1.0,
                rd: 2.0,
                rs: 0.55,
                lg: 0.45e-9,
                ld: 0.45e-9,
                ls: 0.22e-9,
                cpg: 0.25e-12,
                cpd: 0.25e-12,
            },
            noise: NoiseModel {
                tg: 300.0,
                td0: 3200.0,
                ids_ref: 0.06,
                ambient: 296.5,
            },
        }
    }

    /// Evaluates the operating point at `(vgs, vds)`.
    pub fn operating_point(&self, vgs: f64, vds: f64) -> OperatingPoint {
        let m = self.dc_model.as_ref();
        OperatingPoint {
            vgs,
            vds,
            ids: m.ids(&self.dc_params, vgs, vds),
            gm: dc::gm(m, &self.dc_params, vgs, vds),
            gds: dc::gds(m, &self.dc_params, vgs, vds),
            gm2: dc::gm2(m, &self.dc_params, vgs, vds),
            gm3: dc::gm3(m, &self.dc_params, vgs, vds),
        }
    }

    /// Finds the gate voltage that sets drain current `ids` at `vds`.
    /// Returns `None` when the current is outside the device's range.
    pub fn bias_for_current(&self, vds: f64, ids: f64) -> Option<f64> {
        dc::vgs_for_current(self.dc_model.as_ref(), &self.dc_params, vds, ids, -2.0, 1.0)
    }

    /// The small-signal equivalent circuit at the operating point.
    pub fn small_signal(&self, op: &OperatingPoint) -> SmallSignalDevice {
        SmallSignalDevice {
            intrinsic: Intrinsic {
                gm: op.gm,
                gds: op.gds.max(1e-6),
                cgs: self.cap.cgs(op.vgs),
                cgd: self.cap.cgd(op.vds),
                cds: self.cap.cds,
                ri: self.ri,
                tau: self.tau,
            },
            extrinsic: self.extrinsic,
        }
    }

    /// The noisy linear two-port at frequency `freq_hz` and the given
    /// operating point.
    pub fn noisy_two_port(&self, freq_hz: f64, op: &OperatingPoint) -> NoisyAbcd {
        self.small_signal(op)
            .noisy_two_port(freq_hz, &self.noise.temperatures(op.ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_num::units::db_from_power_ratio;
    use rfkit_num::Complex;

    #[test]
    fn bias_inversion_roundtrip() {
        let d = Phemt::atf54143_like();
        let vgs = d.bias_for_current(3.0, 0.060).expect("60 mA reachable");
        let op = d.operating_point(vgs, 3.0);
        assert!((op.ids - 0.060).abs() < 1e-6, "Ids = {}", op.ids);
    }

    #[test]
    fn gm_grows_with_bias_current() {
        let d = Phemt::atf54143_like();
        let op20 = d.operating_point(d.bias_for_current(3.0, 0.020).unwrap(), 3.0);
        let op60 = d.operating_point(d.bias_for_current(3.0, 0.060).unwrap(), 3.0);
        assert!(op60.gm > op20.gm, "{} vs {}", op60.gm, op20.gm);
        // And gm is in the right ballpark at 60 mA.
        assert!(op60.gm > 0.1 && op60.gm < 0.5, "gm = {}", op60.gm);
    }

    #[test]
    fn capacitances_follow_bias() {
        let d = Phemt::atf54143_like();
        assert!(d.cap.cgs(0.2) > d.cap.cgs(-0.8), "Cgs grows with Vgs");
        assert!(d.cap.cgd(1.0) > d.cap.cgd(4.0), "Cgd shrinks with Vds");
        assert!(d.cap.cgs(-3.0) >= d.cap.cgs_min * 0.99);
        assert!(d.cap.cgs(1.0) <= d.cap.cgs_max * 1.01);
    }

    #[test]
    fn noise_temperature_scales_with_current() {
        let d = Phemt::atf54143_like();
        let t20 = d.noise.temperatures(0.020);
        let t80 = d.noise.temperatures(0.080);
        assert!(t80.td > t20.td);
        assert!((t80.td / t20.td - 4.0).abs() < 1e-9);
        // Floor at ambient for tiny currents.
        assert_eq!(d.noise.temperatures(1e-6).td, d.noise.ambient);
    }

    #[test]
    fn gain_and_noise_tradeoff_across_bias() {
        // Classic LNA physics: more current → more gain but (past the NF
        // optimum) more noise.
        let d = Phemt::atf54143_like();
        let f = 1.5e9;
        let mut last_gain = 0.0;
        let results: Vec<(f64, f64)> = [0.015, 0.040, 0.080]
            .iter()
            .map(|&ids| {
                let op = d.operating_point(d.bias_for_current(3.0, ids).unwrap(), 3.0);
                let tp = d.noisy_two_port(f, &op);
                let s = tp.abcd.to_s(50.0).unwrap();
                let gain = db_from_power_ratio(s.s21().norm_sqr());
                let nf = tp.noise_params(50.0).unwrap().nf_min_db();
                (gain, nf)
            })
            .collect();
        for (gain, _) in &results {
            assert!(*gain > last_gain, "gain should grow with bias current");
            last_gain = *gain;
        }
        // Noise rises from 40 mA to 80 mA (hot channel dominates).
        assert!(results[2].1 > results[1].1, "NF(80 mA) > NF(40 mA)");
    }

    #[test]
    fn nfmin_at_gnss_band_is_sub_decibel() {
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, 0.040).unwrap(), 3.0);
        let np = d.noisy_two_port(1.575e9, &op).noise_params(50.0).unwrap();
        let nf = np.nf_min_db();
        assert!(nf > 0.15 && nf < 1.0, "NFmin = {nf} dB");
    }

    #[test]
    fn two_port_is_active_at_gnss() {
        let d = Phemt::atf54143_like();
        let op = d.operating_point(d.bias_for_current(3.0, 0.060).unwrap(), 3.0);
        let s = d.noisy_two_port(1.575e9, &op).abcd.to_s(50.0).unwrap();
        assert!(!s.is_passive(1e-9));
        assert!(s.s21().abs() > 3.0);
        let _ = Complex::ZERO;
    }

    #[test]
    fn gm3_negative_near_peak_gm_bias() {
        // At typical LNA bias the device sits below peak gm where gm3 > 0 —
        // or above it where gm3 < 0; the sweet spot between them is what
        // two-tone sweeps exploit. Just pin the signs at the extremes.
        let d = Phemt::atf54143_like();
        let low = d.operating_point(-0.7, 3.0);
        let high = d.operating_point(-0.1, 3.0);
        assert!(low.gm3 > 0.0, "gm3 at low bias = {}", low.gm3);
        assert!(high.gm3 < 0.0, "gm3 at high bias = {}", high.gm3);
    }

    #[test]
    fn debug_impl_names_the_model() {
        let d = Phemt::atf54143_like();
        let s = format!("{d:?}");
        assert!(s.contains("Angelov"));
    }
}
