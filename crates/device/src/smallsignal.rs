//! Small-signal equivalent circuit of a packaged pHEMT, with the
//! Pospieszalski two-temperature noise model.
//!
//! The intrinsic FET (Cgs–Ri gate branch, delayed transconductance, Cds,
//! gds, Cgd feedback) is wrapped in the standard extrinsic shell: series
//! R+L on gate, drain and common source lead, plus package pad
//! capacitances. Noise comes from exactly two temperatures — the gate
//! resistance Ri at `Tg` and the output conductance gds at `Td` — which is
//! Pospieszalski's model, evaluated here through correlation matrices so
//! the extrinsic shell's thermal noise is handled consistently.

use rfkit_net::{Abcd, NoisyAbcd, SParams, YParams, ZParams, M2};
use rfkit_num::units::{angular, K_BOLTZMANN};
use rfkit_num::Complex;

/// Intrinsic small-signal elements at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intrinsic {
    /// Transconductance (S).
    pub gm: f64,
    /// Output conductance (S).
    pub gds: f64,
    /// Gate-source capacitance (F).
    pub cgs: f64,
    /// Gate-drain (feedback) capacitance (F).
    pub cgd: f64,
    /// Drain-source capacitance (F).
    pub cds: f64,
    /// Intrinsic gate (channel) resistance in series with Cgs (Ω).
    pub ri: f64,
    /// Transconductance delay (s).
    pub tau: f64,
}

impl Intrinsic {
    /// Intrinsic Y-parameters at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequency.
    pub fn y_params(&self, freq_hz: f64) -> YParams {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let w = angular(freq_hz);
        let jw = Complex::imag(w);
        // Gate branch admittance: Cgs in series with Ri.
        let den = Complex::ONE + jw * Complex::real(self.ri * self.cgs);
        let y_gs = jw * Complex::real(self.cgs) / den;
        let y_gd = jw * Complex::real(self.cgd);
        let y_ds = Complex::real(self.gds) + jw * Complex::real(self.cds);
        // Delayed transconductance referred to the Cgs voltage.
        let gm_eff = Complex::from_polar(self.gm, -w * self.tau) / den;
        YParams::new(y_gs + y_gd, -y_gd, gm_eff - y_gd, y_ds + y_gd)
    }

    /// Intrinsic cutoff frequency `f_T = gm / (2π·(Cgs + Cgd))`.
    pub fn ft(&self) -> f64 {
        self.gm / (2.0 * std::f64::consts::PI * (self.cgs + self.cgd))
    }

    /// Y-form noise-correlation matrix of the intrinsic device per
    /// Pospieszalski: `Ri` at temperature `tg`, `gds` at `td` (one-sided,
    /// A²/Hz).
    ///
    /// Derivation (ports shorted): the Ri thermal voltage `e` drives the
    /// gate branch current `y_gs·e` into port 1 and, through the controlled
    /// source, `g_m·e/(1 + jωR_iC_gs)` into port 2, giving fully correlated
    /// gate/drain terms; the drain conductance adds `4kT_d·g_ds`
    /// uncorrelated at port 2.
    pub fn noise_cy(&self, freq_hz: f64, tg: f64, td: f64) -> M2 {
        let w = angular(freq_hz);
        let jw = Complex::imag(w);
        let den = Complex::ONE + jw * Complex::real(self.ri * self.cgs);
        let y_gs = jw * Complex::real(self.cgs) / den;
        let gm_eff = Complex::from_polar(self.gm, -w * self.tau) / den;
        let se = 4.0 * K_BOLTZMANN * tg * self.ri; // V²/Hz of the Ri source
        let c11 = Complex::real(y_gs.norm_sqr() * se);
        let c12 = y_gs * gm_eff.conj() * Complex::real(se);
        let c22 = Complex::real(gm_eff.norm_sqr() * se + 4.0 * K_BOLTZMANN * td * self.gds);
        M2::new(c11, c12, c12.conj(), c22)
    }
}

/// Extrinsic parasitic shell of the packaged device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrinsic {
    /// Gate series resistance (Ω).
    pub rg: f64,
    /// Drain series resistance (Ω).
    pub rd: f64,
    /// Source (common-lead) series resistance (Ω).
    pub rs: f64,
    /// Gate bond/lead inductance (H).
    pub lg: f64,
    /// Drain bond/lead inductance (H).
    pub ld: f64,
    /// Source via/lead inductance (H).
    pub ls: f64,
    /// Gate pad capacitance (F).
    pub cpg: f64,
    /// Drain pad capacitance (F).
    pub cpd: f64,
}

impl Extrinsic {
    /// A zero shell (bare intrinsic device).
    pub fn none() -> Self {
        Extrinsic {
            rg: 0.0,
            rd: 0.0,
            rs: 0.0,
            lg: 0.0,
            ld: 0.0,
            ls: 0.0,
            cpg: 0.0,
            cpd: 0.0,
        }
    }
}

/// Temperatures of the Pospieszalski noise model plus the ambient for the
/// extrinsic (parasitic) resistances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseTemperatures {
    /// Gate (Ri) temperature, typically near ambient (K).
    pub tg: f64,
    /// Drain (gds) temperature, typically 1000–3000 K and bias dependent.
    pub td: f64,
    /// Ambient temperature of the extrinsic resistances (K).
    pub ambient: f64,
}

impl Default for NoiseTemperatures {
    fn default() -> Self {
        NoiseTemperatures {
            tg: 300.0,
            td: 1500.0,
            ambient: 296.5,
        }
    }
}

/// A complete small-signal device: intrinsic elements plus extrinsic shell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallSignalDevice {
    /// Intrinsic elements.
    pub intrinsic: Intrinsic,
    /// Extrinsic shell.
    pub extrinsic: Extrinsic,
}

impl SmallSignalDevice {
    /// Noiseless two-port (S-parameters at `z0`) at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the embedding hits a singular conversion, which does not
    /// occur for physical element values.
    pub fn s_params(&self, freq_hz: f64, z0: f64) -> SParams {
        self.noisy_two_port(freq_hz, &NoiseTemperatures::default())
            .abcd
            .to_s(z0)
            .expect("physical device has an S form")
    }

    /// Noisy two-port (chain matrix + chain correlation matrix) at
    /// `freq_hz` with the given noise temperatures.
    ///
    /// Embedding order (input → output):
    /// `Cpg ∥ — Rg+Lg — [intrinsic ⊕ (Rs+Ls) common lead] — Rd+Ld — ∥ Cpd`.
    pub fn noisy_two_port(&self, freq_hz: f64, temps: &NoiseTemperatures) -> NoisyAbcd {
        let w = angular(freq_hz);
        let jw = Complex::imag(w);
        let i = &self.intrinsic;
        let e = &self.extrinsic;

        // Intrinsic Y + CY → Z + CZ, then add the common source lead
        // (appears in both loops: Z += Zs·ones, CZ += 4kT·Rs·ones).
        let y = i.y_params(freq_hz);
        let cy = i.noise_cy(freq_hz, temps.tg, temps.td);
        let z = y.to_z().expect("intrinsic Y invertible");
        let cz = rfkit_net::correlation::cy_to_cz(&cy, &z);
        let zs = Complex::new(e.rs, w * e.ls);
        let ones = M2::new(Complex::ONE, Complex::ONE, Complex::ONE, Complex::ONE);
        let z_total = ZParams {
            m: z.m.add(&ones.scale(zs)),
        };
        let sn = 4.0 * K_BOLTZMANN * temps.ambient * e.rs;
        let cz_total = cz.add(&ones.scale(Complex::real(sn)));
        let core =
            NoisyAbcd::from_z_correlation(&z_total, &cz_total).expect("intrinsic Z21 nonzero");

        // Gate and drain series elements, pad shunts.
        let gate = NoisyAbcd::passive_series(Complex::new(e.rg, w * e.lg), temps.ambient);
        let drain = NoisyAbcd::passive_series(Complex::new(e.rd, w * e.ld), temps.ambient);
        let pad_g = NoisyAbcd::passive_shunt(jw * Complex::real(e.cpg), temps.ambient);
        let pad_d = NoisyAbcd::passive_shunt(jw * Complex::real(e.cpd), temps.ambient);

        pad_g
            .cascade(&gate)
            .cascade(&core)
            .cascade(&drain)
            .cascade(&pad_d)
    }

    /// Noiseless chain matrix at `freq_hz`.
    pub fn abcd(&self, freq_hz: f64) -> Abcd {
        self.noisy_two_port(freq_hz, &NoiseTemperatures::default())
            .abcd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfkit_net::gains::transducer_gain;
    use rfkit_net::stability::rollett_k;
    use rfkit_num::units::db_from_power_ratio;

    /// ATF-54143-class small-signal values at Vds = 3 V, Ids = 60 mA.
    fn typical() -> SmallSignalDevice {
        SmallSignalDevice {
            intrinsic: Intrinsic {
                gm: 0.22,
                gds: 0.008,
                cgs: 1.8e-12,
                cgd: 0.22e-12,
                cds: 0.28e-12,
                ri: 1.4,
                tau: 2.0e-12,
            },
            extrinsic: Extrinsic {
                rg: 1.0,
                rd: 2.0,
                rs: 0.55,
                lg: 0.45e-9,
                ld: 0.45e-9,
                ls: 0.22e-9,
                cpg: 0.25e-12,
                cpd: 0.25e-12,
            },
        }
    }

    #[test]
    fn ft_is_in_the_tens_of_gigahertz() {
        let d = typical();
        let ft = d.intrinsic.ft();
        assert!(ft > 10e9 && ft < 60e9, "fT = {ft}");
    }

    #[test]
    fn s21_gain_realistic_at_gnss() {
        let d = typical();
        let s = d.s_params(1.5e9, 50.0);
        let g_db = db_from_power_ratio(s.s21().norm_sqr());
        // ATF-54143 datasheet: |S21|² ≈ 16–18 dB at 1.5 GHz.
        assert!(g_db > 12.0 && g_db < 22.0, "|S21|² = {g_db} dB");
        // Inverting amplifier: S21 phase near 180° minus delay at low f.
        assert!(s.s21().arg().abs() > std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn gain_rolls_off_with_frequency() {
        let d = typical();
        let g1 = d.s_params(1.0e9, 50.0).s21().abs();
        let g4 = d.s_params(4.0e9, 50.0).s21().abs();
        let g10 = d.s_params(10.0e9, 50.0).s21().abs();
        assert!(g1 > g4 && g4 > g10, "{g1} > {g4} > {g10} expected");
    }

    #[test]
    fn input_reflection_high_at_low_frequency() {
        // A FET gate is nearly open at low frequency: |S11| → 1.
        let d = typical();
        let s = d.s_params(0.2e9, 50.0);
        assert!(s.s11().abs() > 0.9, "|S11| = {}", s.s11().abs());
        // And capacitive (negative phase).
        assert!(s.s11().arg() < 0.0);
    }

    #[test]
    fn reverse_isolation_much_better_than_forward_gain() {
        let d = typical();
        let s = d.s_params(1.5e9, 50.0);
        assert!(
            s.s12().abs() < 0.1 * s.s21().abs(),
            "S12 = {}, S21 = {}",
            s.s12().abs(),
            s.s21().abs()
        );
    }

    #[test]
    fn source_inductance_improves_stability() {
        let mut d = typical();
        d.extrinsic.ls = 0.0;
        let k_without = rollett_k(&d.s_params(1.5e9, 50.0));
        d.extrinsic.ls = 0.6e-9;
        let k_with = rollett_k(&d.s_params(1.5e9, 50.0));
        assert!(
            k_with > k_without,
            "series feedback should raise K: {k_without} → {k_with}"
        );
    }

    #[test]
    fn nf_min_realistic_and_rising_with_frequency() {
        let d = typical();
        let temps = NoiseTemperatures::default();
        let np1 = d.noisy_two_port(1.5e9, &temps).noise_params(50.0).unwrap();
        let nf1 = np1.nf_min_db();
        // ATF-54143 class: NFmin ≈ 0.3–0.9 dB at 1.5 GHz.
        assert!(nf1 > 0.1 && nf1 < 1.2, "NFmin(1.5 GHz) = {nf1} dB");
        let np4 = d.noisy_two_port(4.0e9, &temps).noise_params(50.0).unwrap();
        assert!(np4.nf_min_db() > nf1, "NFmin must rise with frequency");
    }

    #[test]
    fn gamma_opt_is_inductive_region() {
        // For a pHEMT, Γopt sits in the upper (inductive-source) half of
        // the Smith chart at low GHz.
        let d = typical();
        let np = d
            .noisy_two_port(1.5e9, &NoiseTemperatures::default())
            .noise_params(50.0)
            .unwrap();
        assert!(np.gamma_opt.abs() > 0.1 && np.gamma_opt.abs() < 0.9);
        assert!(np.gamma_opt.im > 0.0, "Γopt = {}", np.gamma_opt);
    }

    #[test]
    fn hotter_drain_is_noisier() {
        let d = typical();
        let cool = NoiseTemperatures {
            td: 800.0,
            ..Default::default()
        };
        let hot = NoiseTemperatures {
            td: 3000.0,
            ..Default::default()
        };
        let nf_cool = d
            .noisy_two_port(1.5e9, &cool)
            .noise_params(50.0)
            .unwrap()
            .fmin;
        let nf_hot = d
            .noisy_two_port(1.5e9, &hot)
            .noise_params(50.0)
            .unwrap()
            .fmin;
        assert!(nf_hot > nf_cool);
    }

    #[test]
    fn zero_kelvin_device_is_noiseless() {
        let mut d = typical();
        // Also silence the extrinsic resistors by freezing ambient.
        let temps = NoiseTemperatures {
            tg: 0.0,
            td: 0.0,
            ambient: 0.0,
        };
        d.extrinsic.rg = 1.0; // still resistive, but at 0 K
        let np = d.noisy_two_port(1.5e9, &temps).noise_params(50.0).unwrap();
        assert!((np.fmin - 1.0).abs() < 1e-9, "Fmin = {}", np.fmin);
    }

    #[test]
    fn transducer_gain_into_matched_system_positive() {
        let d = typical();
        let s = d.s_params(1.575e9, 50.0);
        let gt = transducer_gain(&s, Complex::ZERO, Complex::ZERO);
        assert!(db_from_power_ratio(gt) > 10.0);
    }

    #[test]
    fn pad_capacitance_matters_at_high_frequency() {
        let with = typical();
        let mut without = typical();
        without.extrinsic.cpg = 0.0;
        without.extrinsic.cpd = 0.0;
        let s_with = with.s_params(10e9, 50.0);
        let s_without = without.s_params(10e9, 50.0);
        assert!(
            (s_with.s11() - s_without.s11()).abs() > 0.02,
            "pads should shift S11 at 10 GHz"
        );
    }

    #[test]
    fn bare_intrinsic_device_works() {
        let d = SmallSignalDevice {
            intrinsic: typical().intrinsic,
            extrinsic: Extrinsic::none(),
        };
        let s = d.s_params(2e9, 50.0);
        assert!(s.s21().abs() > 1.0);
    }
}
