//! **T5 — T-splitter dual-output front end** (paper: "passive elements …
//! including transmission lines and T splitters"; the GNSS antenna feeds
//! several receiver chains).
//!
//! Compares three splitter realizations behind the LNA at GPS L1:
//! insertion loss per output, output-to-output isolation, input match,
//! and the cascade noise figure of LNA + splitter per chain. Expected
//! shape: the Wilkinson wins isolation and loss; the resistive star is
//! matched but 6 dB down with no isolation; the bare tee is mismatched.

use lna::report::format_table;
use lna::Amplifier;
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;
use rfkit_net::noise::{friis, CascadeStage};
use rfkit_net::NPort;
use rfkit_num::units::db_from_power_ratio;
use rfkit_num::Complex;
use rfkit_passive::{resistive_splitter, Substrate, TeeJunction, Wilkinson};

const F0: f64 = 1.57542e9;

fn splitter_row(name: &str, np: &NPort, lna_gain: f64, lna_f: f64) -> Vec<String> {
    let s21 = np.s(1, 0).unwrap();
    let s11 = np.s(0, 0).unwrap();
    let iso = np.s(2, 1).unwrap();
    let split_loss_db = db_from_power_ratio(s21.norm_sqr());
    // Per-chain system noise: LNA then the splitter path as a lossy stage.
    let splitter_gain = s21.norm_sqr();
    let f_total = friis(&[
        CascadeStage {
            gain: lna_gain,
            noise_factor: lna_f,
        },
        CascadeStage {
            gain: splitter_gain,
            noise_factor: 1.0 / splitter_gain.min(1.0),
        },
    ]);
    vec![
        name.to_string(),
        format!("{:.2}", split_loss_db),
        format!("{:.1}", db_from_power_ratio(s11.norm_sqr())),
        format!("{:.1}", db_from_power_ratio(iso.norm_sqr())),
        format!("{:.3}", 10.0 * f_total.log10()),
    ]
}

fn main() {
    header(
        "Table 5",
        "dual-output GNSS front end: splitter comparison at L1",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let amp = Amplifier::new(&device, design.snapped);
    let noisy = amp.noisy_two_port(F0).expect("design feasible");
    let s = noisy.abcd.to_s(50.0).unwrap();
    let lna_gain = rfkit_net::gains::available_gain(&s, Complex::ZERO);
    let lna_f = noisy
        .noise_params(50.0)
        .unwrap()
        .noise_factor(Complex::ZERO);
    println!(
        "\nLNA in front: GA = {:.2} dB, NF = {:.3} dB",
        db_from_power_ratio(lna_gain),
        10.0 * lna_f.log10()
    );

    let tee = TeeJunction::microstrip(&Substrate::ro4350b()).s_matrix(F0, 50.0);
    let resistive = resistive_splitter(50.0);
    let wilkinson = Wilkinson::design(F0, 50.0, Substrate::ro4350b()).s_matrix(F0);

    let rows = vec![
        splitter_row("microstrip tee", &tee, lna_gain, lna_f),
        splitter_row("resistive star", &resistive, lna_gain, lna_f),
        splitter_row("Wilkinson", &wilkinson, lna_gain, lna_f),
    ];
    println!(
        "{}",
        format_table(
            &[
                "splitter",
                "split S21 (dB)",
                "in match (dB)",
                "isolation (dB)",
                "chain NF (dB)",
            ],
            &rows,
        )
    );
    println!("chain NF = LNA + splitter per receiver output (Friis); the LNA's");
    println!("gain in front keeps even the 6 dB resistive split nearly free.");
}
