//! **T3 — final design: operating point and E24-snapped element values**
//! (paper claim 4: optimal selection of the operating point and essential
//! passive elements).

use lna::report::{design_summary, format_table, metrics_summary};
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;

fn main() {
    header(
        "Table 3",
        "final GNSS LNA design (improved goal attainment + E24 snap)",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);

    println!("\ncontinuous optimum:");
    let rows: Vec<Vec<String>> = design_summary(&design.continuous)
        .into_iter()
        .zip(design_summary(&design.snapped))
        .map(|((name, cont), (_, snap))| vec![name, cont, snap])
        .collect();
    println!(
        "{}",
        format_table(&["quantity", "continuous", "snapped (E24)"], &rows)
    );

    println!("band metrics (1.1-1.7 GHz):");
    let rows: Vec<Vec<String>> = metrics_summary(&design.continuous_metrics)
        .into_iter()
        .zip(metrics_summary(&design.snapped_metrics))
        .map(|((name, cont), (_, snap))| vec![name, cont, snap])
        .collect();
    println!(
        "{}",
        format_table(&["metric", "continuous", "snapped"], &rows)
    );
    println!(
        "attainment factor γ = {:.3}  ({} objective evaluations)",
        design.attainment, design.evaluations
    );
}
