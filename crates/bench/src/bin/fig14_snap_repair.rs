//! **F14 (extension) — ablation of the post-snap repair step.**
//!
//! The design flow snaps the optimizer's continuous component values to
//! E24 catalog values and then *repairs* the still-continuous variables
//! (bias, degeneration, feed resistor) against the same attainment
//! function. Snap robustness is shared between two safeguards — the
//! stability *margin* designed into the goals and the *repair* pass — so
//! the ablation runs at two margins: at the default 0.005 margin the
//! naive snap survives (the margin absorbs the component jump); with the
//! margin ablated to 0.0005 the optimizer rides μ ≈ 1.0005 and the naive
//! snap breaks unconditional stability on most seeds, while the repaired
//! snap recovers it.

use lna::{
    band_objectives, design_lna, snap_to_catalog, Amplifier, BandMetrics, BandSpec, DesignConfig,
    DesignGoals, DesignVariables,
};
use lna_bench::header;
use rfkit_device::Phemt;

fn main() {
    header(
        "Figure 14 (extension)",
        "post-snap repair ablation over 10 design runs",
    );
    let device = Phemt::atf54143_like();
    for (label, margin) in [
        ("default stability margin (0.005)", 0.005),
        ("ablated margin (0.0005)", 0.0005),
    ] {
        println!("\n--- {label} ---");
        run_panel(&device, margin);
    }
    println!("\n(margin and repair are complementary: the margin shields the spec");
    println!(" from catalog quantization; when it is removed, only the repair");
    println!(" pass keeps the built design unconditionally stable)");
}

fn run_panel(device: &Phemt, stability_margin: f64) {
    let band = BandSpec::gnss();
    let goals = DesignGoals {
        stability_margin,
        ..Default::default()
    };
    let objectives = band_objectives(device, &band);

    let feasible = |vars: DesignVariables| -> (bool, Option<BandMetrics>) {
        let amp = Amplifier::new(device, vars);
        match BandMetrics::evaluate(&amp, &band) {
            Some(m) => (
                m.min_mu > 1.0 && m.worst_s11_db <= -10.0 && m.worst_s22_db <= -10.0,
                Some(m),
            ),
            None => (false, None),
        }
    };

    let mut naive_ok = 0;
    let mut repaired_ok = 0;
    let mut continuous_ok = 0;
    println!(
        "\n{:>6} {:>14} {:>12} {:>12} {:>12}",
        "seed", "continuous ok", "naive snap", "repaired", "ΔNF (mdB)"
    );
    for seed in 0..10u64 {
        let design = design_lna(
            device,
            &goals,
            &DesignConfig {
                max_evals: 8_000,
                seed,
                band: band.clone(),
                improved: true,
            },
        );
        let (c_ok, _) = feasible(design.continuous);
        let naive = snap_to_catalog(design.continuous);
        let (n_ok, _) = feasible(naive);
        let (r_ok, r_m) = feasible(design.snapped);
        continuous_ok += c_ok as u32;
        naive_ok += n_ok as u32;
        repaired_ok += r_ok as u32;
        let dnf = r_m
            .map(|m| 1000.0 * (m.worst_nf_db - design.continuous_metrics.worst_nf_db))
            .unwrap_or(f64::NAN);
        println!(
            "{seed:>6} {:>14} {:>12} {:>12} {dnf:>12.1}",
            if c_ok { "yes" } else { "NO" },
            if n_ok { "yes" } else { "NO" },
            if r_ok { "yes" } else { "NO" },
        );
        let _ = objectives(&design.snapped.to_vec());
    }
    println!(
        "feasible designs: continuous {continuous_ok}/10, naive snap {naive_ok}/10, repaired snap {repaired_ok}/10"
    );
}
