//! **F5 — s-parameters of the proposed preamplifier** (paper claim 5:
//! "the s-parameters … of the proposed preamplifier were measured").
//!
//! |S11|, |S21|, |S22| in dB over 0.8–2.2 GHz: nominal design vs the
//! simulated measurement of one as-built unit (±5 % parts, launch lines,
//! VNA noise). Expected shape: the measurement tracks the design within
//! ~1 dB of gain and a few dB of return loss, like the paper's prototype.

use lna::{measure, Amplifier, BuildConfig, BuiltAmplifier};
use lna_bench::{header, print_series, reference_design};
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_num::units::db_from_amplitude_ratio;

fn main() {
    header(
        "Figure 5",
        "amplifier S-parameters: design vs simulated measurement",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let vars = design.snapped;
    println!("\ndesign under test: {vars:?}");

    let freqs = linspace(0.8e9, 2.2e9, 15);
    let cfg = BuildConfig::default();
    let built = BuiltAmplifier::build(&vars, &cfg);
    let session = measure(&device, &built, &freqs, &cfg).expect("board alive");

    let amp = Amplifier::new(&device, vars);
    let freqs_ghz: Vec<f64> = freqs.iter().map(|f| f / 1e9).collect();
    let _sweep_span = rfkit_obs::span("bench.fig5.band_sweep");
    for (name, pick) in [("S11", 0usize), ("S21", 1), ("S22", 2)] {
        let design_db: Vec<f64> = freqs
            .iter()
            .map(|&f| {
                let s = amp.s_params(f).expect("design feasible");
                let v = match pick {
                    0 => s.s11(),
                    1 => s.s21(),
                    _ => s.s22(),
                };
                db_from_amplitude_ratio(v.abs())
            })
            .collect();
        let meas_db: Vec<f64> = session
            .response
            .iter()
            .map(|p| {
                let v = match pick {
                    0 => p.s.s11(),
                    1 => p.s.s21(),
                    _ => p.s.s22(),
                };
                db_from_amplitude_ratio(v.abs())
            })
            .collect();
        println!("\n|{name}| (dB):");
        print_series(
            "f (GHz)",
            &["design", "measured"],
            &freqs_ghz,
            &[design_db, meas_db],
        );
    }
    drop(_sweep_span);
    rfkit_obs::flush();
}
