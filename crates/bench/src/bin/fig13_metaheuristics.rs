//! **F13 (extension) — meta-heuristic bake-off on the DC extraction.**
//!
//! The abstract credits "meta-heuristic and direct optimization methods";
//! this figure compares the three meta-heuristics in `rfkit-opt`
//! (differential evolution, simulated annealing, particle swarm) on the
//! step-1 DC identification at equal budget, 7 seeds each.
//!
//! Measured shape (recorded in EXPERIMENTS.md): on this smooth
//! 7-parameter landscape PSO converges fastest (its median reaches the
//! data's noise floor), SA lands an order of magnitude above it, and
//! DE — the most cautious explorer — is slowest per evaluation budget but
//! never wanders far. All three finish well inside the basin the direct
//! (LM) refinement of step 3 then polishes to the floor, which is the
//! actual requirement the three-step procedure places on its global
//! phase.

use lna_bench::{golden_dataset, header};
use rfkit_device::dc::{Angelov, DcModel as _};
use rfkit_device::MeasurementNoise;
use rfkit_extract::objective::dc_loss;
use rfkit_num::stats::{max as smax, median, min as smin};
use rfkit_opt::{
    differential_evolution, particle_swarm, simulated_annealing, DeConfig, PsoConfig, SaConfig,
};

const BUDGET: usize = 15_000;
const SEEDS: u64 = 7;

fn main() {
    header(
        "Figure 13 (extension)",
        "meta-heuristics on the DC identification (7 seeds)",
    );
    let data = golden_dataset(MeasurementNoise::default());
    let bounds = Angelov.param_bounds();
    let objective = |p: &[f64]| dc_loss(&Angelov, p, &data.dc, 1e-3);

    let mut results: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut de_vals = Vec::new();
    let mut sa_vals = Vec::new();
    let mut pso_vals = Vec::new();
    for seed in 0..SEEDS {
        de_vals.push(
            differential_evolution(
                objective,
                &bounds,
                &DeConfig {
                    max_evals: BUDGET,
                    seed,
                    ..Default::default()
                },
            )
            .value,
        );
        sa_vals.push(
            simulated_annealing(
                objective,
                &bounds,
                &SaConfig {
                    max_evals: BUDGET,
                    seed,
                    ..Default::default()
                },
            )
            .value,
        );
        pso_vals.push(
            particle_swarm(
                objective,
                &bounds,
                &PsoConfig {
                    max_evals: BUDGET,
                    seed,
                    ..Default::default()
                },
            )
            .value,
        );
    }
    results.push(("differential evolution", de_vals));
    results.push(("particle swarm", pso_vals));
    results.push(("simulated annealing", sa_vals));

    println!("\nHuber DC loss after {BUDGET} evaluations (lower is better):");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "method", "best", "median", "worst"
    );
    for (name, vals) in &results {
        println!(
            "{name:<24} {:>12.3e} {:>12.3e} {:>12.3e}",
            smin(vals),
            median(vals),
            smax(vals)
        );
    }
    println!("\n(the noise floor of the 0.5 % synthetic data is ~1e-5 in this loss)");
}
