//! **F8 — ablation of the improved goal-attainment method.**
//!
//! Solves the reference band-design goal problem 10 times per variant and
//! reports the attainment-value distribution:
//!
//! * improved (exact minimax + DE global + pattern polish)
//! * no-global (exact minimax + pattern search from the box center)
//! * standard (penalty form + Nelder–Mead from random starts)
//!
//! Expected shape: improved has the best median *and* the tightest spread;
//! the no-global ablation shows start sensitivity; the standard method is
//! both worse and wider.

use lna::{band_objectives, BandSpec, DesignVariables};
use lna_bench::header;
use rfkit_device::Phemt;
use rfkit_num::rng::Rng64;
use rfkit_num::stats::{median, percentile};
use rfkit_opt::{
    improved_goal_attainment, pattern_search, standard_goal_attainment, GoalConfig, GoalProblem,
    PatternConfig,
};

const RUNS: u64 = 10;
const BUDGET: usize = 5_000;

fn summarize(name: &str, values: &[f64]) {
    println!(
        "{name:<38} median γ = {:>9.3}   p10 = {:>9.3}   p90 = {:>9.3}",
        median(values),
        percentile(values, 10.0),
        percentile(values, 90.0)
    );
}

fn main() {
    header(
        "Figure 8",
        "goal-attainment ablation: attainment distribution over 10 runs",
    );
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let objectives = band_objectives(&device, &band);
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let goals = vec![0.8, -14.0, -10.0, -10.0, -0.005];
    let weights = vec![0.5, 2.0, 0.0, 0.0, 0.0];
    let bounds = DesignVariables::bounds();

    let make_problem = || GoalProblem::new(obj_ref, goals.clone(), weights.clone(), bounds.clone());

    let mut improved = Vec::new();
    for seed in 0..RUNS {
        let p = make_problem();
        let r = improved_goal_attainment(
            &p,
            &GoalConfig {
                max_evals: BUDGET,
                seed,
                multistart: 1,
                global_fraction: 0.7,
                ..Default::default()
            },
        );
        improved.push(r.attainment);
    }
    summarize("improved (DE global + pattern polish)", &improved);

    let mut no_global = Vec::new();
    let mut rng = Rng64::new(0xab1a7);
    for _ in 0..RUNS {
        let p = make_problem();
        let start: Vec<f64> = bounds
            .lo()
            .iter()
            .zip(bounds.hi())
            .map(|(&l, &h)| rng.uniform(l, h))
            .collect();
        let r = pattern_search(
            |x| p.attainment(&(p.objectives)(x)),
            &start,
            &bounds,
            &PatternConfig {
                max_evals: BUDGET,
                ..Default::default()
            },
        );
        no_global.push(r.value);
    }
    summarize("ablation: exact minimax, local only", &no_global);

    let mut standard = Vec::new();
    let mut rng = Rng64::new(0x57d);
    for _ in 0..RUNS {
        let p = make_problem();
        let start: Vec<f64> = bounds
            .lo()
            .iter()
            .zip(bounds.hi())
            .map(|(&l, &h)| rng.uniform(l, h))
            .collect();
        let r = standard_goal_attainment(
            &p,
            &start,
            &GoalConfig {
                max_evals: BUDGET,
                ..Default::default()
            },
        );
        standard.push(r.attainment);
    }
    summarize("standard (penalty + Nelder-Mead)", &standard);

    println!("\n(γ < 0 means every goal over-attained; large γ means a hard");
    println!(" constraint — stability or return loss — is still violated)");
}
