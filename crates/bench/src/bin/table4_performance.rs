//! **T4 — performance summary of the final design** at the band edges and
//! center (1.1 / 1.4 / 1.7 GHz): gain, NF, reflections and stability.

use lna::report::format_table;
use lna::Amplifier;
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;

fn main() {
    header("Table 4", "final design performance at 1.1 / 1.4 / 1.7 GHz");
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let amp = Amplifier::new(&device, design.snapped);

    let rows: Vec<Vec<String>> = [1.1e9, 1.4e9, 1.7e9]
        .iter()
        .map(|&f| {
            let m = amp.metrics(f).expect("design feasible");
            vec![
                format!("{:.2}", f / 1e9),
                format!("{:.2}", m.gain_db),
                format!("{:.3}", m.nf_db),
                format!("{:.1}", m.s11_db),
                format!("{:.1}", m.s22_db),
                format!("{:.2}", m.k),
                format!("{:.3}", m.mu),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "f (GHz)",
                "GT (dB)",
                "NF (dB)",
                "|S11| (dB)",
                "|S22| (dB)",
                "K",
                "mu",
            ],
            &rows,
        )
    );
    println!(
        "worst-case over full band: NF {:.3} dB, gain {:.2} dB, min mu {:.3}",
        design.snapped_metrics.worst_nf_db,
        design.snapped_metrics.min_gain_db,
        design.snapped_metrics.min_mu,
    );
}
