//! **F6 — noise figure over the GNSS band** (paper claim 5: "… and noise
//! figure of the proposed preamplifier were measured").
//!
//! 50 Ω noise figure, 1.0–1.8 GHz: nominal design vs the simulated
//! NF-meter measurement of the as-built unit. Expected shape: 0.5–1 dB in
//! band, the measurement a few hundredths to ~0.15 dB above the design
//! (tolerances + launch-line loss), as prototype papers report.

use lna::{measure, Amplifier, BuildConfig, BuiltAmplifier};
use lna_bench::{header, print_series, reference_design};
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_num::stats;

fn main() {
    header(
        "Figure 6",
        "amplifier noise figure: design vs simulated measurement",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let vars = design.snapped;

    let freqs = linspace(1.0e9, 1.8e9, 9);
    let cfg = BuildConfig::default();
    let built = BuiltAmplifier::build(&vars, &cfg);
    let session = measure(&device, &built, &freqs, &cfg).expect("board alive");

    let amp = Amplifier::new(&device, vars);
    let sweep_span = rfkit_obs::span("bench.fig6.band_sweep");
    let design_nf: Vec<f64> = freqs
        .iter()
        .map(|&f| amp.metrics(f).expect("design feasible").nf_db)
        .collect();
    drop(sweep_span);
    let freqs_ghz: Vec<f64> = freqs.iter().map(|f| f / 1e9).collect();
    println!("\nNF at 50 ohm source (dB):");
    print_series(
        "f (GHz)",
        &["design", "measured"],
        &freqs_ghz,
        &[design_nf.clone(), session.nf_db.clone()],
    );
    let gaps: Vec<f64> = design_nf
        .iter()
        .zip(&session.nf_db)
        .map(|(d, m)| m - d)
        .collect();
    println!(
        "\nmeasurement-minus-design gap: mean {:+.3} dB, max {:+.3} dB",
        stats::mean(&gaps),
        stats::max(&gaps)
    );
    rfkit_obs::flush();
}
