//! **F11 (extension) — amplifier performance over ambient temperature.**
//!
//! Worst-case in-band NF and minimum gain of the reference design from
//! −40 °C to +85 °C. Expected shape: NF grows roughly linearly with
//! physical temperature (thermal noise ∝ T, plus gm derating), gain falls
//! ~1 dB cold-to-hot, and the design stays unconditionally stable at the
//! corners.

use lna::{band_sweep_over_temperature, metrics_at_temperature, BandSpec, ThermalCondition};
use lna_bench::{header, print_series, reference_design};
use rfkit_device::Phemt;

fn main() {
    header(
        "Figure 11 (extension)",
        "worst-case band performance vs ambient temperature",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let temps: Vec<f64> = vec![-40.0, -20.0, 0.0, 25.0, 45.0, 65.0, 85.0];
    let sweep = band_sweep_over_temperature(&device, design.snapped, &BandSpec::gnss(), &temps);
    let nf: Vec<f64> = sweep.iter().map(|(_, nf, _)| *nf).collect();
    let gain: Vec<f64> = sweep.iter().map(|(_, _, g)| *g).collect();
    println!();
    print_series(
        "T (degC)",
        &["worst NF (dB)", "min gain (dB)"],
        &temps,
        &[nf, gain],
    );

    println!("\nstability at the corners (1.4 GHz):");
    for t in [-40.0, 85.0] {
        let m = metrics_at_temperature(&device, design.snapped, 1.4e9, &ThermalCondition::at(t))
            .expect("feasible");
        println!("  {t:>6.1} degC: K = {:.2}, mu = {:.3}", m.k, m.mu);
    }
}
