//! BENCH_surrogate: surrogate-screened NSGA-II band study vs the plain
//! baseline on a warm design cache.
//!
//! The protocol mirrors how the screen is deployed: a design flow that
//! already paid for band sweeps (yesterday's study, a parameter sweep)
//! holds them in the [`lna::DesignCache`], and the next study both
//! warm-starts from the known front and trains a surrogate from the
//! cached points. Concretely, each arm runs on its own fresh cache:
//!
//! 1. *warm-up* — an identical plain study (same decorrelated seed in
//!    both arms, `--warm-gens`, default twice the measured
//!    generations) populates the cache and produces a front;
//! 2. *measured phase* — a study warm-started from that front, plain
//!    for the baseline arm and screened for the surrogate arm,
//!    otherwise knob-for-knob identical.
//!
//! The headline numbers are **counted, not timed**: `band_evaluations`
//! is the number of full band sweeps the measured phase actually
//! computed (design-cache misses), deterministic for a fixed seed at
//! any `RFKIT_THREADS`, so a single run per arm is exact.
//!
//! Reported: the band-evaluation reduction factor (baseline ÷
//! screened), the hypervolume of both fronts against the study
//! reference point, and the screen's own decision counters. The
//! committed artifact must show `reduction >= 3` at `hv_ratio >= 0.99`
//! (hypervolume within 1% — the screen may also *improve* it, since
//! pruned junk frees budget near the front). `meets_target` records
//! that verdict.
//!
//! The screened run executes under aggregate-mode profiling
//! (`results/PROFILE_bench_surrogate.json`): the profile shows the
//! `surrogate.fit` span cost against the `study.pareto` total, i.e. what
//! the model fits cost next to the sweeps they avoided. Telemetry is
//! restored to the environment's configuration afterwards so a traced CI
//! invocation still flushes its own trace.
//!
//! Usage: `bench_surrogate [--pop N] [--gens N] [--warm-gens N]
//! [--seed N] [--out PATH] [--profile-out PATH]` plus screen-override
//! flags (`--kappa` / `--min-improvement` / `--patience` /
//! `--keep-frac` / `--explore-min`) for tuning experiments. Defaults:
//! 48 / 40 / 80 / 0xf4 / `results/BENCH_surrogate.json`; CI runs a tiny
//! configuration and writes to a scratch path so the committed
//! full-size artifact survives.

use lna::{
    pareto_front_study, study_screen_config, BandSpec, DesignCache, ParetoStudy, ParetoStudyConfig,
    STUDY_REFERENCE,
};
use rfkit_device::Phemt;
use std::time::Instant;

struct Args {
    pop: usize,
    gens: usize,
    seed: u64,
    out: String,
    profile_out: String,
    kappa: Option<f64>,
    min_improvement: Option<f64>,
    patience: Option<u64>,
    keep_frac: Option<f64>,
    explore_min: Option<f64>,
    warm_gens: Option<usize>,
}

fn parse_args() -> Args {
    let mut a = Args {
        pop: 48,
        gens: 40,
        seed: 0xf4,
        out: String::from("results/BENCH_surrogate.json"),
        profile_out: String::from("results/PROFILE_bench_surrogate.json"),
        kappa: None,
        min_improvement: None,
        patience: None,
        keep_frac: None,
        explore_min: None,
        warm_gens: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_default();
        let ok = match flag.as_str() {
            "--pop" => value.parse().map(|v: usize| a.pop = v.max(4)).is_ok(),
            "--gens" => value.parse().map(|v: usize| a.gens = v.max(1)).is_ok(),
            "--seed" => value.parse().map(|v| a.seed = v).is_ok(),
            "--kappa" => value.parse().map(|v| a.kappa = Some(v)).is_ok(),
            "--min-improvement" => value.parse().map(|v| a.min_improvement = Some(v)).is_ok(),
            "--patience" => value.parse().map(|v| a.patience = Some(v)).is_ok(),
            "--keep-frac" => value.parse().map(|v| a.keep_frac = Some(v)).is_ok(),
            "--explore-min" => value.parse().map(|v| a.explore_min = Some(v)).is_ok(),
            "--warm-gens" => value
                .parse()
                .map(|v: usize| a.warm_gens = Some(v.max(1)))
                .is_ok(),
            "--out" => {
                a.out = value.clone();
                !value.is_empty()
            }
            "--profile-out" => {
                a.profile_out = value.clone();
                !value.is_empty()
            }
            other => {
                eprintln!(
                    "bench_surrogate: unknown argument `{other}` (use --pop N / --gens N / \
                     --seed N / --out PATH / --profile-out PATH, or screen overrides \
                     --kappa X / --min-improvement X / --patience N / --keep-frac X / \
                     --explore-min X)"
                );
                std::process::exit(2);
            }
        };
        if !ok {
            eprintln!("bench_surrogate: `{flag}` needs a valid value, got `{value}`");
            std::process::exit(2);
        }
    }
    a
}

struct Arm {
    /// Identical plain warm-up both arms pay for (excluded from the
    /// headline numbers).
    warmup: ParetoStudy,
    /// The measured phase: plain for the baseline, screened for the
    /// surrogate arm.
    study: ParetoStudy,
    elapsed_s: f64,
    /// Evaluated designs that came back feasible and unconditionally
    /// stable — the rest is the "sea" the screen is meant to prune.
    feasible_evals: usize,
}

fn run_arm(
    device: &Phemt,
    band: &BandSpec,
    warm_cfg: &ParetoStudyConfig,
    config: &ParetoStudyConfig,
) -> Arm {
    // Fresh cache per arm, warmed by the same plain study (same seed →
    // bit-identical warm-up cost and cache contents). `band_evaluations`
    // of the measured phase then counts every sweep that phase paid
    // for, with no cross-arm memoization. Both arms continue from the
    // warm-up's front (warm-started initial population), so the
    // measured phase is the refinement workload the screen targets.
    let cache = DesignCache::with_default_capacity();
    let warmup = pareto_front_study(device, band, warm_cfg, &cache);
    let config = ParetoStudyConfig {
        initial: warmup.front.iter().map(|i| i.x.clone()).collect(),
        ..config.clone()
    };
    let start = Instant::now();
    let study = pareto_front_study(device, band, &config, &cache);
    let elapsed_s = start.elapsed().as_secs_f64();
    let feasible_evals = cache
        .snapshot()
        .iter()
        .filter(|(_, m)| m.is_some_and(|m| m.min_mu > 1.0))
        .count();
    Arm {
        warmup,
        study,
        elapsed_s,
        feasible_evals,
    }
}

fn arm_json(out: &mut String, name: &str, arm: &Arm, last: bool) {
    let s = &arm.study;
    out.push_str(&format!("    \"{name}\": {{\n"));
    out.push_str(&format!("      \"front_points\": {},\n", s.front.len()));
    out.push_str(&format!("      \"hypervolume\": {:.6},\n", s.hypervolume));
    out.push_str(&format!("      \"evaluations\": {},\n", s.evaluations));
    out.push_str(&format!(
        "      \"band_evaluations\": {},\n",
        s.band_evaluations
    ));
    out.push_str(&format!("      \"cache_hits\": {},\n", s.cache_hits));
    out.push_str(&format!(
        "      \"feasible_evaluations\": {},\n",
        arm.feasible_evals
    ));
    if let Some(st) = s.screen_stats {
        out.push_str("      \"screen\": {\n");
        out.push_str(&format!("        \"fits\": {},\n", st.fits));
        out.push_str(&format!("        \"accepted\": {},\n", st.accepted));
        out.push_str(&format!("        \"rejected\": {},\n", st.rejected));
        out.push_str(&format!("        \"explored\": {},\n", st.explored));
        out.push_str(&format!("        \"fallbacks\": {},\n", st.fallbacks));
        out.push_str(&format!("        \"forced\": {}\n", st.forced));
        out.push_str("      },\n");
    }
    out.push_str(&format!("      \"elapsed_s\": {:.3}\n", arm.elapsed_s));
    out.push_str(if last { "    }\n" } else { "    },\n" });
}

fn main() {
    let args = parse_args();
    lna_bench::header(
        "BENCH_surrogate",
        "surrogate-screened band study: true evaluations pruned at equal Pareto quality",
    );
    println!(
        "study: population {}, {} generations ({} warm-up), seed {:#x}; band 1.1-1.7 GHz\n",
        args.pop,
        args.gens,
        args.warm_gens.unwrap_or(2 * args.gens),
        args.seed
    );

    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    // Warm-up seed is decorrelated from the measured seed: the warm
    // cache must come from a *different* search trajectory, as it would
    // in practice (yesterday's sweeps warming today's study).
    let warm_cfg = ParetoStudyConfig {
        population: args.pop,
        generations: args.warm_gens.unwrap_or(2 * args.gens),
        seed: args.seed ^ 0x9e37,
        initial: Vec::new(),
        surrogate: None,
    };
    let plain_cfg = ParetoStudyConfig {
        population: args.pop,
        generations: args.gens,
        seed: args.seed,
        initial: Vec::new(),
        surrogate: None,
    };
    let mut screen_cfg = study_screen_config(0x5ca1e);
    if let Some(v) = args.kappa {
        screen_cfg.kappa = v;
    }
    if let Some(v) = args.min_improvement {
        screen_cfg.min_improvement = v;
    }
    if let Some(v) = args.patience {
        screen_cfg.improvement_patience = v;
    }
    if let Some(v) = args.keep_frac {
        screen_cfg.min_keep_frac = v;
    }
    if let Some(v) = args.explore_min {
        screen_cfg.explore_min = v;
    }
    let screened_cfg = ParetoStudyConfig {
        surrogate: Some(screen_cfg),
        ..plain_cfg.clone()
    };

    let baseline = run_arm(&device, &band, &warm_cfg, &plain_cfg);
    println!(
        "warm-up : {:>5} band sweeps (identical for both arms, excluded from the comparison)",
        baseline.warmup.band_evaluations
    );
    println!(
        "baseline: {:>5} band sweeps ({:>4} feasible), hypervolume {:>9.4}, {:>3} front points ({:.2} s)",
        baseline.study.band_evaluations,
        baseline.feasible_evals,
        baseline.study.hypervolume,
        baseline.study.front.len(),
        baseline.elapsed_s
    );

    // Screened arm under aggregate-mode profiling: fit cost vs study
    // total lands in the committed profile artifact.
    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(args.profile_out.clone().into()),
        mode: rfkit_obs::TraceMode::Agg,
    });
    let screened = run_arm(&device, &band, &warm_cfg, &screened_cfg);
    rfkit_obs::flush();
    rfkit_obs::init(&rfkit_obs::TraceConfig::from_env());
    println!(
        "screened: {:>5} band sweeps ({:>4} feasible), hypervolume {:>9.4}, {:>3} front points ({:.2} s)",
        screened.study.band_evaluations,
        screened.feasible_evals,
        screened.study.hypervolume,
        screened.study.front.len(),
        screened.elapsed_s
    );

    let stats = screened.study.screen_stats.expect("screen was armed");
    // Equal-quality crossing: first evaluation count at which each arm
    // reaches 99% of the baseline's final hypervolume.
    let target_hv = 0.99 * baseline.study.hypervolume;
    let cross = |arm: &Arm| {
        arm.study
            .history
            .iter()
            .find(|(_, hv)| *hv >= target_hv)
            .map(|(e, _)| *e)
    };
    let base_cross = cross(&baseline);
    let scr_cross = cross(&screened);
    println!(
        "equal-quality: target hv {:.4}; baseline crosses at {:?} evals, screened at {:?} evals",
        target_hv, base_cross, scr_cross
    );
    let reduction =
        baseline.study.band_evaluations as f64 / screened.study.band_evaluations.max(1) as f64;
    let hv_ratio = if baseline.study.hypervolume > 0.0 {
        screened.study.hypervolume / baseline.study.hypervolume
    } else {
        f64::NAN
    };
    let meets_target = reduction >= 3.0 && hv_ratio >= 0.99;
    println!(
        "\nscreen: {} fits, {} accepted / {} rejected / {} explored / {} fallback / {} forced",
        stats.fits, stats.accepted, stats.rejected, stats.explored, stats.fallbacks, stats.forced
    );
    println!(
        "band evaluations {} -> {} ({reduction:.2}x fewer sweeps), hypervolume ratio {hv_ratio:.4} \
         -> target (>=3x at >=0.99) {}",
        baseline.study.band_evaluations,
        screened.study.band_evaluations,
        if meets_target { "MET" } else { "NOT met" }
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"population\": {},\n", args.pop));
    json.push_str(&format!("  \"generations\": {},\n", args.gens));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!(
        "  \"reference\": [{}, {}],\n",
        STUDY_REFERENCE[0], STUDY_REFERENCE[1]
    ));
    json.push_str("  \"warmup\": {\n");
    json.push_str(&format!("    \"generations\": {},\n", warm_cfg.generations));
    json.push_str(&format!(
        "    \"band_evaluations\": {},\n",
        baseline.warmup.band_evaluations
    ));
    json.push_str(&format!(
        "    \"hypervolume\": {:.6}\n",
        baseline.warmup.hypervolume
    ));
    json.push_str("  },\n");
    json.push_str("  \"arms\": {\n");
    arm_json(&mut json, "baseline", &baseline, false);
    arm_json(&mut json, "screened", &screened, true);
    json.push_str("  },\n");
    json.push_str(&format!("  \"reduction\": {reduction:.4},\n"));
    json.push_str(&format!("  \"hv_ratio\": {hv_ratio:.4},\n"));
    json.push_str(&format!("  \"meets_target\": {meets_target},\n"));
    json.push_str(&format!("  \"profile\": \"{}\"\n", args.profile_out));
    json.push_str("}\n");
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&args.out, &json).expect("write benchmark JSON");
    println!("\nwrote {}", args.out);
    rfkit_obs::flush();
}
