//! **F1 — extraction convergence: three-step vs single-method baselines.**
//!
//! Plots combined fit error versus objective evaluations for the
//! three-step procedure and three single-optimizer baselines on the same
//! joint identification problem, over 7 random-start seeds. Expected
//! shape: the local methods (LM, NM) are *hit-or-miss* — their best seed
//! matches the three-step result but their worst seed stalls in a local
//! minimum one to two orders of magnitude higher; DE-only never stalls
//! but its 20-dimensional tail converges slowly; the three-step
//! combination is the only one whose **worst** seed equals its best.

use lna_bench::{golden_dataset, header};
use rfkit_device::dc::Angelov;
use rfkit_device::MeasurementNoise;
use rfkit_extract::{extract_single_method, three_step, SingleMethod, ThreeStepConfig};
use rfkit_num::stats::median;

const BUDGET: usize = 30_000;
const SEEDS: u64 = 7;

fn main() {
    header("Figure 1", "extraction convergence over 7 random seeds");
    let data = golden_dataset(MeasurementNoise::default());

    // Three-step: checkpoints after each phase.
    let mut three_errors: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for seed in 0..SEEDS {
        let cfg = ThreeStepConfig {
            step1_evals: BUDGET * 2 / 5,
            step2_evals: BUDGET * 2 / 5,
            step3_evals: BUDGET / 5,
            seed,
        };
        let r = three_step(&Angelov, &data, &cfg);
        for (k, (_, err)) in r.checkpoints.iter().enumerate() {
            three_errors[k].push(*err);
        }
    }
    println!("\nthree-step (checkpoints at 40/80/100 % of budget):");
    let mut three_finals = Vec::new();
    for (k, errs) in three_errors.iter().enumerate() {
        println!(
            "  checkpoint {}: evals ≈ {:>6}, median combined error = {:.4}",
            k + 1,
            BUDGET * 2 * (k + 1).min(2) / 5 + if k == 2 { BUDGET / 5 } else { 0 },
            median(errs)
        );
        if k == 2 {
            three_finals = errs.clone();
        }
    }
    println!(
        "  final combined RMSE: best {:.4} / median {:.4} / worst {:.4}",
        rfkit_num::stats::min(&three_finals),
        median(&three_finals),
        rfkit_num::stats::max(&three_finals)
    );

    for (name, method) in [
        ("DE-only", SingleMethod::DeOnly),
        ("NM-only", SingleMethod::NelderMeadOnly),
        ("LM-only", SingleMethod::LmOnly),
    ] {
        // Sample the improvement trace at fixed eval fractions.
        let fractions = [0.1, 0.25, 0.5, 0.75, 1.0];
        let mut sampled: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
        let mut finals = Vec::new();
        for seed in 0..SEEDS {
            let (r, trace) = extract_single_method(method, &Angelov, &data, BUDGET, seed);
            finals.push(r.dc_rmse + r.sparam_rmse);
            for (k, frac) in fractions.iter().enumerate() {
                let target = (*frac * BUDGET as f64) as usize;
                let best = trace
                    .iter()
                    .take_while(|(e, _)| *e <= target)
                    .map(|(_, v)| *v)
                    .last()
                    .unwrap_or(f64::INFINITY);
                sampled[k].push(best);
            }
        }
        println!("\n{name}:");
        for (frac, vals) in fractions.iter().zip(&sampled) {
            println!(
                "  {:>5.0} % of budget: median objective = {:.4}",
                frac * 100.0,
                median(vals)
            );
        }
        println!(
            "  final combined RMSE: best {:.4} / median {:.4} / worst {:.4}",
            rfkit_num::stats::min(&finals),
            median(&finals),
            rfkit_num::stats::max(&finals)
        );
    }
}
