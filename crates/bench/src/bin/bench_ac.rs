//! BENCH_ac: compiled AC fast path vs the legacy per-call MNA solve.
//!
//! Three sweep workloads over the GNSS band — the reference-design
//! netlist as pure RLC assembly/solve, the small output-match network
//! the design example verifies, and the reference netlist with the
//! linearized-pHEMT two-port stamps applied — each timed through the
//! legacy `two_port_s` path (allocates every matrix every call) and the
//! compiled path (`StampPlan::compile` once + `AcWorkspace` reuse,
//! compile time included in the timed region). Before any timing the
//! two paths are asserted **bit-identical** on every grid point.
//!
//! The run also exercises the snapped-design memo cache (guaranteed hits
//! *and* capacity evictions), so a traced invocation carries
//! `design.cache.hit` / `design.cache.miss` counters and
//! `circuit.ac.assemble_us` histogram entries for the CI `--expect`
//! stage. Results go to `results/BENCH_ac.json`.
//!
//! Usage: `bench_ac [--points N] [--reps N] [--out PATH]` (defaults
//! 801 / 5 / `results/BENCH_ac.json`; CI runs a tiny grid and writes to
//! a scratch path so the committed full-sweep artifact survives).

use lna::{cached_band_objectives, snap_to_catalog, BandSpec, DesignCache, DesignVariables};
use lna_bench::timing::time_best_of;
use rfkit_circuit::{two_port_s, AcStamps, AcWorkspace, Circuit, StampPlan};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_num::rng::Rng64;
use std::hint::black_box;

/// The reference-design schematic as a netlist: input match, bias feed
/// and output match around the (separately stamped) device position.
fn reference_design_circuit() -> Circuit {
    let mut c = Circuit::new();
    c.inductor("in", "gate", 6.8e-9)
        .resistor("gate", "gnd", 10_000.0)
        .resistor("drain", "nb", 30.0)
        .inductor("nb", "gnd", 10e-9)
        .vsource("vdd", "gnd", 3.0)
        .resistor("vdd", "nb", 15.0)
        .capacitor("drain", "out", 2.2e-12)
        .inductor("out", "gnd", 10e-9)
        .capacitor("out", "gnd", 1.0e-12)
        .port("in", 50.0)
        .port("out", 50.0);
    c
}

/// Command-line grid size / repetition count / output path with defaults.
fn parse_args() -> (usize, usize, String) {
    let (mut points, mut reps) = (801usize, 5usize);
    let mut out = String::from("results/BENCH_ac.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().unwrap_or_default();
            if out.is_empty() {
                eprintln!("bench_ac: `--out` needs a path");
                std::process::exit(2);
            }
            continue;
        }
        let slot = match a.as_str() {
            "--points" => &mut points,
            "--reps" => &mut reps,
            other => {
                eprintln!(
                    "bench_ac: unknown argument `{other}` (use --points N / --reps N / --out PATH)"
                );
                std::process::exit(2);
            }
        };
        let value = args.next().unwrap_or_default();
        *slot = value.parse().ok().filter(|&v| v > 0).unwrap_or_else(|| {
            eprintln!("bench_ac: `{a}` needs a positive integer, got `{value}`");
            std::process::exit(2);
        });
    }
    (points.max(2), reps, out)
}

struct SweepResult {
    name: &'static str,
    legacy_s: f64,
    fast_s: f64,
    points: usize,
}

impl SweepResult {
    fn speedup(&self) -> f64 {
        self.legacy_s / self.fast_s
    }
    fn legacy_us_per_point(&self) -> f64 {
        self.legacy_s / self.points as f64 * 1e6
    }
    fn fast_us_per_point(&self) -> f64 {
        self.fast_s / self.points as f64 * 1e6
    }
}

/// Asserts bit-identity across the whole grid, then times the legacy and
/// compiled sweeps. Returns the timings plus the workspace counters of
/// the (untimed) equivalence sweep as the no-allocation evidence.
fn bench_sweep(
    name: &'static str,
    c: &Circuit,
    stamps: &AcStamps<'_>,
    grid: &[f64],
    reps: usize,
) -> (SweepResult, u64, u64) {
    let plan = StampPlan::compile(c).expect("reference netlist compiles");
    let mut ws = AcWorkspace::new();
    for &f in grid {
        let legacy = two_port_s(c, f, stamps).expect("legacy solves");
        let fast = plan.two_port_s(f, stamps, &mut ws).expect("fast solves");
        assert_eq!(legacy, fast, "{name}: paths diverged at {f} Hz");
    }
    let (warmups, reuses) = (ws.warmup_count(), ws.reuse_count());

    let legacy_s = time_best_of(reps, || {
        for &f in grid {
            black_box(two_port_s(c, f, stamps).expect("legacy solves"));
        }
    });
    // Compile + workspace construction inside the timed region: the fast
    // path must win including its one-time setup, not just steady-state.
    let fast_s = time_best_of(reps, || {
        let plan = StampPlan::compile(c).expect("compiles");
        let mut ws = AcWorkspace::new();
        for &f in grid {
            black_box(plan.two_port_s(f, stamps, &mut ws).expect("fast solves"));
        }
    });
    let r = SweepResult {
        name,
        legacy_s,
        fast_s,
        points: grid.len(),
    };
    println!(
        "{:>24}: legacy {:>9.1} us/pt | fast {:>9.1} us/pt | speedup {:.2}x",
        r.name,
        r.legacy_us_per_point(),
        r.fast_us_per_point(),
        r.speedup()
    );
    (r, warmups, reuses)
}

struct CacheStats {
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
}

/// Runs the memo cache against snapped optimizer-style candidates:
/// duplicated candidates guarantee hits, a deliberately small second
/// cache guarantees capacity evictions. Both counters therefore appear
/// in a traced run.
fn exercise_cache(device: &Phemt) -> CacheStats {
    let band = BandSpec::new(1.1e9, 1.7e9, 3);
    let mut rng = Rng64::new(0xbe_c4c4e);
    let mut xs: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            let vars = DesignVariables {
                vds: rng.uniform(2.0, 4.0),
                ids: rng.uniform(0.02, 0.08),
                l1: rng.uniform(3e-9, 12e-9),
                ls_deg: rng.uniform(0.1e-9, 0.8e-9),
                l2: rng.uniform(5e-9, 15e-9),
                c2: rng.uniform(1e-12, 4e-12),
                r_bias: rng.uniform(15.0, 60.0),
            };
            snap_to_catalog(vars).to_vec()
        })
        .collect();
    let dup = xs.clone();
    xs.extend(dup); // every candidate evaluated twice -> >=6 hits

    let cache = DesignCache::new(64);
    let obj = cached_band_objectives(device, &band, &cache);
    for x in &xs {
        black_box(obj(x));
    }

    // Capacity-2 cache over 6 distinct designs: forced evictions.
    let tiny = DesignCache::new(2);
    let tiny_obj = cached_band_objectives(device, &band, &tiny);
    for x in xs.iter().take(6) {
        black_box(tiny_obj(x));
    }

    CacheStats {
        hits: cache.hits(),
        misses: cache.misses(),
        evictions: tiny.evictions(),
        hit_rate: cache.hit_rate(),
    }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    cores: usize,
    points: usize,
    reps: usize,
    sweeps: &[SweepResult],
    warmups: u64,
    reuses: u64,
    cache: &CacheStats,
    timing_noisy: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"points\": {points},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"timing_noisy\": {timing_noisy},\n"));
    out.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"legacy_s\": {:e},\n", s.legacy_s));
        out.push_str(&format!("      \"fast_s\": {:e},\n", s.fast_s));
        out.push_str(&format!(
            "      \"legacy_per_point_us\": {:.3},\n",
            s.legacy_us_per_point()
        ));
        out.push_str(&format!(
            "      \"fast_per_point_us\": {:.3},\n",
            s.fast_us_per_point()
        ));
        out.push_str(&format!("      \"speedup\": {:.3}\n", s.speedup()));
        out.push_str(if i + 1 == sweeps.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"workspace\": {\n");
    out.push_str(&format!("    \"warmups\": {warmups},\n"));
    out.push_str(&format!("    \"reuses\": {reuses}\n"));
    out.push_str("  },\n");
    out.push_str("  \"cache\": {\n");
    out.push_str(&format!("    \"hits\": {},\n", cache.hits));
    out.push_str(&format!("    \"misses\": {},\n", cache.misses));
    out.push_str(&format!("    \"evictions\": {},\n", cache.evictions));
    out.push_str(&format!("    \"hit_rate\": {:.3}\n", cache.hit_rate));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let (points, reps, out_path) = parse_args();
    lna_bench::header(
        "BENCH_ac",
        "compiled AC fast path: stamp plans + workspaces vs legacy solve",
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("machine: {cores} core(s); grid {points} points, best of {reps}\n");

    let mut c = reference_design_circuit();
    let (gate, drain) = (c.node("gate"), c.node("drain"));
    let grid = linspace(1.1e9, 1.7e9, points);

    // Workload 1: pure RLC assembly + solve (the cost the fast path owns).
    let (rlc, warmups, reuses) =
        bench_sweep("rlc_assembly_solve", &c, &AcStamps::none(), &grid, reps);
    assert_eq!(
        (warmups, reuses),
        (1, grid.len() as u64 - 1),
        "sweep should warm the workspace exactly once"
    );

    // Workload 2: the output-match verification network — the exact
    // sub-circuit `examples/design_gnss_lna.rs` sweeps after a design run.
    let out_match = {
        let mut m = Circuit::new();
        m.inductor("in", "out", 10e-9)
            .capacitor("out", "gnd", 2.2e-12)
            .port("in", 50.0)
            .port("out", 50.0);
        m
    };
    let (match_sweep, _, _) = bench_sweep(
        "output_match_solve",
        &out_match,
        &AcStamps::none(),
        &grid,
        reps,
    );

    // Workload 3: the reference netlist with the linearized device stamped in —
    // the per-point device linearization is shared cost on both paths, so
    // the measured speedup brackets what real band sweeps see.
    let device = Phemt::atf54143_like();
    let op = device.operating_point(
        device.bias_for_current(3.0, 0.06).expect("reachable bias"),
        3.0,
    );
    let ss = device.small_signal(&op);
    let y_of = move |f: f64| {
        ss.noisy_two_port(f, &NoiseTemperatures::default())
            .abcd
            .to_y()
            .expect("device Y form")
    };
    let stamps = AcStamps::none().two_port(gate, drain, &y_of);
    let (stamped, _, _) = bench_sweep("phemt_stamped_solve", &c, &stamps, &grid, reps);

    // Timing-noise estimate: re-measure the cheapest workload and compare.
    let recheck = time_best_of(reps, || {
        for &f in &grid {
            black_box(two_port_s(&c, f, &AcStamps::none()).expect("legacy solves"));
        }
    });
    let spread = (recheck - rlc.legacy_s).abs() / rlc.legacy_s.max(f64::MIN_POSITIVE);
    let timing_noisy = cores == 1 || spread > 0.25;

    println!();
    let cache = exercise_cache(&device);
    println!(
        "memo cache: {} hits / {} misses (hit rate {:.2}), {} evictions in capacity-2 run",
        cache.hits, cache.misses, cache.hit_rate, cache.evictions
    );

    let json = to_json(
        cores,
        points,
        reps,
        &[rlc, match_sweep, stamped],
        warmups,
        reuses,
        &cache,
        timing_noisy,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
    if timing_noisy {
        println!(
            "note: timings are noisy on this machine ({cores} core(s), rerun spread {:.0}%) — \
             treat speedups as indicative, not exact",
            spread * 100.0
        );
    }
    rfkit_obs::flush();
}
