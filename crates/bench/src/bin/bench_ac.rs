//! BENCH_ac: batched structure-aware AC sweeps vs the legacy per-call
//! MNA solve.
//!
//! Four sweep workloads over the GNSS band — the reference-design
//! netlist as pure RLC assembly/solve, the small output-match network
//! the design example verifies, the reference netlist with the
//! linearized-pHEMT two-port stamps applied, and a 50+-node multi-stage
//! chain that exercises the bordered-block solve path — each timed
//! through three engines:
//!
//! * `legacy`: per-call `two_port_s` (allocates every matrix every call);
//! * `fast`: `StampPlan::compile` once + per-point `AcWorkspace` reuse
//!   (compile time inside the timed region);
//! * `batch`: `shared_plan` + `StampPlan::sweep_batch` — the pivot-reuse
//!   / banded / bordered engine behind the process-wide plan cache
//!   (cache lookup inside the timed region).
//!
//! Before any timing the legacy and fast paths are asserted
//! **bit-identical** on every grid point, and the batch path is pinned
//! to legacy within the documented `SWEEP_TOL` contract.
//!
//! Timing uses adaptive best-of repetition (`time_until_stable`): each
//! region repeats until its minimum stops improving, and the JSON
//! records the repetition count actually used per sweep. `timing_noisy`
//! is true only when some region's minimum failed to settle within the
//! repetition budget — not inferred from the core count.
//!
//! The run also exercises the snapped-design memo cache (guaranteed hits
//! *and* capacity evictions — the deliberately undersized run emits a
//! `design.cache.thrash` event), so a traced invocation carries
//! `design.cache.*`, `plan.cache.*` and `circuit.ac.sweep.*` counters
//! for the CI `--expect` stage. Results go to `results/BENCH_ac.json`.
//!
//! Usage: `bench_ac [--points N] [--reps N] [--out PATH]` (defaults
//! 801 / 5 / `results/BENCH_ac.json`; `--reps` is the *minimum*
//! repetition count — the stability rule may use up to 10×. CI runs a
//! tiny grid and writes to a scratch path so the committed full-sweep
//! artifact survives).

use lna::{
    cached_band_objectives, multistage_netlist, output_match_network, reference_netlist,
    snap_to_catalog, BandSpec, DesignCache, DesignVariables,
};
use lna_bench::timing::time_until_stable;
use rfkit_circuit::{
    shared_plan, two_port_s, AcStamps, AcWorkspace, Circuit, StampPlan, SWEEP_TOL,
};
use rfkit_device::smallsignal::NoiseTemperatures;
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_num::rng::Rng64;
use std::hint::black_box;

/// The design variables of the committed reference schematic (the same
/// values `reference_design_circuit` hard-coded before the builders
/// moved to `lna::verify`).
fn reference_vars() -> DesignVariables {
    DesignVariables {
        vds: 3.0,
        ids: 0.06,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 1.0e-12,
        r_bias: 15.0,
    }
}

/// Command-line grid size / repetition count / output paths with
/// defaults.
fn parse_args() -> (usize, usize, String, String) {
    let (mut points, mut reps) = (801usize, 5usize);
    let mut out = String::from("results/BENCH_ac.json");
    let mut profile_out = String::from("results/PROFILE_bench_ac.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" || a == "--profile-out" {
            let slot = if a == "--out" {
                &mut out
            } else {
                &mut profile_out
            };
            *slot = args.next().unwrap_or_default();
            if slot.is_empty() {
                eprintln!("bench_ac: `{a}` needs a path");
                std::process::exit(2);
            }
            continue;
        }
        let slot = match a.as_str() {
            "--points" => &mut points,
            "--reps" => &mut reps,
            other => {
                eprintln!(
                    "bench_ac: unknown argument `{other}` (use --points N / --reps N / \
                     --out PATH / --profile-out PATH)"
                );
                std::process::exit(2);
            }
        };
        let value = args.next().unwrap_or_default();
        *slot = value.parse().ok().filter(|&v| v > 0).unwrap_or_else(|| {
            eprintln!("bench_ac: `{a}` needs a positive integer, got `{value}`");
            std::process::exit(2);
        });
    }
    (points.max(2), reps, out, profile_out)
}

/// Relative-improvement threshold for the adaptive timing stopping rule.
const TIMING_TOL: f64 = 0.05;

struct SweepResult {
    name: &'static str,
    legacy_s: f64,
    fast_s: f64,
    batch_s: f64,
    points: usize,
    reps_used: usize,
    stable: bool,
    path: &'static str,
    refactors: usize,
}

impl SweepResult {
    fn speedup(&self) -> f64 {
        self.legacy_s / self.fast_s
    }
    fn batch_speedup(&self) -> f64 {
        self.legacy_s / self.batch_s
    }
    fn legacy_us_per_point(&self) -> f64 {
        self.legacy_s / self.points as f64 * 1e6
    }
    fn fast_us_per_point(&self) -> f64 {
        self.fast_s / self.points as f64 * 1e6
    }
    fn batch_us_per_point(&self) -> f64 {
        self.batch_s / self.points as f64 * 1e6
    }
}

/// Asserts legacy/fast bit-identity and legacy/batch `SWEEP_TOL`
/// agreement across the whole grid, then times the three engines.
/// Returns the timings plus the workspace counters of the (untimed)
/// equivalence sweep as the no-allocation evidence.
fn bench_sweep(
    name: &'static str,
    c: &Circuit,
    stamps: &AcStamps<'_>,
    grid: &[f64],
    min_reps: usize,
) -> (SweepResult, u64, u64) {
    let max_reps = min_reps.saturating_mul(10);
    let plan = shared_plan(c).expect("netlist compiles");
    let mut ws = AcWorkspace::new();
    for &f in grid {
        let legacy = two_port_s(c, f, stamps).expect("legacy solves");
        let fast = plan.two_port_s(f, stamps, &mut ws).expect("fast solves");
        assert_eq!(legacy, fast, "{name}: paths diverged at {f} Hz");
    }
    let (warmups, reuses) = (ws.warmup_count(), ws.reuse_count());

    let batch = plan.sweep_batch(grid, stamps, &mut ws);
    assert!(
        batch.failures().is_empty(),
        "{name}: batch sweep had failures"
    );
    for (p, &f) in grid.iter().enumerate() {
        let legacy = two_port_s(c, f, stamps).expect("legacy solves");
        let got = batch.two_port(p).expect("batch point ok");
        for (a, b) in [
            (got.s11(), legacy.s11()),
            (got.s12(), legacy.s12()),
            (got.s21(), legacy.s21()),
            (got.s22(), legacy.s22()),
        ] {
            assert!(
                (a - b).abs() <= SWEEP_TOL,
                "{name}: batch left the SWEEP_TOL envelope at {f} Hz"
            );
        }
    }
    let (path, refactors) = (batch.stats().path, batch.stats().refactors);

    let (legacy_s, r1, s1) = time_until_stable(min_reps, max_reps, TIMING_TOL, || {
        for &f in grid {
            black_box(two_port_s(c, f, stamps).expect("legacy solves"));
        }
    });
    // Compile + workspace construction inside the timed region: the fast
    // path must win including its one-time setup, not just steady-state.
    let (fast_s, r2, s2) = time_until_stable(min_reps, max_reps, TIMING_TOL, || {
        let plan = StampPlan::compile(c).expect("compiles");
        let mut ws = AcWorkspace::new();
        for &f in grid {
            black_box(plan.two_port_s(f, stamps, &mut ws).expect("fast solves"));
        }
    });
    // Batch path: shared-plan lookup inside the timed region (a cache hit
    // after the equivalence sweep above), then one batched call.
    let (batch_s, r3, s3) = time_until_stable(min_reps, max_reps, TIMING_TOL, || {
        let plan = shared_plan(c).expect("cached plan");
        let mut ws = AcWorkspace::new();
        black_box(plan.sweep_batch(grid, stamps, &mut ws));
    });
    let r = SweepResult {
        name,
        legacy_s,
        fast_s,
        batch_s,
        points: grid.len(),
        reps_used: r1.max(r2).max(r3),
        stable: s1 && s2 && s3,
        path,
        refactors,
    };
    println!(
        "{:>24}: legacy {:>9.1} us/pt | fast {:>8.1} us/pt ({:.2}x) | batch {:>8.1} us/pt ({:.2}x, {}, {} refactor(s))",
        r.name,
        r.legacy_us_per_point(),
        r.fast_us_per_point(),
        r.speedup(),
        r.batch_us_per_point(),
        r.batch_speedup(),
        r.path,
        r.refactors,
    );
    (r, warmups, reuses)
}

struct CacheStats {
    capacity: usize,
    working_set: usize,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    tiny_capacity: usize,
    tiny_evictions: u64,
}

/// Runs the memo cache against snapped optimizer-style candidates. The
/// main cache is sized to the working set (no evictions, guaranteed
/// hits); a deliberately undersized second cache forces capacity
/// evictions past its hit count, so a traced run carries both the
/// `design.cache.evict` counter and the `design.cache.thrash` event.
fn exercise_cache(device: &Phemt) -> CacheStats {
    let band = BandSpec::new(1.1e9, 1.7e9, 3);
    let mut rng = Rng64::new(0xbe_c4c4e);
    let mut xs: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            let vars = DesignVariables {
                vds: rng.uniform(2.0, 4.0),
                ids: rng.uniform(0.02, 0.08),
                l1: rng.uniform(3e-9, 12e-9),
                ls_deg: rng.uniform(0.1e-9, 0.8e-9),
                l2: rng.uniform(5e-9, 15e-9),
                c2: rng.uniform(1e-12, 4e-12),
                r_bias: rng.uniform(15.0, 60.0),
            };
            snap_to_catalog(vars).to_vec()
        })
        .collect();
    let working_set = xs.len();
    let dup = xs.clone();
    xs.extend(dup); // every candidate evaluated twice -> >=6 hits

    // Sized to the working set: every re-evaluation hits, nothing evicts.
    let capacity = working_set.max(lna::DEFAULT_CACHE_CAPACITY.min(64));
    let cache = DesignCache::new(capacity);
    let obj = cached_band_objectives(device, &band, &cache);
    for x in &xs {
        black_box(obj(x));
    }
    assert_eq!(cache.evictions(), 0, "main cache must hold its working set");

    // Capacity-2 cache over 6 distinct designs: forced evictions exceed
    // hits -> the cache emits `design.cache.thrash` on a traced run.
    let tiny = DesignCache::new(2);
    let tiny_obj = cached_band_objectives(device, &band, &tiny);
    for x in xs.iter().take(working_set) {
        black_box(tiny_obj(x));
    }

    CacheStats {
        capacity,
        working_set,
        hits: cache.hits(),
        misses: cache.misses(),
        hit_rate: cache.hit_rate(),
        tiny_capacity: 2,
        tiny_evictions: tiny.evictions(),
    }
}

struct PlanCacheStats {
    hits: u64,
    misses: u64,
    entries: usize,
}

struct AggOverhead {
    off_s: f64,
    agg_s: f64,
    overhead_frac: f64,
    off_p50_us: f64,
    agg_p50_us: f64,
    reps: usize,
    profile: String,
}

/// Overhead of aggregate-mode profiling (`RFKIT_TRACE_MODE=agg`) on the
/// bordered batch workload: best-of timings of the identical sweep with
/// telemetry fully disabled and then armed in aggregate mode. The agg
/// phase leaves its call-path profile at `profile_out` (the flush is
/// outside the timed region — steady-state recording cost is the claim,
/// not serialization). Telemetry is restored to the environment's
/// configuration before returning, so a traced CI invocation still
/// flushes its own trace afterwards.
fn measure_agg_overhead(
    c: &Circuit,
    grid: &[f64],
    min_reps: usize,
    profile_out: &str,
) -> AggOverhead {
    use lna_bench::timing::time_best_of_stats;
    let stamps = AcStamps::none();
    let reps = min_reps.max(5);
    let run = |reps: usize| {
        time_best_of_stats(reps, || {
            let plan = shared_plan(c).expect("cached plan");
            let mut ws = AcWorkspace::new();
            black_box(plan.sweep_batch(grid, &stamps, &mut ws));
        })
    };

    rfkit_obs::init(&rfkit_obs::TraceConfig::default());
    let (off_s, off_stats) = run(reps);

    rfkit_obs::init(&rfkit_obs::TraceConfig {
        trace: true,
        log: false,
        out: Some(profile_out.into()),
        mode: rfkit_obs::TraceMode::Agg,
    });
    let (agg_s, agg_stats) = run(reps);
    rfkit_obs::flush();

    rfkit_obs::init(&rfkit_obs::TraceConfig::from_env());

    AggOverhead {
        off_s,
        agg_s,
        overhead_frac: agg_s / off_s - 1.0,
        off_p50_us: off_stats.p50_us(),
        agg_p50_us: agg_stats.p50_us(),
        reps,
        profile: profile_out.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    cores: usize,
    points: usize,
    min_reps: usize,
    sweeps: &[SweepResult],
    warmups: u64,
    reuses: u64,
    cache: &CacheStats,
    plans: &PlanCacheStats,
    agg: &AggOverhead,
    timing_noisy: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"points\": {points},\n"));
    out.push_str(&format!("  \"reps\": {min_reps},\n"));
    out.push_str(&format!(
        "  \"max_reps\": {},\n",
        min_reps.saturating_mul(10)
    ));
    out.push_str(&format!("  \"timing_tol\": {TIMING_TOL},\n"));
    out.push_str(&format!("  \"timing_noisy\": {timing_noisy},\n"));
    out.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"points\": {},\n", s.points));
        out.push_str(&format!("      \"reps_used\": {},\n", s.reps_used));
        out.push_str(&format!("      \"stable\": {},\n", s.stable));
        out.push_str(&format!("      \"path\": \"{}\",\n", s.path));
        out.push_str(&format!("      \"refactors\": {},\n", s.refactors));
        out.push_str(&format!("      \"legacy_s\": {:e},\n", s.legacy_s));
        out.push_str(&format!("      \"fast_s\": {:e},\n", s.fast_s));
        out.push_str(&format!("      \"batch_s\": {:e},\n", s.batch_s));
        out.push_str(&format!(
            "      \"legacy_per_point_us\": {:.3},\n",
            s.legacy_us_per_point()
        ));
        out.push_str(&format!(
            "      \"fast_per_point_us\": {:.3},\n",
            s.fast_us_per_point()
        ));
        out.push_str(&format!(
            "      \"batch_per_point_us\": {:.3},\n",
            s.batch_us_per_point()
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", s.speedup()));
        out.push_str(&format!(
            "      \"batch_speedup\": {:.3}\n",
            s.batch_speedup()
        ));
        out.push_str(if i + 1 == sweeps.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"workspace\": {\n");
    out.push_str(&format!("    \"warmups\": {warmups},\n"));
    out.push_str(&format!("    \"reuses\": {reuses}\n"));
    out.push_str("  },\n");
    out.push_str("  \"plan_cache\": {\n");
    out.push_str(&format!("    \"hits\": {},\n", plans.hits));
    out.push_str(&format!("    \"misses\": {},\n", plans.misses));
    out.push_str(&format!("    \"entries\": {}\n", plans.entries));
    out.push_str("  },\n");
    out.push_str("  \"agg_overhead\": {\n");
    out.push_str(&format!(
        "    \"workload\": \"{}\",\n",
        "multistage_bordered_solve"
    ));
    out.push_str(&format!("    \"reps\": {},\n", agg.reps));
    out.push_str(&format!("    \"off_s\": {:e},\n", agg.off_s));
    out.push_str(&format!("    \"agg_s\": {:e},\n", agg.agg_s));
    out.push_str(&format!(
        "    \"overhead_frac\": {:.4},\n",
        agg.overhead_frac
    ));
    out.push_str(&format!("    \"off_p50_us\": {:.1},\n", agg.off_p50_us));
    out.push_str(&format!("    \"agg_p50_us\": {:.1},\n", agg.agg_p50_us));
    out.push_str(&format!("    \"profile\": \"{}\"\n", agg.profile));
    out.push_str("  },\n");
    out.push_str("  \"cache\": {\n");
    out.push_str(&format!("    \"capacity\": {},\n", cache.capacity));
    out.push_str(&format!("    \"working_set\": {},\n", cache.working_set));
    out.push_str(&format!("    \"hits\": {},\n", cache.hits));
    out.push_str(&format!("    \"misses\": {},\n", cache.misses));
    out.push_str(&format!("    \"hit_rate\": {:.3},\n", cache.hit_rate));
    out.push_str(&format!(
        "    \"tiny_capacity\": {},\n",
        cache.tiny_capacity
    ));
    out.push_str(&format!(
        "    \"tiny_evictions\": {}\n",
        cache.tiny_evictions
    ));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let (points, min_reps, out_path, profile_out) = parse_args();
    lna_bench::header(
        "BENCH_ac",
        "batched structure-aware AC sweeps: plan cache + pivot reuse vs legacy solve",
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "machine: {cores} core(s); grid {points} points, adaptive best-of (min {min_reps} reps)\n"
    );

    let vars = reference_vars();
    let mut c = reference_netlist(&vars);
    let (gate, drain) = (c.node("gate"), c.node("drain"));
    let grid = linspace(1.1e9, 1.7e9, points);

    // Workload 1: pure RLC assembly + solve (the cost the fast path owns).
    let (rlc, warmups, reuses) =
        bench_sweep("rlc_assembly_solve", &c, &AcStamps::none(), &grid, min_reps);
    assert_eq!(
        (warmups, reuses),
        (1, grid.len() as u64 - 1),
        "sweep should warm the workspace exactly once"
    );

    // Workload 2: the output-match verification network — the exact
    // sub-circuit `examples/design_gnss_lna.rs` sweeps after a design run.
    let out_match = output_match_network(&DesignVariables {
        c2: 2.2e-12,
        ..vars
    });
    let (match_sweep, _, _) = bench_sweep(
        "output_match_solve",
        &out_match,
        &AcStamps::none(),
        &grid,
        min_reps,
    );

    // Workload 3: the reference netlist with the linearized device stamped in —
    // the per-point device linearization is shared cost on both paths, so
    // the measured speedup brackets what real band sweeps see.
    let device = Phemt::atf54143_like();
    let op = device.operating_point(
        device.bias_for_current(3.0, 0.06).expect("reachable bias"),
        3.0,
    );
    let ss = device.small_signal(&op);
    let y_of = move |f: f64| {
        ss.noisy_two_port(f, &NoiseTemperatures::default())
            .abcd
            .to_y()
            .expect("device Y form")
    };
    let stamps = AcStamps::none().two_port(gate, drain, &y_of);
    let (stamped, _, _) = bench_sweep("phemt_stamped_solve", &c, &stamps, &grid, min_reps);

    // Workload 4: the 50+-node multi-stage chain — a long near-tridiagonal
    // internal block plus the shared supply hub, so the classifier selects
    // the bordered-block kernel and per-point cost drops from O(n^3) to
    // near O(n*b^2). This is where the batch engine's headline speedup
    // comes from.
    let multi = multistage_netlist(26);
    let (multistage, _, _) = bench_sweep(
        "multistage_bordered_solve",
        &multi,
        &AcStamps::none(),
        &grid,
        min_reps,
    );
    assert_eq!(
        multistage.path, "bordered",
        "multi-stage workload must exercise the bordered kernel"
    );

    let timing_noisy = !(rlc.stable && match_sweep.stable && stamped.stable && multistage.stable);

    // Aggregate-profiling overhead on the bordered workload. Done after
    // the contract sweeps so the timed regions compare like with like,
    // and before the cache exercise so a traced run's cache counters
    // land in the final environment-configured flush.
    let agg = measure_agg_overhead(&multi, &grid, min_reps, &profile_out);
    println!(
        "\nagg-mode profiling overhead (bordered batch, best of {} reps): \
         off {:.1} us/sweep | agg {:.1} us/sweep | overhead {:+.1}% -> {}",
        agg.reps,
        agg.off_s * 1e6,
        agg.agg_s * 1e6,
        agg.overhead_frac * 100.0,
        agg.profile
    );

    println!();
    let cache = exercise_cache(&device);
    println!(
        "memo cache: capacity {} over working set {}, {} hits / {} misses (hit rate {:.2}); \
         capacity-{} run forced {} evictions (thrash event)",
        cache.capacity,
        cache.working_set,
        cache.hits,
        cache.misses,
        cache.hit_rate,
        cache.tiny_capacity,
        cache.tiny_evictions
    );
    let plans = {
        let pc = rfkit_circuit::shared_plan_cache()
            .lock()
            .expect("plan cache lock");
        PlanCacheStats {
            hits: pc.hits(),
            misses: pc.misses(),
            entries: pc.len(),
        }
    };
    println!(
        "plan cache: {} hits / {} misses, {} topologies resident",
        plans.hits, plans.misses, plans.entries
    );

    let json = to_json(
        cores,
        points,
        min_reps,
        &[rlc, match_sweep, stamped, multistage],
        warmups,
        reuses,
        &cache,
        &plans,
        &agg,
        timing_noisy,
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
    if timing_noisy {
        println!(
            "note: some timing regions did not settle within the repetition budget — \
             treat speedups as indicative, not exact"
        );
    }
    rfkit_obs::flush();
}
