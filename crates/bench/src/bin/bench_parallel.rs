//! BENCH_parallel: serial-vs-parallel wall-clock for the four `rfkit-par`
//! call sites — DE population evaluation, NSGA-II population evaluation,
//! Monte-Carlo yield analysis, and a dense band sweep — at 1/2/4/8
//! threads. Criterion is unavailable offline, so this is a hand-rolled
//! best-of-N harness (see `lna_bench::timing`); results go to
//! `results/BENCH_parallel.json` so future PRs can track the perf
//! trajectory against the same workloads.
//!
//! The thread count is driven through `RFKIT_THREADS`, exactly the knob a
//! user has, so the bench exercises the production configuration path.
//! All four workloads are deterministic at any thread count; the serial
//! baseline is `RFKIT_THREADS=1`, which short-circuits to the caller
//! thread inside `rfkit-par` without touching the pool.

use lna::{band_objectives, yield_analysis, BandSpec, BuildConfig, DesignVariables, YieldSpec};
use lna_bench::timing::{time_best_of, to_json, BenchRecord};
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_opt::{differential_evolution, nsga2, DeConfig, Nsga2Config};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn with_threads<F: FnMut()>(threads: usize, f: F) -> f64 {
    std::env::set_var("RFKIT_THREADS", threads.to_string());
    let t = time_best_of(REPS, f);
    std::env::remove_var("RFKIT_THREADS");
    t
}

fn bench<F: FnMut()>(name: &str, mut workload: F) -> BenchRecord {
    let serial_s = with_threads(1, &mut workload);
    let parallel_s = THREAD_COUNTS
        .iter()
        .map(|&t| (t, with_threads(t, &mut workload)))
        .collect();
    let record = BenchRecord {
        name: name.to_string(),
        serial_s,
        parallel_s,
    };
    print!("{name:>22}: serial {:.4} s |", record.serial_s);
    for &t in &THREAD_COUNTS {
        print!(
            " {t}T {:.2}x",
            record.speedup(t).expect("thread count benched")
        );
    }
    println!();
    record
}

fn main() {
    lna_bench::header(
        "BENCH_parallel",
        "rfkit-par speedups: DE, NSGA-II, yield MC, band sweep",
    );
    let device = Phemt::atf54143_like();
    let band = BandSpec::gnss();
    let bounds = DesignVariables::bounds();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("machine: {cores} core(s); RFKIT_THREADS swept over {THREAD_COUNTS:?}");
    let oversubscribed: Vec<usize> = THREAD_COUNTS
        .iter()
        .copied()
        .filter(|&t| t > cores)
        .collect();
    if !oversubscribed.is_empty() {
        println!(
            "warning: thread counts {oversubscribed:?} exceed available_parallelism ({cores}); \
             those runs are oversubscribed and their speedups are bounded by ~{cores}x"
        );
    }
    println!();

    // 1. DE population evaluation on the real band-attainment objective.
    let objectives = band_objectives(&device, &band);
    let scalar = |x: &[f64]| {
        let f = objectives(x);
        // NF-weighted scalarization: cheap reduction over the real
        // (expensive) multi-frequency amplifier evaluation.
        f[0] + 0.25 * f[1]
    };
    let de = bench("de_population_eval", || {
        let r = differential_evolution(
            scalar,
            &bounds,
            &DeConfig {
                population: 48,
                max_evals: 2_400,
                seed: 0x0be9_c4de,
                ..Default::default()
            },
        );
        assert!(r.value.is_finite());
    });

    // 2. NSGA-II population evaluation on the vector objective.
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let ns = bench("nsga2_population_eval", || {
        let r = nsga2(
            obj_ref,
            &bounds,
            &Nsga2Config {
                population: 48,
                generations: 25,
                seed: 0x0be9_c45a,
                ..Default::default()
            },
        );
        assert!(!r.front.is_empty());
    });

    // 3. Monte-Carlo yield: 256 manufactured units of the nominal design.
    let nominal = DesignVariables {
        vds: 3.0,
        ids: 0.050,
        l1: 6.8e-9,
        ls_deg: 0.4e-9,
        l2: 10e-9,
        c2: 2.2e-12,
        r_bias: 30.0,
    };
    let mc = bench("yield_monte_carlo", || {
        let report = yield_analysis(
            &device,
            &nominal,
            &YieldSpec::default(),
            &band,
            256,
            &BuildConfig::default(),
            0x0be9_c11c,
        );
        assert_eq!(report.units, 256);
    });

    // 4. Dense band sweep: 1.1-1.7 GHz at 801 points with noise params.
    let amp = lna::Amplifier::new(&device, nominal);
    let grid = linspace(1.0e9, 1.8e9, 801);
    let sweep = bench("band_sweep_801pt", || {
        let resp = amp
            .frequency_response(&grid)
            .expect("nominal design sweeps");
        assert_eq!(resp.len(), 801);
    });

    let records = vec![de, ns, mc, sweep];
    let json = to_json(&records, cores);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote results/BENCH_parallel.json");
    rfkit_obs::flush();
    if cores == 1 {
        println!("note: single-core machine — parallel speedups are bounded at ~1x here;");
        println!("the same harness demonstrates scaling on multi-core hardware.");
    }
}
