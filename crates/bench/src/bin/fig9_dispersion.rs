//! **F9 — frequency dispersion of the passive models** (paper claim 3:
//! passive elements defined "using frequency dispersion of their
//! parameters as Q, ESR, etc.").
//!
//! Sweeps 0.1–6 GHz and prints capacitor/inductor Q and ESR plus the
//! microstrip εeff(f) and Z0(f). Expected shape: capacitor ESR rising as
//! √f, inductor Q peaking then collapsing at self-resonance, microstrip
//! εeff climbing toward εr per Kirschning–Jansen.

use lna_bench::{header, print_series};
use rfkit_num::linspace;
use rfkit_passive::{Capacitor, Component, Inductor, Microstrip, Substrate};

fn main() {
    header(
        "Figure 9",
        "frequency dispersion of passive-element parameters",
    );
    let freqs = linspace(0.1e9, 6.0e9, 13);
    let freqs_ghz: Vec<f64> = freqs.iter().map(|f| f / 1e9).collect();

    let cap = Capacitor::chip_0402(8.2e-12);
    let ind = Inductor::chip_0402(6.8e-9);
    println!(
        "\n8.2 pF 0402 capacitor (SRF = {:.2} GHz) and 6.8 nH 0402 inductor (SRF = {:.2} GHz):",
        cap.self_resonance_hz() / 1e9,
        ind.self_resonance_hz() / 1e9
    );
    let cap_q: Vec<f64> = freqs.iter().map(|&f| cap.q_factor(f)).collect();
    let cap_esr: Vec<f64> = freqs.iter().map(|&f| cap.esr(f)).collect();
    let ind_q: Vec<f64> = freqs.iter().map(|&f| ind.q_factor(f)).collect();
    let ind_esr: Vec<f64> = freqs.iter().map(|&f| ind.esr(f)).collect();
    print_series(
        "f (GHz)",
        &["C: Q", "C: ESR (ohm)", "L: Q", "L: ESR (ohm)"],
        &freqs_ghz,
        &[cap_q, cap_esr, ind_q, ind_esr],
    );

    let line = Microstrip::for_impedance(Substrate::ro4350b(), 50.0, 10e-3);
    println!(
        "\n50 ohm microstrip on RO4350B (w = {:.3} mm, eps_eff(0) = {:.3}):",
        line.width * 1e3,
        line.eps_eff_static()
    );
    let eps: Vec<f64> = freqs.iter().map(|&f| line.eps_eff(f)).collect();
    let z0: Vec<f64> = freqs.iter().map(|&f| line.z0(f)).collect();
    let loss: Vec<f64> = freqs
        .iter()
        .map(|&f| (line.alpha_conductor(f) + line.alpha_dielectric(f)) * 8.686)
        .collect();
    print_series(
        "f (GHz)",
        &["eps_eff(f)", "Z0(f) (ohm)", "loss (dB/m)"],
        &freqs_ghz,
        &[eps, z0, loss],
    );
}
