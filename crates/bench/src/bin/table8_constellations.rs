//! **T8 (extension) — per-constellation verification.**
//!
//! The paper's premise is one preamplifier for *all* GNSS constellations.
//! This table verifies the final design at every constellation's actual
//! carrier: GPS L1/L2/L5, GLONASS G1/G2, Galileo E1/E5a/E5b/E6 and
//! BeiDou B1I/B2a/B3I. Expected shape: every row meets the gain/NF/match
//! spec — the whole point of optimizing the worst case over 1.1–1.7 GHz
//! instead of a single carrier.

use lna::report::format_table;
use lna::Amplifier;
use lna_bench::{header, reference_design};
use rfkit_device::Phemt;

const CARRIERS: [(&str, f64); 11] = [
    ("GPS L1", 1.57542e9),
    ("GPS L2", 1.2276e9),
    ("GPS L5", 1.17645e9),
    ("GLONASS G1", 1.602e9),
    ("GLONASS G2", 1.246e9),
    ("Galileo E1", 1.57542e9),
    ("Galileo E5a", 1.17645e9),
    ("Galileo E5b", 1.20714e9),
    ("Galileo E6", 1.27875e9),
    ("BeiDou B1I", 1.561098e9),
    ("BeiDou B2a", 1.17645e9),
];

fn main() {
    header(
        "Table 8 (extension)",
        "the one amplifier at every constellation carrier",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let amp = Amplifier::new(&device, design.snapped);

    let mut rows = Vec::new();
    let mut all_pass = true;
    for (name, f) in CARRIERS {
        let m = amp.metrics(f).expect("design feasible");
        let pass = m.gain_db >= 10.0 && m.nf_db <= 0.8 && m.s11_db <= -9.5 && m.k > 1.0;
        all_pass &= pass;
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", f / 1e9),
            format!("{:.2}", m.gain_db),
            format!("{:.3}", m.nf_db),
            format!("{:.1}", m.s11_db),
            format!("{:.2}", m.k),
            if pass { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "carrier",
                "f (GHz)",
                "GT (dB)",
                "NF (dB)",
                "|S11| (dB)",
                "K",
                "spec",
            ],
            &rows,
        )
    );
    println!(
        "verdict: {}",
        if all_pass {
            "one amplifier serves every constellation (gain >= 10 dB, NF <= 0.8 dB, matched, stable)"
        } else {
            "SPEC VIOLATION — see rows marked FAIL"
        }
    );
}
