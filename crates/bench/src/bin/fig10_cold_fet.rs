//! **F10 (extension) — cold-FET extrinsic extraction.**
//!
//! The classic Dambrine-style "step 0": at Vds = 0 the transistor is a
//! passive network and the extrinsic shell can be extracted independently
//! of the DC model. The figure tabulates recovered-vs-true shell values
//! and shows what pinning the shell buys the warm extraction.

use lna::report::format_table;
use lna_bench::{golden_dataset, header};
use rfkit_device::dc::Angelov;
use rfkit_device::{GoldenDevice, MeasurementNoise};
use rfkit_extract::{
    cold_fet_extraction, three_step, three_step_with_extrinsics, ColdFetConfig, ThreeStepConfig,
};

fn main() {
    header(
        "Figure 10 (extension)",
        "cold-FET extrinsic extraction and its payoff",
    );
    let golden = GoldenDevice::default();
    let noise = MeasurementNoise::default();
    let cold_rows = golden.measure_sparams(0.25, 0.0, &GoldenDevice::standard_freq_grid(), &noise);
    let cold = cold_fet_extraction(&cold_rows, &ColdFetConfig::default());
    println!("\ncold-fit S RMSE = {:.4}", cold.sparam_rmse);

    let truth = golden.device.extrinsic;
    let got = cold.extrinsic;
    let rows = vec![
        row("Rg (ohm)", truth.rg, got.rg),
        row("Rd (ohm)", truth.rd, got.rd),
        row("Rs (ohm)", truth.rs, got.rs),
        row("Lg (nH)", truth.lg * 1e9, got.lg * 1e9),
        row("Ld (nH)", truth.ld * 1e9, got.ld * 1e9),
        row("Ls (nH)", truth.ls * 1e9, got.ls * 1e9),
        row("Cpg (pF)", truth.cpg * 1e12, got.cpg * 1e12),
        row("Cpd (pF)", truth.cpd * 1e12, got.cpd * 1e12),
    ];
    println!(
        "{}",
        format_table(&["element", "truth", "cold-extracted", "error"], &rows)
    );

    println!("(single-bias cold data pins the reactive shell to ~1 %; the");
    println!(" resistances trade against the channel resistance — separating");
    println!(" them needs Dambrine's forward-gate-current step, out of scope)\n");

    // Payoff: warm extraction with the reactive shell pinned.
    let data = golden_dataset(noise);
    let cfg = ThreeStepConfig {
        step1_evals: 10_000,
        step2_evals: 12_000,
        step3_evals: 1_000,
        seed: 10,
    };
    let plain = three_step(&Angelov, &data, &cfg);
    let pinned = three_step_with_extrinsics(&Angelov, &data, &cold.extrinsic, &cfg);
    let op = golden.device.operating_point(data.bias_vgs, data.bias_vds);
    let cgs_true = golden.device.small_signal(&op).intrinsic.cgs;
    println!("warm extraction at equal budget:");
    println!(
        "  free shell : S RMSE {:.4}, Cgs error {:.1} %",
        plain.sparam_rmse,
        100.0 * (plain.small_signal.intrinsic.cgs - cgs_true).abs() / cgs_true
    );
    println!(
        "  pinned shell: S RMSE {:.4}, Cgs error {:.1} %",
        pinned.sparam_rmse,
        100.0 * (pinned.small_signal.intrinsic.cgs - cgs_true).abs() / cgs_true
    );
}

fn row(name: &str, truth: f64, got: f64) -> Vec<String> {
    let err = if truth.abs() > 1e-12 {
        format!("{:.1} %", 100.0 * (got - truth).abs() / truth.abs())
    } else {
        format!("{got:.3}")
    };
    vec![
        name.to_string(),
        format!("{truth:.3}"),
        format!("{got:.3}"),
        err,
    ]
}
