//! **F7 — third-order intermodulation check** (paper claim 5: "the
//! third-order intermodulation products were also checked").
//!
//! Two tones around GPS L1 drive the as-built amplifier's device; the
//! sweep prints fundamental and IM3 output power vs input power and the
//! extrapolated intercept point, from both the time-domain (full
//! nonlinear + FFT) and power-series paths. Expected shape: 1:1 and 3:1
//! slopes, OIP3 in the +20…+35 dBm range, the two paths agreeing at small
//! signal.

use lna::{measure_im3, BuildConfig, BuiltAmplifier};
use lna_bench::{header, print_series, reference_design};
use rfkit_circuit::{ip3_sweep, power_series, TwoToneSpec};
use rfkit_device::Phemt;

fn main() {
    header(
        "Figure 7",
        "two-tone IM3 sweep around GPS L1 and OIP3 extrapolation",
    );
    let device = Phemt::atf54143_like();
    let design = reference_design(&device);
    let built = BuiltAmplifier::build(&design.snapped, &BuildConfig::default());

    let pins: Vec<f64> = (0..13).map(|k| -45.0 + 2.5 * k as f64).collect();
    let sweep = measure_im3(&device, &built, &pins).expect("board alive");

    let fund: Vec<f64> = sweep.rows.iter().map(|r| r.p_fund_dbm).collect();
    let im3: Vec<f64> = sweep.rows.iter().map(|r| r.p_im3_dbm).collect();
    println!("\ntime-domain (full nonlinear model + FFT):");
    print_series(
        "Pin (dBm)",
        &["P_fund (dBm)", "P_IM3 (dBm)"],
        &pins,
        &[fund, im3],
    );
    println!(
        "\nextrapolated intercept: OIP3 = {:.1} dBm, IIP3 = {:.1} dBm",
        sweep.oip3_dbm.expect("well-posed"),
        sweep.iip3_dbm.expect("well-posed"),
    );

    // Cross-check with the closed-form power series at the same bias.
    let vgs = device
        .bias_for_current(built.actual_vars.vds, built.actual_vars.ids)
        .expect("bias reachable");
    let op = device.operating_point(vgs, built.actual_vars.vds);
    let series_sweep = ip3_sweep(&pins, |p| {
        power_series(
            &op,
            &TwoToneSpec {
                pin_dbm: p,
                ..Default::default()
            },
        )
    });
    println!(
        "power-series cross-check: OIP3 = {:.1} dBm (gm = {:.3} S, gm3 = {:.3} A/V^3)",
        series_sweep.oip3_dbm.expect("well-posed"),
        op.gm,
        op.gm3,
    );
}
