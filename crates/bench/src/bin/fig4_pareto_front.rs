//! **F4 — NF–gain Pareto front at 1.4 GHz: four multi-objective methods**
//! (paper claims 2+4: the improved goal attainment method applied to the
//! amplifier trade-off).
//!
//! The improved goal-attainment method sweeps hard NF goals and maximizes
//! gain; the standard (penalty/Nelder–Mead) goal attainment runs the same
//! sweep; the weighted-sum baseline sweeps weights; NSGA-II approximates
//! the front in one population run.
//!
//! Expected shape, panel A (NF vs gain): with inductive source
//! degeneration in the design space the noise match and the gain match
//! nearly coincide (that is *why* degeneration is used), so the front is
//! narrow — all methods cluster near one corner, and the comparison is
//! about who reaches it reliably: improved GA and NSGA-II do, standard GA
//! shows dropouts and dominated points.
//!
//! Panel B (worst-band NF vs DC power) is a genuinely conflicting pair —
//! lower bias power costs noise figure — and there the front has real
//! extent: the goal sweep of the improved method traces it point by
//! point.

use lna::{spot_objectives, DesignVariables};
use lna_bench::header;
use rfkit_device::Phemt;
use rfkit_num::linspace;
use rfkit_opt::pareto::{hypervolume_2d, pareto_front_indices};
use rfkit_opt::scalarize::weighted_sum_sweep;
use rfkit_opt::{
    improved_goal_attainment, nsga2, standard_goal_attainment, GoalConfig, GoalProblem, GoalResult,
    Nsga2Config,
};

const F0: f64 = 1.4e9;
const EVALS_PER_POINT: usize = 6_000;

fn print_front(name: &str, points: &[(f64, f64)], evals: usize) {
    println!("\n{name} ({evals} objective evaluations):");
    println!("{:>10} {:>12}", "NF (dB)", "gain (dB)");
    for (nf, gain) in points {
        println!("{nf:>10.3} {gain:>12.2}");
    }
    let objs: Vec<Vec<f64>> = points.iter().map(|(nf, g)| vec![*nf, -*g]).collect();
    let nondom = pareto_front_indices(&objs).len();
    let hv = hypervolume_2d(&objs, [2.0, 0.0]);
    println!(
        "  non-dominated: {nondom}/{}  hypervolume(ref NF=2 dB, G=0 dB): {hv:.3}",
        points.len()
    );
}

fn main() {
    header(
        "Figure 4",
        "NF vs gain Pareto front at 1.4 GHz, four methods",
    );
    let device = Phemt::atf54143_like();
    let objectives = spot_objectives(&device, F0);
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let bounds = DesignVariables::bounds();
    let nf_goals = linspace(0.35, 1.0, 9);

    // Improved goal attainment: hard NF goal, maximize gain.
    let mut improved = Vec::new();
    let mut improved_evals = 0usize;
    for (k, &nf_g) in nf_goals.iter().enumerate() {
        let p = GoalProblem::new(
            obj_ref,
            vec![nf_g, -25.0, -0.005],
            vec![0.0, 1.0, 0.0],
            bounds.clone(),
        );
        let r = improved_goal_attainment(
            &p,
            &GoalConfig {
                max_evals: EVALS_PER_POINT,
                seed: 40 + k as u64,
                multistart: 1,
                global_fraction: 0.7,
                ..Default::default()
            },
        );
        improved_evals += r.evaluations;
        improved.push((r.objectives[0], -r.objectives[1]));
    }
    print_front("improved goal attainment", &improved, improved_evals);

    // Standard goal attainment: same sweep, penalty + single NM descent.
    let mut standard = Vec::new();
    let mut standard_evals = 0usize;
    for (k, &nf_g) in nf_goals.iter().enumerate() {
        let p = GoalProblem::new(
            obj_ref,
            vec![nf_g, -25.0, -0.005],
            vec![0.0, 1.0, 0.0],
            bounds.clone(),
        );
        // Textbook usage: start from a nominal design guess.
        let mut start = bounds.center();
        start[1] = 30.0 + 4.0 * k as f64; // naive bias ladder
        let r: GoalResult = standard_goal_attainment(
            &p,
            &start,
            &GoalConfig {
                max_evals: EVALS_PER_POINT,
                ..Default::default()
            },
        );
        standard_evals += r.evaluations;
        standard.push((r.objectives[0], -r.objectives[1]));
    }
    print_front("standard goal attainment", &standard, standard_evals);

    // Weighted sum baseline on [NF, -gain] + stability penalty.
    let penalized = |x: &[f64]| -> Vec<f64> {
        let f = objectives(x);
        let pen = 1e3 * f[2].max(0.0);
        vec![f[0] + pen, f[1] + pen]
    };
    let weights: Vec<Vec<f64>> = (1..10)
        .map(|k| {
            let a = k as f64 / 10.0;
            vec![10.0 * a, 1.0 - a] // NF in dB ~ 10x smaller scale than gain
        })
        .collect();
    let ws = weighted_sum_sweep(&penalized, &weights, &bounds, EVALS_PER_POINT, 77);
    let ws_points: Vec<(f64, f64)> = ws
        .iter()
        .map(|r| (r.objectives[0], -r.objectives[1]))
        .collect();
    print_front(
        "weighted sum",
        &ws_points,
        ws.iter().map(|r| r.evaluations).sum(),
    );

    // NSGA-II on the penalized pair.
    let nsga_obj: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &penalized;
    let nsga = nsga2(
        nsga_obj,
        &bounds,
        &Nsga2Config {
            generations: 120,
            seed: 78,
            ..Default::default()
        },
    );
    let mut nsga_points: Vec<(f64, f64)> = nsga
        .front
        .iter()
        .map(|i| (i.objectives[0], -i.objectives[1]))
        .filter(|(nf, _)| *nf < 2.0)
        .collect();
    nsga_points.sort_by(|a, b| rfkit_num::total_cmp_f64(&a.0, &b.0));
    // Thin to ~12 representative points for the printout.
    let step = (nsga_points.len() / 12).max(1);
    let thinned: Vec<(f64, f64)> = nsga_points.iter().step_by(step).copied().collect();
    print_front("NSGA-II (thinned)", &thinned, nsga.evaluations);

    panel_b(&device);
}

/// Panel B: worst-band NF vs DC power — a genuinely conflicting pair.
fn panel_b(device: &Phemt) {
    use lna::{band_objectives, BandSpec};
    println!(
        "
----------------------------------------------------------------"
    );
    println!("Panel B: worst-band NF (1.1-1.7 GHz) vs DC power, improved GA sweep");
    println!("----------------------------------------------------------------");
    let band = BandSpec::gnss();
    let band_obj = band_objectives(device, &band);
    // Objectives: [worst NF dB, DC power mW, stability/match violations].
    let objectives = move |x: &[f64]| -> Vec<f64> {
        let f = band_obj(x);
        let vars = DesignVariables::from_vec(x);
        let power_mw = vars.vds * vars.ids * 1e3;
        // Bundle the hard terms: match and stability.
        let violation = (f[2] + 10.0).max(0.0) + (f[3] + 10.0).max(0.0) + (f[4] + 0.005).max(0.0);
        vec![f[0], power_mw, violation]
    };
    let obj_ref: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &objectives;
    let bounds = DesignVariables::bounds();
    println!(
        "{:>14} {:>10} {:>12}",
        "P goal (mW)", "NF (dB)", "power (mW)"
    );
    for (k, power_goal) in [40.0, 70.0, 100.0, 150.0, 220.0, 320.0].iter().enumerate() {
        let p = GoalProblem::new(
            obj_ref,
            vec![0.3, *power_goal, 0.0],
            vec![1.0, 0.0, 0.0], // hard power cap, minimize NF
            bounds.clone(),
        );
        let r = improved_goal_attainment(
            &p,
            &GoalConfig {
                max_evals: EVALS_PER_POINT,
                seed: 400 + k as u64,
                multistart: 1,
                global_fraction: 0.7,
                ..Default::default()
            },
        );
        println!(
            "{:>14.0} {:>10.3} {:>12.1}",
            power_goal, r.objectives[0], r.objectives[1]
        );
    }
    println!("(lower power caps must show higher worst-band NF: the real trade)");
}
