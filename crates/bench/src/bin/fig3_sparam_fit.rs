//! **F3 — S-parameter fit overlay.**
//!
//! |S11|, |S21|, |S22| in dB over 0.5–6 GHz: noisy "measurement" vs the
//! extracted small-signal model. Expected shape: sub-0.2 dB tracking of
//! |S21| across the sweep, with the fit interpolating through the VNA
//! noise.

use lna_bench::{golden_dataset, header, print_series};
use rfkit_device::dc::Angelov;
use rfkit_device::MeasurementNoise;
use rfkit_extract::{three_step, ThreeStepConfig};
use rfkit_num::units::db_from_amplitude_ratio;

fn main() {
    header(
        "Figure 3",
        "S-parameters 0.5-6 GHz: measured vs extracted model",
    );
    let data = golden_dataset(MeasurementNoise::default());
    let cfg = ThreeStepConfig {
        step1_evals: 15_000,
        step2_evals: 30_000,
        step3_evals: 2_000,
        seed: 3,
    };
    let result = three_step(&Angelov, &data, &cfg);

    let freqs_ghz: Vec<f64> = data.sparams.iter().map(|(f, _)| f / 1e9).collect();
    let mut meas = [Vec::new(), Vec::new(), Vec::new()];
    let mut model = [Vec::new(), Vec::new(), Vec::new()];
    for (f, s) in &data.sparams {
        let m = result.small_signal.s_params(*f, 50.0);
        for (k, (a, b)) in [(s.s11(), m.s11()), (s.s21(), m.s21()), (s.s22(), m.s22())]
            .iter()
            .enumerate()
        {
            meas[k].push(db_from_amplitude_ratio(a.abs()));
            model[k].push(db_from_amplitude_ratio(b.abs()));
        }
    }
    for (k, name) in ["S11", "S21", "S22"].iter().enumerate() {
        println!("\n|{name}| (dB):");
        print_series(
            "f (GHz)",
            &["measured", "model"],
            &freqs_ghz,
            &[meas[k].clone(), model[k].clone()],
        );
    }
    println!(
        "\noverall S RMSE = {:.4} per complex entry",
        result.sparam_rmse
    );
}
